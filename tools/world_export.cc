// Exports a configured simulation world to disk — corpus, gazetteer,
// query pool, and user ground truth — so the synthetic data behind the
// experiments can be inspected or consumed by external tooling.
//
// Run:  ./build/world_export --out=/tmp/pws_world [--docs=N] [--seed=N]

#include <iostream>

#include "eval/world.h"
#include "io/corpus_io.h"
#include "io/gazetteer_io.h"
#include "util/arg_parser.h"
#include "util/file_util.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  const std::string out_prefix = args.GetString("out", "/tmp/pws_world");

  eval::WorldConfig config;
  config.seed = args.GetInt("seed", 42);
  config.corpus.num_documents = static_cast<int>(args.GetInt("docs", 12000));
  config.users.num_users = static_cast<int>(args.GetInt("users", 40));
  eval::World world(config);

  Status status = io::SaveCorpus(world.corpus(), out_prefix + ".corpus.txt");
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  status = io::SaveGazetteer(world.ontology(), out_prefix + ".gazetteer.tsv");
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  // Query pool: id, class, topic, explicit location, implicit flag, text.
  std::string queries = "id\tclass\ttopic\texplicit_location\timplicit\ttext\n";
  for (const auto& q : world.queries()) {
    queries += std::to_string(q.id);
    queries += '\t';
    queries += click::QueryClassToString(q.query_class);
    queries += '\t';
    queries += world.topics().topic(q.topic).name;
    queries += '\t';
    queries += q.explicit_location == geo::kInvalidLocation
                   ? "-"
                   : world.ontology().node(q.explicit_location).name;
    queries += '\t';
    queries += q.implicit_local ? "1" : "0";
    queries += '\t';
    queries += q.text;
    queries += '\n';
  }
  status = WriteStringToFile(out_prefix + ".queries.tsv", queries);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  // User ground truth: home, locality, favourite topics, travel places.
  std::string users = "id\thome\tlocality\tfavourites\ttravel\tgps_fixes\n";
  for (const auto& user : world.users()) {
    users += std::to_string(user.id);
    users += '\t';
    users += world.ontology().node(user.home_city).name;
    users += '\t';
    users += FormatDouble(user.locality_preference, 3);
    users += '\t';
    std::vector<std::string> favourites;
    for (int t = 0; t < world.topics().num_topics(); ++t) {
      if (user.topic_affinity[t] > 0.1) {
        favourites.push_back(world.topics().topic(t).name);
      }
    }
    users += StrJoin(favourites, ",");
    users += '\t';
    std::vector<std::string> travel;
    for (const auto& [place, affinity] : user.place_affinity) {
      travel.push_back(world.ontology().node(place).name);
    }
    users += travel.empty() ? "-" : StrJoin(travel, ",");
    users += '\t';
    users += std::to_string(user.gps_trace.size());
    users += '\n';
  }
  status = WriteStringToFile(out_prefix + ".users.tsv", users);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  std::cout << "exported world (seed " << config.seed << "):\n"
            << "  " << out_prefix << ".corpus.txt     ("
            << world.corpus().size() << " documents)\n"
            << "  " << out_prefix << ".gazetteer.tsv  ("
            << world.ontology().size() << " nodes)\n"
            << "  " << out_prefix << ".queries.tsv    ("
            << world.queries().size() << " queries)\n"
            << "  " << out_prefix << ".users.tsv      ("
            << world.users().size() << " users)\n";
  return 0;
}
