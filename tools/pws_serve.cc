// The persistent serving front end: builds the synthetic world, wraps
// the personalization engine in a multi-threaded loopback TCP server
// speaking the line protocol of src/serve/protocol.h, and serves until
// a client sends `shutdown` or the process gets SIGINT/SIGTERM. Either
// way the exit is a drain, not an abort: admitted requests finish,
// their replies go out, and a final state snapshot is written.
//
// Run:  ./build/pws_serve [--port=N] [--workers=N] [--queue-capacity=N]
//                         [--docs=N] [--users=N] [--seed=N]
//                         [--state=PATH] [--snapshot-every-s=SECONDS]
//                         [--wal-shards=N] [--group-commit]
//                         [--resident-users=N] [--cold-dir=PATH]
//                         [--store-shards=N]
//                         [--trace-sample-every=N] [--trace-capacity=N]
//                         [--slow-us=N] [--exemplar-capacity=N]
//                         [--slo-target-us=N] [--slo-goal=F]
//                         [--strategy=NAME] [--bandit] [--incremental]
//                         [--log-level=LEVEL]
//
// --strategy picks the re-ranking strategy served (default the engine's
// combined default; "session" adds the in-session concept boost),
// --bandit turns on the UCB1 blend controller, and --incremental trains
// each user's RankSVM from every click as it arrives (DESIGN.md §17).
//
// --state=PATH turns on durability: mutations are WAL-logged as they
// happen (across --wal-shards log files sharing one sequence space;
// --group-commit batches fsyncs across concurrent appenders), the
// server snapshots periodically (--snapshot-every-s) and at shutdown,
// and a restart with the same --state restores the snapshot and
// replays the merged WAL tails before accepting traffic (DESIGN.md
// §12, §16).
//
// --resident-users=N caps how many users the engine keeps in RAM: the
// rest spill to per-shard cold files under --cold-dir (default: next
// to --state, or the tmpdir when stateless) and fault back in on
// first touch (DESIGN.md §16). Watch resident/evictions/fault-in p95
// live in pws_top.
//
// Observability (DESIGN.md §14): --trace-sample-every=N captures every
// Nth request's per-stage trace (fetch with the `trace` verb, view in
// chrome://tracing); --slow-us=N captures any request slower than N
// microseconds as an exemplar regardless of sampling; --slo-target-us
// turns on latency-SLO burn accounting in the `metrics` verb JSON.
// Watch it live:  ./build/pws_top --port=PORT
//
// Poke it by hand:  printf 'serve\t0\t5\tcoffee seattle\n' | nc 127.0.0.1 PORT

#include <csignal>
#include <iostream>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "serve/server.h"
#include "util/arg_parser.h"
#include "util/logging.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int signal) { g_signal = signal; }

}  // namespace

int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  const std::string log_level = args.GetString("log-level", "");
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::cerr << "invalid --log-level '" << log_level
                << "' (want debug|info|warning|error)\n";
      return 2;
    }
    SetLogLevel(level);
  }

  eval::WorldConfig config;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  config.corpus.num_documents = static_cast<int>(args.GetInt("docs", 8000));
  config.users.num_users = static_cast<int>(args.GetInt("users", 16));
  config.backend.page_size = 30;
  std::cerr << "building world (" << config.corpus.num_documents
            << " docs)...\n";
  eval::World world(config);

  core::EngineOptions options;
  options.user_store_shards =
      static_cast<int>(args.GetInt("store-shards", options.user_store_shards));
  options.wal_shards =
      static_cast<int>(args.GetInt("wal-shards", options.wal_shards));
  options.wal_group_commit = args.GetBool("group-commit", false);
  const std::string strategy_name = args.GetString("strategy", "");
  if (!strategy_name.empty() &&
      !ranking::StrategyFromString(strategy_name, &options.strategy)) {
    std::cerr << "invalid --strategy '" << strategy_name
              << "' (want baseline|content-only|location-only|combined|"
                 "combined+gps|session)\n";
    return 2;
  }
  options.bandit.enabled = args.GetBool("bandit", false);
  options.incremental_training = args.GetBool("incremental", false);
  core::PwsEngine engine(&world.search_backend(), &world.ontology(), options);

  const std::string state_path = args.GetString("state", "");
  const int64_t resident_users = args.GetInt("resident-users", 0);
  if (resident_users > 0) {
    std::string cold_dir = args.GetString("cold-dir", "");
    if (cold_dir.empty()) {
      cold_dir = state_path.empty() ? std::string("/tmp/pws_cold")
                                    : state_path + ".cold";
    }
    if (const Status status = engine.EnableTiering(cold_dir, resident_users);
        !status.ok()) {
      std::cerr << "cannot enable tiering under " << cold_dir << ": "
                << status << "\n";
      return 1;
    }
    std::cerr << "tiering on: resident-users=" << resident_users
              << " cold-dir=" << cold_dir << "\n";
  }

  for (int u = 0; u < config.users.num_users; ++u) {
    engine.RegisterUser(u);
  }

  if (!state_path.empty()) {
    if (const Status status = engine.EnableWal(state_path + ".wal");
        !status.ok()) {
      std::cerr << "cannot open WAL " << state_path << ".wal: " << status
                << "\n";
      return 1;
    }
    if (const Status status = engine.RestoreState(state_path); !status.ok()) {
      std::cerr << "cannot restore state from " << state_path << ": "
                << status << "\n";
      return 1;
    }
    std::cerr << "durability on: state=" << state_path << " wal="
              << state_path << ".wal\n";
  }

  serve::ServerOptions server_options;
  server_options.port = static_cast<int>(args.GetInt("port", 0));
  server_options.num_workers = static_cast<int>(args.GetInt("workers", 4));
  server_options.queue_capacity =
      static_cast<int>(args.GetInt("queue-capacity", 256));
  server_options.state_path = state_path;
  server_options.snapshot_every_s = args.GetDouble("snapshot-every-s", 0.0);
  server_options.trace_sample_every =
      static_cast<int>(args.GetInt("trace-sample-every", 0));
  server_options.trace_capacity =
      static_cast<int>(args.GetInt("trace-capacity", 256));
  server_options.slow_request_us = args.GetInt("slow-us", 0);
  server_options.exemplar_capacity =
      static_cast<int>(args.GetInt("exemplar-capacity", 32));
  server_options.slo_target_us = args.GetDouble("slo-target-us", 0.0);
  server_options.slo_goal = args.GetDouble("slo-goal", 0.99);
  server_options.query_pool.reserve(world.queries().size());
  for (const auto& intent : world.queries()) {
    server_options.query_pool.push_back(intent.text);
  }

  serve::PwsServer server(&engine, server_options);
  if (const Status status = server.Start(); !status.ok()) {
    std::cerr << "cannot start server: " << status << "\n";
    return 1;
  }
  // stdout so scripts can scrape the ephemeral port; logs go to stderr.
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0 && !server.WaitShutdownRequested(/*poll_ms=*/200)) {
  }
  std::cerr << (g_signal != 0 ? "signal received" : "shutdown requested")
            << "; draining...\n";
  server.Stop();
  return 0;
}
