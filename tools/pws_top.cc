// Terminal ops console for a running pws_serve: polls the `metrics`
// verb and renders the live (rolling-window) view — per-verb and
// per-stage p50/p95/p99 over the last ~10s, queue depth against
// capacity, shed/error rates, SLO burn, the user-state store's
// hot/cold tiering row (resident vs total users, cold-segment bytes,
// eviction and fault-in rates, fault-in p95 — DESIGN.md §16), and the
// latest slow-request exemplars with their per-stage breakdown.
//
// Run:  ./build/pws_top --port=N [--interval-ms=1000] [--frames=0]
//
// --frames=N stops after N refreshes (0 = run until the server goes
// away or Ctrl-C); --frames=1 prints a single report without clearing
// the screen, which is what the CI smoke uses.

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/socket_io.h"
#include "util/arg_parser.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace pws;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int signal) { g_signal = signal; }

/// One metrics-verb round trip; false on transport failure (server gone).
bool FetchMetricsJson(serve::LineChannel* channel, JsonValue* out) {
  serve::Request request;
  request.type = serve::RequestType::kMetrics;
  if (!channel->WriteLine(serve::FormatRequest(request)).ok()) return false;
  std::string line;
  if (!channel->ReadLine(&line)) return false;
  const serve::Reply reply = serve::ParseReply(line);
  if (!reply.ok || reply.fields.empty()) return false;
  return ParseJson(UnescapeLineBreaks(reply.fields[0]), out);
}

std::string Percent(double fraction) {
  return FormatDouble(100.0 * fraction, 1) + "%";
}

/// Milliseconds with one decimal — the natural scale for serve stages.
std::string Ms(double us) { return FormatDouble(us / 1000.0, 2); }

void RenderWindowedTable(const JsonValue& windowed, std::ostream& os) {
  Table table({"metric", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"});
  for (const std::string& name : windowed.Keys()) {
    const JsonValue& entry = windowed[name];
    if (entry["count"].Number() <= 0) continue;  // Idle this window.
    table.AddRow({name, std::to_string(static_cast<int64_t>(
                            entry["count"].Number())),
                  Ms(entry["p50"].Number()), Ms(entry["p95"].Number()),
                  Ms(entry["p99"].Number()), Ms(entry["max"].Number())});
  }
  if (table.num_rows() == 0) {
    os << "  (no requests in the current window)\n";
    return;
  }
  os << table.ToAligned();
}

/// Cumulative store counters from the previous frame, for rates.
struct StoreFrame {
  double evictions = 0;
  double faults = 0;
  bool valid = false;
};

std::string Mb(double bytes) {
  return FormatDouble(bytes / (1024.0 * 1024.0), 1) + "MB";
}

/// The user-state store's tiering row: resident vs total population,
/// cold-segment footprint, eviction/fault rates since the last frame,
/// and the fault-in latency p95 (DESIGN.md §16). Hidden until the
/// engine registers its first user.
void RenderStoreLine(const JsonValue& doc, StoreFrame* prev,
                     double interval_s, std::ostream& os) {
  const JsonValue& gauges = doc["gauges"];
  const JsonValue& counters = doc["counters"];
  const double total = gauges["store.total_users"]["value"].Number();
  if (total <= 0) return;
  const double resident = gauges["store.resident_users"]["value"].Number();
  const double evictions = counters["store.evictions"].Number();
  const double faults = counters["store.faults"].Number();
  os << "store: " << resident << "/" << total << " resident";
  if (gauges.Has("store.cold_bytes")) {
    os << ", cold " << Mb(gauges["store.cold_bytes"]["value"].Number());
  }
  os << ", evictions " << evictions << ", faults " << faults;
  if (prev->valid && interval_s > 0) {
    os << " (+" << FormatDouble((evictions - prev->evictions) / interval_s, 1)
       << "/s, +" << FormatDouble((faults - prev->faults) / interval_s, 1)
       << "/s)";
  }
  const JsonValue& fault_in = doc["histograms"]["serve.fault_in.us"];
  if (fault_in["count"].Number() > 0) {
    os << ", fault-in p95 " << Ms(fault_in["p95"].Number()) << "ms";
  }
  os << "\n";
  prev->evictions = evictions;
  prev->faults = faults;
  prev->valid = true;
}

void RenderFrame(const JsonValue& doc, StoreFrame* store_frame,
                 double interval_s, std::ostream& os) {
  const JsonValue& gauges = doc["gauges"];
  const JsonValue& slo = doc["slo"];
  const JsonValue& window = slo["window"];

  const double depth = gauges["serve.queue_depth"]["value"].Number();
  const double depth_max = gauges["serve.queue_depth"]["max"].Number();
  const double capacity = gauges["serve.queue_capacity"]["value"].Number();
  os << "pws_top — uptime " << gauges["serve.uptime_s"]["value"].Number()
     << "s, queue " << depth << "/" << capacity << " (max " << depth_max
     << ")\n";
  RenderStoreLine(doc, store_frame, interval_s, os);

  const double requests = window["requests"].Number();
  os << "window " << FormatDouble(slo["window_s"].Number(), 1) << "s: "
     << requests << " requests, err " << Percent(window["error_rate"].Number())
     << ", shed " << Percent(window["shed_rate"].Number());
  if (slo["enabled"].Bool()) {
    os << " | SLO " << Ms(slo["target_us"].Number()) << "ms@"
       << Percent(slo["goal"].Number()) << ": viol "
       << Percent(window["violation_rate"].Number()) << ", burn "
       << FormatDouble(window["burn_rate"].Number(), 2) << "x";
  }
  os << "\n\n";

  os << "live percentiles (rolling window):\n";
  RenderWindowedTable(doc["windowed"], os);

  const std::vector<JsonValue>& exemplars = doc["exemplars"].Items();
  os << "\nslow-request exemplars (" << exemplars.size() << "):\n";
  // Newest last in the ring; show the most recent few, newest first.
  const size_t show = exemplars.size() < 5 ? exemplars.size() : 5;
  for (size_t i = 0; i < show; ++i) {
    const JsonValue& exemplar = exemplars[exemplars.size() - 1 - i];
    os << "  #" << static_cast<uint64_t>(exemplar["request_id"].Number())
       << " " << exemplar["verb"].String() << " "
       << Ms(exemplar["total_us"].Number()) << "ms:";
    for (const JsonValue& stage : exemplar["stages"].Items()) {
      os << " " << stage["name"].String() << "="
         << Ms(stage["dur_us"].Number()) << "ms";
    }
    os << "\n";
  }
  if (exemplars.empty()) os << "  (none captured)\n";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const int port = static_cast<int>(args.GetInt("port", 0));
  if (port <= 0) {
    std::cerr << "usage: pws_top --port=N [--interval-ms=1000] [--frames=0]\n";
    return 2;
  }
  const int interval_ms = static_cast<int>(args.GetInt("interval-ms", 1000));
  const int64_t frames = args.GetInt("frames", 0);

  StatusOr<int> fd = serve::ConnectToLoopback(port);
  if (!fd.ok()) {
    std::cerr << "cannot connect to 127.0.0.1:" << port << ": " << fd.status()
              << "\n";
    return 1;
  }
  serve::LineChannel channel(*fd);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const bool interactive = frames != 1;
  StoreFrame store_frame;
  for (int64_t frame = 0; g_signal == 0 && (frames == 0 || frame < frames);
       ++frame) {
    JsonValue doc;
    if (!FetchMetricsJson(&channel, &doc)) {
      std::cerr << "server went away\n";
      return frame == 0 ? 1 : 0;
    }
    std::string out;
    {
      std::ostringstream buffer;
      RenderFrame(doc, &store_frame, interval_ms / 1000.0, buffer);
      out = buffer.str();
    }
    // Repaint in place for live watching; plain print for one-shot runs
    // so the output stays pipeable.
    if (interactive) std::cout << "\033[H\033[2J";
    std::cout << out << std::flush;
    if (frames == 0 || frame + 1 < frames) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}
