// Load generator for the pws_serve front end: drives serve/click
// traffic with Zipfian query and user skew over the server's own query
// pool, in two modes run back to back:
//
//   closed loop  — N concurrent connections, each issuing the next
//                  request the moment the previous reply lands. Measures
//                  the server's throughput ceiling and per-request
//                  service latency.
//   open loop    — requests arrive on a Poisson process at --open-rps,
//                  independent of completions. Latency is measured from
//                  the *scheduled* arrival time, so client-side queueing
//                  behind a saturated server counts against the SLO
//                  (coordinated omission is not hidden).
//
// Reports exact client-side p50/p95/p99 (sorted samples, not bucket
// interpolation) plus the server's own per-stage histograms fetched via
// the `metrics` verb, and writes everything as JSON to --metrics-out.
//
// Run:  ./build/pws_loadgen --port=N [--connections=8] [--requests=2000]
//           [--open-rps=200] [--open-duration-s=10] [--zipf-s=1.1]
//           [--users=16] [--click-rate=0.1] [--seed=1]
//           [--users-sweep=1000,10000,100000] [--sweep-requests=N]
//           [--metrics-out=BENCH_SERVE.json] [--trace-out=trace.json]
//           [--shutdown]
//
// --users is the working-set knob: the server registers users on first
// touch, so raising it grows the engine's user population live. Every
// loop also samples the server's store.faults / store.evictions
// counters before and after and reports faults per request — the
// cold-tier miss ratio (0 when everything fits in the resident
// budget; see DESIGN.md §16). --users-sweep runs an extra closed-loop
// pass per working-set size so one invocation maps the hot/cold
// transition: sizes below --resident-users serve from RAM, sizes
// above it start faulting.
//
// --trace-out fetches the server's `trace` verb after the run and
// writes the Chrome trace_event JSON (open in chrome://tracing or
// Perfetto) — the server must be running with --trace-sample-every or
// --slow-us for the export to contain records.
// --shutdown sends the server the `shutdown` verb after the run — the
// CI smoke uses it to exercise the graceful drain path end to end.

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/socket_io.h"
#include "util/arg_parser.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using namespace pws;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One client connection speaking the line protocol.
class Client {
 public:
  static std::unique_ptr<Client> Connect(int port) {
    StatusOr<int> fd = serve::ConnectToLoopback(port);
    if (!fd.ok()) {
      std::cerr << "connect failed: " << fd.status() << "\n";
      return nullptr;
    }
    return std::unique_ptr<Client>(new Client(*fd));
  }

  /// Sends one request and blocks for its reply. Returns false on a
  /// transport failure (reply errors still return true; the caller
  /// inspects reply.ok).
  bool Call(const serve::Request& request, serve::Reply* reply) {
    if (!channel_.WriteLine(serve::FormatRequest(request)).ok()) return false;
    std::string line;
    if (!channel_.ReadLine(&line)) return false;
    *reply = serve::ParseReply(line);
    return true;
  }

 private:
  explicit Client(int fd) : channel_(fd) {}
  serve::LineChannel channel_;
};

struct WorkloadConfig {
  int port = 0;
  int connections = 8;
  double zipf_s = 1.1;
  int users = 16;
  double click_rate = 0.1;
  uint64_t seed = 1;
  std::vector<std::string> queries;
};

/// Samples one request: Zipf-skewed user and query, occasionally a
/// click at a Zipf-skewed position instead of a plain serve.
serve::Request SampleRequest(const WorkloadConfig& config, Random& rng) {
  serve::Request request;
  request.user = rng.Zipf(config.users, config.zipf_s);
  request.query =
      config.queries[rng.Zipf(static_cast<int>(config.queries.size()),
                              config.zipf_s)];
  if (rng.Bernoulli(config.click_rate)) {
    request.type = serve::RequestType::kClick;
    request.position = 1 + rng.Zipf(10, 1.0);
  } else {
    request.type = serve::RequestType::kServe;
    request.limit = 10;
  }
  return request;
}

struct LoopStats {
  std::vector<double> latencies_us;  // Successful requests only.
  int64_t sent = 0;
  int64_t errors = 0;     // err replies (overloaded, bad_request, ...).
  int64_t transport = 0;  // Connection-level failures.
  double wall_s = 0;

  void Merge(const LoopStats& other) {
    latencies_us.insert(latencies_us.end(), other.latencies_us.begin(),
                        other.latencies_us.end());
    sent += other.sent;
    errors += other.errors;
    transport += other.transport;
  }
};

double ExactPercentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Closed loop: every worker keeps exactly one request in flight.
LoopStats RunClosedLoop(const WorkloadConfig& config, int total_requests) {
  std::atomic<int> next{0};
  std::vector<LoopStats> per_worker(config.connections);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int w = 0; w < config.connections; ++w) {
    workers.emplace_back([&, w] {
      auto client = Client::Connect(config.port);
      if (client == nullptr) return;
      Random rng(config.seed * 7919 + static_cast<uint64_t>(w));
      LoopStats& stats = per_worker[w];
      while (next.fetch_add(1) < total_requests) {
        const serve::Request request = SampleRequest(config, rng);
        const auto t0 = Clock::now();
        serve::Reply reply;
        ++stats.sent;
        if (!client->Call(request, &reply)) {
          ++stats.transport;
          return;  // Connection is gone; this worker retires.
        }
        if (reply.ok) {
          stats.latencies_us.push_back(SecondsSince(t0) * 1e6);
        } else {
          ++stats.errors;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  LoopStats merged;
  for (auto& stats : per_worker) merged.Merge(stats);
  merged.wall_s = SecondsSince(start);
  return merged;
}

/// Open loop: arrival times are drawn from a Poisson process up front;
/// workers race to claim the next arrival, sleep until it is due, and
/// measure latency from the *scheduled* arrival — a server that cannot
/// keep up shows the backlog in its tail latency instead of silently
/// slowing the generator down.
LoopStats RunOpenLoop(const WorkloadConfig& config, double rps,
                      double duration_s) {
  std::vector<double> arrivals_s;
  {
    Random rng(config.seed ^ 0x09e11ULL);
    double t = 0;
    while (true) {
      t += rng.Exponential(rps);
      if (t > duration_s) break;
      arrivals_s.push_back(t);
    }
  }
  std::atomic<size_t> next{0};
  std::vector<LoopStats> per_worker(config.connections);
  std::vector<std::thread> workers;
  const auto start = Clock::now();
  for (int w = 0; w < config.connections; ++w) {
    workers.emplace_back([&, w] {
      auto client = Client::Connect(config.port);
      if (client == nullptr) return;
      Random rng(config.seed * 104729 + static_cast<uint64_t>(w));
      LoopStats& stats = per_worker[w];
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= arrivals_s.size()) return;
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrivals_s[i]));
        std::this_thread::sleep_until(due);
        const serve::Request request = SampleRequest(config, rng);
        serve::Reply reply;
        ++stats.sent;
        if (!client->Call(request, &reply)) {
          ++stats.transport;
          return;
        }
        if (reply.ok) {
          stats.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - due)
                  .count());
        } else {
          ++stats.errors;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  LoopStats merged;
  for (auto& stats : per_worker) merged.Merge(stats);
  merged.wall_s = SecondsSince(start);
  return merged;
}

/// Store-tier counters sampled from the server's `metrics` verb around
/// a loop; the delta is the loop's own hot/cold behavior.
struct StoreCounters {
  int64_t faults = 0;
  int64_t evictions = 0;
  int64_t resident_users = 0;
  int64_t total_users = 0;
};

int64_t ExtractJsonInt(const std::string& json, const std::string& name) {
  // Counters serialize as `"name": 123`, gauges as
  // `"name": {"value": 123, ...}` — skip to the first digit either way.
  const std::string key = "\"" + name + "\":";
  const size_t pos = json.find(key);
  if (pos == std::string::npos) return 0;
  size_t i = pos + key.size();
  while (i < json.size() && !(std::isdigit(json[i]) || json[i] == '-')) {
    if (json[i] == ',' || json[i] == '}') return 0;  // Malformed/empty.
    ++i;
  }
  return std::strtoll(json.c_str() + i, nullptr, 10);
}

StoreCounters FetchStoreCounters(Client& control) {
  StoreCounters counters;
  serve::Request request;
  request.type = serve::RequestType::kMetrics;
  serve::Reply reply;
  if (!control.Call(request, &reply) || !reply.ok || reply.fields.empty()) {
    return counters;
  }
  const std::string json = UnescapeLineBreaks(reply.fields[0]);
  counters.faults = ExtractJsonInt(json, "store.faults");
  counters.evictions = ExtractJsonInt(json, "store.evictions");
  counters.resident_users = ExtractJsonInt(json, "store.resident_users");
  counters.total_users = ExtractJsonInt(json, "store.total_users");
  return counters;
}

/// The loop's cold-tier report: counter deltas over the loop, faults
/// per request (the cold-miss ratio), and the store population after.
std::string StoreDeltaJson(const StoreCounters& before,
                           const StoreCounters& after, int64_t requests) {
  const int64_t faults = after.faults - before.faults;
  const int64_t evictions = after.evictions - before.evictions;
  const double per_request =
      requests > 0 ? static_cast<double>(faults) /
                         static_cast<double>(requests)
                   : 0.0;
  std::string json = "{";
  json += "\"faults\": " + std::to_string(faults);
  json += ", \"evictions\": " + std::to_string(evictions);
  json += ", \"faults_per_request\": " + FormatDouble(per_request, 4);
  json += ", \"hot_hit_ratio\": " +
          FormatDouble(per_request > 1.0 ? 0.0 : 1.0 - per_request, 4);
  json += ", \"resident_users\": " + std::to_string(after.resident_users);
  json += ", \"total_users\": " + std::to_string(after.total_users);
  json += "}";
  return json;
}

std::string LoopStatsJson(LoopStats& stats) {
  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  std::string json = "{";
  json += "\"requests\": " + std::to_string(stats.sent);
  json += ", \"ok\": " + std::to_string(stats.latencies_us.size());
  json += ", \"errors\": " + std::to_string(stats.errors);
  json += ", \"transport_failures\": " + std::to_string(stats.transport);
  json += ", \"wall_s\": " + FormatDouble(stats.wall_s, 3);
  json += ", \"throughput_rps\": " +
          FormatDouble(stats.wall_s > 0
                           ? static_cast<double>(stats.sent) / stats.wall_s
                           : 0,
                       1);
  json += ", \"latency_us\": {";
  json += "\"p50\": " + FormatDouble(ExactPercentile(stats.latencies_us, 50), 1);
  json += ", \"p95\": " + FormatDouble(ExactPercentile(stats.latencies_us, 95), 1);
  json += ", \"p99\": " + FormatDouble(ExactPercentile(stats.latencies_us, 99), 1);
  json += ", \"max\": " +
          FormatDouble(stats.latencies_us.empty() ? 0
                                                  : stats.latencies_us.back(),
                       1);
  json += "}}";
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  WorkloadConfig config;
  config.port = static_cast<int>(args.GetInt("port", 0));
  if (config.port <= 0) {
    std::cerr << "usage: pws_loadgen --port=N [--connections=8] "
                 "[--requests=2000] [--open-rps=200] [--open-duration-s=10] "
                 "[--zipf-s=1.1] [--users=16] [--click-rate=0.1] [--seed=1] "
                 "[--metrics-out=PATH]\n";
    return 2;
  }
  config.connections = static_cast<int>(args.GetInt("connections", 8));
  config.zipf_s = args.GetDouble("zipf-s", 1.1);
  config.users = static_cast<int>(args.GetInt("users", 16));
  config.click_rate = args.GetDouble("click-rate", 0.1);
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const int closed_requests = static_cast<int>(args.GetInt("requests", 2000));
  const double open_rps = args.GetDouble("open-rps", 200.0);
  const double open_duration_s = args.GetDouble("open-duration-s", 10.0);
  const std::string metrics_out = args.GetString("metrics-out", "");
  const std::string trace_out = args.GetString("trace-out", "");

  // The server owns the query pool; fetch it instead of rebuilding the
  // world client-side.
  auto control = Client::Connect(config.port);
  if (control == nullptr) return 1;
  {
    serve::Request request;
    request.type = serve::RequestType::kQueries;
    serve::Reply reply;
    if (!control->Call(request, &reply) || !reply.ok ||
        reply.fields.size() < 2) {
      std::cerr << "cannot fetch query pool from server\n";
      return 1;
    }
    for (const std::string& query :
         SplitLines(UnescapeLineBreaks(reply.fields[1]))) {
      if (!query.empty()) config.queries.push_back(query);
    }
  }
  if (config.queries.empty()) {
    std::cerr << "server returned an empty query pool\n";
    return 1;
  }
  std::cerr << "query pool: " << config.queries.size() << " queries; "
            << config.users << " users; zipf s=" << config.zipf_s << "\n";

  std::cerr << "closed loop: " << closed_requests << " requests over "
            << config.connections << " connections...\n";
  const StoreCounters closed_before = FetchStoreCounters(*control);
  LoopStats closed = RunClosedLoop(config, closed_requests);
  const StoreCounters closed_after = FetchStoreCounters(*control);

  std::cerr << "open loop: " << open_rps << " rps for " << open_duration_s
            << "s...\n";
  const StoreCounters open_before = closed_after;
  LoopStats open = RunOpenLoop(config, open_rps, open_duration_s);
  const StoreCounters open_after = FetchStoreCounters(*control);

  // Working-set sweep: one extra closed-loop pass per --users-sweep
  // size, mapping throughput and cold-miss ratio against population.
  struct SweepStep {
    int users = 0;
    LoopStats stats;
    StoreCounters before, after;
  };
  std::vector<SweepStep> sweep;
  {
    const std::string sweep_arg = args.GetString("users-sweep", "");
    const int sweep_requests = static_cast<int>(
        args.GetInt("sweep-requests", closed_requests));
    if (!sweep_arg.empty()) {
      for (const std::string& token : StrSplit(sweep_arg, ',')) {
        int64_t users = 0;
        if (!ParseInt64(StrTrim(token), &users) || users <= 0) {
          std::cerr << "bad --users-sweep entry '" << token << "'\n";
          return 2;
        }
        SweepStep step;
        step.users = static_cast<int>(users);
        std::cerr << "sweep: users=" << users << ", " << sweep_requests
                  << " requests...\n";
        config.users = step.users;
        step.before = FetchStoreCounters(*control);
        step.stats = RunClosedLoop(config, sweep_requests);
        step.after = FetchStoreCounters(*control);
        sweep.push_back(std::move(step));
      }
    }
  }

  // The server's own per-stage view (engine stage histograms plus the
  // serve.* queue metrics), percentiles included.
  std::string server_metrics = "{}";
  {
    serve::Request request;
    request.type = serve::RequestType::kMetrics;
    serve::Reply reply;
    if (control->Call(request, &reply) && reply.ok && !reply.fields.empty()) {
      server_metrics = UnescapeLineBreaks(reply.fields[0]);
    } else {
      std::cerr << "warning: cannot fetch server metrics\n";
    }
  }

  std::string json = "{\n  \"config\": {";
  json += "\"connections\": " + std::to_string(config.connections);
  json += ", \"users\": " + std::to_string(config.users);
  json += ", \"queries\": " + std::to_string(config.queries.size());
  json += ", \"zipf_s\": " + FormatDouble(config.zipf_s, 2);
  json += ", \"click_rate\": " + FormatDouble(config.click_rate, 2);
  json += ", \"closed_requests\": " + std::to_string(closed_requests);
  json += ", \"open_rps\": " + FormatDouble(open_rps, 1);
  json += ", \"open_duration_s\": " + FormatDouble(open_duration_s, 1);
  json += ", \"seed\": " + std::to_string(config.seed);
  json += "},\n  \"closed\": " + LoopStatsJson(closed);
  json += ",\n  \"closed_store\": " +
          StoreDeltaJson(closed_before, closed_after, closed.sent);
  json += ",\n  \"open\": " + LoopStatsJson(open);
  json += ",\n  \"open_store\": " +
          StoreDeltaJson(open_before, open_after, open.sent);
  if (!sweep.empty()) {
    json += ",\n  \"users_sweep\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
      if (i > 0) json += ", ";
      json += "{\"users\": " + std::to_string(sweep[i].users);
      json += ", \"run\": " + LoopStatsJson(sweep[i].stats);
      json += ", \"store\": " +
              StoreDeltaJson(sweep[i].before, sweep[i].after,
                             sweep[i].stats.sent);
      json += "}";
    }
    json += "]";
  }
  json += ",\n  \"server_metrics\": " + server_metrics;
  json += "\n}\n";

  std::cout << "closed: " << LoopStatsJson(closed) << "\n";
  std::cout << "        store " << StoreDeltaJson(closed_before, closed_after,
                                                  closed.sent)
            << "\n";
  std::cout << "open:   " << LoopStatsJson(open) << "\n";
  std::cout << "        store " << StoreDeltaJson(open_before, open_after,
                                                  open.sent)
            << "\n";
  for (auto& step : sweep) {
    std::cout << "sweep users=" << step.users << ": "
              << LoopStatsJson(step.stats) << "\n"
              << "        store "
              << StoreDeltaJson(step.before, step.after, step.stats.sent)
              << "\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << json;
    if (!out) {
      std::cerr << "cannot write " << metrics_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    serve::Request request;
    request.type = serve::RequestType::kTrace;
    serve::Reply reply;
    if (!control->Call(request, &reply) || !reply.ok || reply.fields.empty()) {
      std::cerr << "cannot fetch traces from server\n";
      return 1;
    }
    std::ofstream out(trace_out);
    out << UnescapeLineBreaks(reply.fields[0]);
    if (!out) {
      std::cerr << "cannot write " << trace_out << "\n";
      return 1;
    }
    std::cerr << "wrote " << trace_out << "\n";
  }
  if (args.GetBool("shutdown", false)) {
    serve::Request request;
    request.type = serve::RequestType::kShutdown;
    serve::Reply reply;
    if (!control->Call(request, &reply) || !reply.ok) {
      std::cerr << "shutdown request failed\n";
      return 1;
    }
    std::cerr << "sent shutdown\n";
  }
  return 0;
}
