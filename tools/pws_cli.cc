// Interactive demo shell: issue queries against the synthetic world and
// watch the personalized ranking diverge from the backend as you click.
//
// Commands:
//   <query text>        serve the query; shows baseline vs personalized
//   click <n>           click shown result n of the last page (1-based)
//   train               retrain the RankSVM from accumulated feedback
//   profile             dump the learned profile
//   gps <city name>     attach a GPS trace around a city
//   metrics             dump the metrics registry (latency histograms,
//                       cache counters) accumulated this session
//   metrics json        the same registry as the JSON document every
//                       other surface emits (server `metrics` verb,
//                       --metrics-out exports)
//   save [path]         snapshot the engine state (default: --state path)
//   load [path]         restore engine state from a snapshot + WAL replay
//   quit
//
// Run:  ./build/pws_cli [--docs=N] [--seed=N] [--log-level=LEVEL]
//                       [--state=PATH] [--strategy=NAME] [--bandit]
//                       [--incremental]
//
// --strategy picks the re-ranking strategy (baseline | content-only |
// location-only | combined | combined+gps | session; default
// combined+gps). --bandit turns on the UCB1 blend controller over
// discretized alpha arms; --incremental trains the RankSVM from each
// click instead of waiting for 'train' (DESIGN.md §17).
//
// --index-stats skips the shell entirely: it builds the index over the
// configured corpus, prints a build-time and size report for the
// block-compressed posting storage (bytes/posting vs the old 8-byte
// uncompressed Posting layout), and exits.
//
// --store-stats also skips the shell: it builds the engine (restoring
// --state when given, honoring --resident-users/--cold-dir tiering),
// prints the user-state store report — shards, resident vs total
// users, eviction/spill/fault counters, cold-segment bytes — and
// exits. The same numbers stream live from the server's `metrics`
// verb as store.* gauges and counters (DESIGN.md §16).
//
// --state=PATH enables durability: clicks and training runs are logged
// to PATH.wal as they happen, 'save' snapshots everything to PATH, and a
// restart with the same --state restores the snapshot and replays the
// log tail automatically (see DESIGN.md §12).

#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace pws;

constexpr click::UserId kUser = 0;

void ShowPage(const eval::World& world, const core::PersonalizedPage& page,
              int n) {
  const auto shown = page.ShownPage();
  std::cout << "  #  shown (personalized)";
  std::cout << "\n";
  for (int i = 0; i < n && i < static_cast<int>(shown.results.size()); ++i) {
    const auto& doc = world.corpus().doc(shown.results[i].doc);
    std::string where;
    if (doc.primary_location_truth != geo::kInvalidLocation) {
      where = " @" + world.ontology().node(doc.primary_location_truth).name;
    }
    const int backend_rank = page.order[i];
    std::cout << "  " << (i + 1) << ". " << shown.results[i].title << where
              << "   [backend rank " << (backend_rank + 1) << "]\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string log_level =
      args.GetString("log-level", args.GetString("log_level", ""));
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::cerr << "invalid --log-level '" << log_level
                << "' (want debug|info|warning|error)\n";
      return 2;
    }
    SetLogLevel(level);
  }
  eval::WorldConfig config;
  config.seed = args.GetInt("seed", 42);
  config.corpus.num_documents = static_cast<int>(args.GetInt("docs", 8000));
  config.users.num_users = 1;
  config.backend.page_size = 30;

  if (args.GetBool("index-stats", false)) {
    // Build-report mode: generate the corpus, time a fresh index build,
    // dump the posting-storage accounting, exit.
    eval::World stats_world(config);
    WallTimer timer;
    backend::InvertedIndex index(&stats_world.corpus());
    const double build_seconds = timer.ElapsedSeconds();
    const backend::IndexStats stats = index.Stats();
    std::cout << "index build report\n"
              << "  documents          " << stats.documents << "\n"
              << "  terms              " << stats.terms << "\n"
              << "  postings           " << stats.postings << "\n"
              << "  blocks             " << stats.blocks << " ("
              << stats.packed_blocks << " packed, " << stats.varint_blocks
              << " varint)\n"
              << "  encoded bytes      " << stats.encoded_bytes << "\n"
              << "  metadata bytes     " << stats.metadata_bytes << "\n"
              << "  total bytes        " << stats.TotalBytes() << "\n"
              << "  uncompressed bytes " << stats.UncompressedBytes()
              << "  (old vector<Posting> layout)\n"
              << "  bytes/posting      "
              << FormatDouble(stats.BytesPerPosting(), 3) << "  (was "
              << sizeof(backend::Posting) << ")\n"
              << "  compression        "
              << FormatDouble(static_cast<double>(stats.UncompressedBytes()) /
                                  std::max<uint64_t>(1, stats.TotalBytes()),
                              2)
              << "x\n"
              << "  build time         " << FormatDouble(build_seconds, 3)
              << " s\n";
    return 0;
  }

  eval::World world(config);

  core::EngineOptions options;
  options.strategy = ranking::Strategy::kCombinedGps;
  const std::string strategy_name = args.GetString("strategy", "");
  if (!strategy_name.empty() &&
      !ranking::StrategyFromString(strategy_name, &options.strategy)) {
    std::cerr << "invalid --strategy '" << strategy_name
              << "' (want baseline|content-only|location-only|combined|"
                 "combined+gps|session)\n";
    return 2;
  }
  options.bandit.enabled = args.GetBool("bandit", false);
  options.incremental_training = args.GetBool("incremental", false);
  core::PwsEngine engine(&world.search_backend(), &world.ontology(), options);

  const int64_t resident_users = args.GetInt("resident-users", 0);
  if (resident_users > 0) {
    const std::string cold_dir =
        args.GetString("cold-dir", "/tmp/pws_cli_cold");
    if (const Status status = engine.EnableTiering(cold_dir, resident_users);
        !status.ok()) {
      std::cerr << "cannot enable tiering under " << cold_dir << ": "
                << status << "\n";
      return 1;
    }
  }
  engine.RegisterUser(kUser);

  const std::string state_path = args.GetString("state", "");
  if (!state_path.empty()) {
    if (const Status status = engine.EnableWal(state_path + ".wal");
        !status.ok()) {
      std::cerr << "cannot open WAL " << state_path << ".wal: " << status
                << "\n";
      return 1;
    }
    // Pick up where the last run (clean exit or crash) left off.
    if (const Status status = engine.RestoreState(state_path); !status.ok()) {
      std::cerr << "cannot restore state from " << state_path << ": "
                << status << "\n";
      return 1;
    }
    std::cout << "durability on: state=" << state_path << " wal="
              << state_path << ".wal ("
              << engine.training_pair_count(kUser)
              << " training pairs recovered)\n";
  }

  if (args.GetBool("store-stats", false)) {
    // One-shot report mode: the same numbers the server publishes as
    // store.* metrics, printed as a table over whatever state the
    // flags above loaded.
    const core::UserStateStore::Stats stats = engine.store_stats();
    std::cout << "user-state store\n"
              << "  shards           " << stats.shards << "\n"
              << "  users            " << stats.total_users << " ("
              << stats.resident_users << " resident, " << stats.cold_users
              << " cold)\n"
              << "  resident budget  "
              << (stats.resident_budget > 0
                      ? std::to_string(stats.resident_budget)
                      : std::string("unlimited"))
              << "\n"
              << "  evictions        " << stats.evictions << " ("
              << stats.spills << " spills, " << stats.spill_errors
              << " spill errors)\n"
              << "  fault-ins        " << stats.faults << " ("
              << stats.fault_errors << " errors)\n"
              << "  cold bytes       " << stats.cold_live_bytes << " live / "
              << stats.cold_dead_bytes << " dead (" << stats.compactions
              << " compactions)\n";
    return 0;
  }

  std::cout << "pws demo shell — " << world.corpus().size()
            << " docs indexed. Type a query, 'click <n>', 'train',\n"
            << "'profile', 'gps <city>', 'metrics', 'save [path]',\n"
            << "'load [path]', or 'quit'.\n";

  std::optional<core::PersonalizedPage> last_page;
  std::string line;
  while (std::cout << "\npws> " << std::flush &&
         std::getline(std::cin, line)) {
    line = StrTrim(line);
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;

    if (line == "train") {
      const double loss = engine.TrainUser(kUser);
      std::cout << "retrained on " << engine.training_pair_count(kUser)
                << " pairs (final hinge loss " << FormatDouble(loss, 4)
                << ")\n";
      continue;
    }
    if (line == "metrics") {
      // Everything the engine recorded since startup: per-stage serve
      // latency histograms, cache hit/miss counters, training cost.
      const std::string text =
          obs::MetricsRegistry::Global().Snapshot().ToText();
      std::cout << (text.empty() ? "no metrics recorded yet\n" : text);
      continue;
    }
    if (line == "metrics json") {
      // The shared obs writer — byte-compatible with the server's
      // `metrics` verb and the bench --metrics-out export.
      std::cout << obs::GlobalMetricsJson();
      continue;
    }
    if (line == "save" || StartsWith(line, "save ")) {
      const std::string path =
          line == "save" ? state_path : StrTrim(line.substr(5));
      if (path.empty()) {
        std::cout << "usage: save <path>  (or run with --state=PATH)\n";
        continue;
      }
      const Status status = engine.SaveState(path);
      if (!status.ok()) {
        std::cout << "save failed: " << status << "\n";
      } else {
        std::cout << "state saved to " << path << "\n";
      }
      continue;
    }
    if (line == "load" || StartsWith(line, "load ")) {
      const std::string path =
          line == "load" ? state_path : StrTrim(line.substr(5));
      if (path.empty()) {
        std::cout << "usage: load <path>  (or run with --state=PATH)\n";
        continue;
      }
      const Status status = engine.RestoreState(path);
      if (!status.ok()) {
        std::cout << "load failed: " << status << "\n";
      } else {
        std::cout << "state restored from " << path << " ("
                  << engine.training_pair_count(kUser)
                  << " training pairs)\n";
      }
      last_page.reset();
      continue;
    }
    if (line == "profile") {
      const auto& profile = engine.user_profile(kUser);
      std::cout << "content concepts:\n";
      for (const auto& [term, weight] : profile.TopContentConcepts(8)) {
        std::cout << "  " << term << "  " << FormatDouble(weight, 3) << "\n";
      }
      std::cout << "locations:\n";
      for (const auto& [loc, weight] : profile.TopLocations(8)) {
        std::cout << "  " << world.ontology().node(loc).name << "  "
                  << FormatDouble(weight, 3) << "\n";
      }
      continue;
    }
    if (StartsWith(line, "gps ")) {
      const std::string city_name = StrTrim(line.substr(4));
      const auto cities = world.ontology().Lookup(city_name);
      if (cities.empty()) {
        std::cout << "unknown place: " << city_name << "\n";
        continue;
      }
      geo::GpsTraceOptions trace_options;
      trace_options.num_days = 7;
      Random rng(config.seed ^ 0x5eedULL);
      engine.AttachGpsTrace(
          kUser, GenerateGpsTrace(world.ontology(), cities[0], trace_options,
                                  rng));
      std::cout << "attached a week of GPS fixes around "
                << world.ontology().node(cities[0]).name << "\n";
      continue;
    }
    if (StartsWith(line, "click ")) {
      if (!last_page.has_value()) {
        std::cout << "no page served yet\n";
        continue;
      }
      int64_t position = 0;
      if (!ParseInt64(StrTrim(line.substr(6)), &position) || position < 1 ||
          position > static_cast<int64_t>(last_page->order.size())) {
        std::cout << "usage: click <1.." << last_page->order.size() << ">\n";
        continue;
      }
      click::ClickRecord record;
      record.user = kUser;
      record.query_text = last_page->backend_page().query;
      for (size_t j = 0; j < last_page->order.size(); ++j) {
        click::Interaction interaction;
        interaction.doc =
            last_page->backend_page().results[last_page->order[j]].doc;
        interaction.rank = static_cast<int>(j);
        if (static_cast<int64_t>(j) == position - 1) {
          interaction.clicked = true;
          interaction.dwell_units = 420.0;
          interaction.last_click_in_session = true;
        }
        record.interactions.push_back(interaction);
      }
      engine.Observe(kUser, *last_page, record);
      std::cout << "recorded a satisfied click at position " << position
                << " (" << engine.training_pair_count(kUser)
                << " training pairs so far; run 'train' to apply)\n";
      continue;
    }

    // Anything else is a query.
    last_page = engine.Serve(kUser, line);
    if (last_page->backend_page().results.empty()) {
      std::cout << "no results\n";
      last_page.reset();
      continue;
    }
    ShowPage(world, *last_page, 8);
  }
  return 0;
}
