// Capacity soak harness for the tiered user-state store (DESIGN.md
// §16): registers a large user population against a small resident
// budget, drives Zipf-skewed serve/click traffic straight into the
// engine (no server hop, so the store is the bottleneck under test),
// and reports peak RSS, hot/cold store counters, and a bit-identical
// evict→reload verification — all as one process whose exit code CI
// can gate on.
//
// Run:  ./build/pws_soak [--users=1000000] [--resident-users=50000]
//           [--cold-dir=PATH] [--requests=200000] [--threads=4]
//           [--click-rate=0.05] [--zipf-s=1.05] [--docs=2000]
//           [--seed=1] [--state=PATH] [--group-commit=1]
//           [--wal-shards=4] [--save-at-end=0] [--verify-users=16]
//           [--rss-cap-mb=0] [--report-json=PATH]
//
// Phases, in order:
//
//   register  — RegisterUser over the whole population. With a
//               resident budget this immediately exercises eviction:
//               all but --resident-users spill to cold segments.
//   traffic   — --requests serve/click requests across --threads
//               workers, users Zipf-skewed so a hot set stays
//               resident while the tail faults in and out. With
//               --state, every click is WAL-logged (group commit by
//               default); kill -9 anywhere in this phase and a rerun
//               with the same --state must recover and exit 0 — the
//               CI soak-smoke does exactly that.
//   verify    — quiesced: capture rankings + model weights + pair
//               counts for sampled users, cycle the LRU so every
//               sample is evicted and faulted back, recapture, and
//               require bit-identical results.
//
// --rss-cap-mb turns the peak-RSS report into a hard gate: exit 1
// when getrusage peak RSS exceeds the cap. Run once with
// --resident-users=0 (tiering off) to measure the all-resident
// baseline the cap should undercut.

#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/pws_engine.h"
#include "eval/world.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace pws;

double PeakRssMb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

click::ClickRecord SatisfiedClick(const core::PersonalizedPage& page,
                                  click::UserId user, size_t position) {
  click::ClickRecord record;
  record.user = user;
  record.query_text = page.backend_page().query;
  for (size_t j = 0; j < page.order.size(); ++j) {
    click::Interaction interaction;
    interaction.doc = page.backend_page().results[page.order[j]].doc;
    interaction.rank = static_cast<int>(j);
    if (j == position) {
      interaction.clicked = true;
      interaction.dwell_units = 120.0;
      interaction.last_click_in_session = true;
    }
    record.interactions.push_back(interaction);
  }
  return record;
}

/// Everything the evict→reload contract promises to preserve for one
/// user, captured bit-for-bit.
struct UserSignature {
  std::vector<int> order;
  std::vector<double> weights;
  int pairs = 0;

  bool operator==(const UserSignature& other) const {
    return order == other.order && weights == other.weights &&
           pairs == other.pairs;
  }
};

UserSignature CaptureUser(core::PwsEngine& engine, click::UserId user,
                          const std::string& query) {
  UserSignature signature;
  signature.order = engine.Serve(user, query).order;
  signature.weights = engine.user_model(user).weights();
  signature.pairs = engine.training_pair_count(user);
  return signature;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string log_level = args.GetString("log-level", "");
  if (!log_level.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level, &level)) {
      std::cerr << "invalid --log-level '" << log_level << "'\n";
      return 2;
    }
    SetLogLevel(level);
  }

  const int64_t num_users = args.GetInt("users", 1'000'000);
  const int64_t resident_users = args.GetInt("resident-users", 50'000);
  const int64_t requests = args.GetInt("requests", 200'000);
  const int threads = static_cast<int>(args.GetInt("threads", 4));
  const double click_rate = args.GetDouble("click-rate", 0.05);
  const double zipf_s = args.GetDouble("zipf-s", 1.05);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  const std::string state_path = args.GetString("state", "");
  const std::string report_json = args.GetString("report-json", "");
  const double rss_cap_mb = args.GetDouble("rss-cap-mb", 0.0);
  const int verify_users = static_cast<int>(args.GetInt("verify-users", 16));

  eval::WorldConfig config;
  config.seed = seed;
  config.corpus.num_documents = static_cast<int>(args.GetInt("docs", 2000));
  config.users.num_users = 4;  // World users only seed GPS traces.
  config.backend.page_size = 20;
  std::cerr << "building world (" << config.corpus.num_documents
            << " docs)...\n";
  eval::World world(config);

  core::EngineOptions options;
  options.wal_shards =
      static_cast<int>(args.GetInt("wal-shards", options.wal_shards));
  options.wal_group_commit = args.GetBool("group-commit", true);
  core::PwsEngine engine(&world.search_backend(), &world.ontology(), options);

  if (resident_users > 0) {
    std::string cold_dir = args.GetString("cold-dir", "");
    if (cold_dir.empty()) {
      cold_dir = state_path.empty() ? std::string("/tmp/pws_soak_cold")
                                    : state_path + ".cold";
    }
    if (const Status status = engine.EnableTiering(cold_dir, resident_users);
        !status.ok()) {
      std::cerr << "cannot enable tiering: " << status << "\n";
      return 1;
    }
    std::cerr << "tiering on: resident-users=" << resident_users
              << " cold-dir=" << cold_dir << "\n";
  }

  if (!state_path.empty()) {
    if (const Status status = engine.EnableWal(state_path + ".wal");
        !status.ok()) {
      std::cerr << "cannot open WAL: " << status << "\n";
      return 1;
    }
    WallTimer restore_timer;
    if (const Status status = engine.RestoreState(state_path); !status.ok()) {
      std::cerr << "cannot restore state: " << status << "\n";
      return 1;
    }
    std::cerr << "restored " << engine.registered_user_count() << " users in "
              << FormatDouble(restore_timer.ElapsedSeconds(), 2) << "s\n";
  }

  // ---- register ----
  WallTimer register_timer;
  for (int64_t u = 0; u < num_users; ++u) {
    engine.RegisterUser(static_cast<click::UserId>(u));
  }
  const double register_s = register_timer.ElapsedSeconds();
  std::cerr << "registered " << num_users << " users in "
            << FormatDouble(register_s, 2) << "s; resident "
            << engine.store_stats().resident_users << ", rss "
            << FormatDouble(PeakRssMb(), 1) << "MB\n";

  // ---- traffic ----
  std::vector<std::string> queries;
  for (const auto& intent : world.queries()) queries.push_back(intent.text);
  std::atomic<int64_t> clicks{0};
  WallTimer traffic_timer;
  {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // Each worker owns the ids congruent to t, so per-user
        // mutation stays single-threaded (the engine's Observe
        // contract) while users churn concurrently across shards.
        Random rng(seed * 6271 + static_cast<uint64_t>(t));
        const int64_t quota = requests / threads;
        const int64_t span = std::max<int64_t>(1, num_users / threads);
        for (int64_t i = 0; i < quota; ++i) {
          const int64_t pick = rng.Zipf(static_cast<int>(
                                            std::min<int64_t>(span, 1 << 30)),
                                        zipf_s);
          const auto user = static_cast<click::UserId>(
              (pick * threads + t) % num_users);
          const std::string& query =
              queries[(static_cast<size_t>(user) + static_cast<size_t>(i)) %
                      queries.size()];
          const core::PersonalizedPage page = engine.Serve(user, query);
          if (!page.order.empty() && rng.Bernoulli(click_rate)) {
            engine.Observe(user, page,
                           SatisfiedClick(page, user, i % 3));
            clicks.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  const double traffic_s = traffic_timer.ElapsedSeconds();
  const core::UserStateStore::Stats after_traffic = engine.store_stats();
  std::cerr << "traffic: " << requests << " requests ("
            << clicks.load() << " clicks) in "
            << FormatDouble(traffic_s, 2) << "s = "
            << FormatDouble(requests / std::max(traffic_s, 1e-9), 0)
            << " rps; faults " << after_traffic.faults << ", evictions "
            << after_traffic.evictions << "\n";

  // ---- verify: evict → reload must be bit-identical ----
  bool bit_identical = true;
  if (verify_users > 0) {
    std::vector<click::UserId> samples;
    for (int i = 0; i < verify_users; ++i) {
      // Half from the hot head, half spread across the cold tail.
      samples.push_back(static_cast<click::UserId>(
          i % 2 == 0 ? i / 2
                     : (num_users - 1) - (i / 2) * (num_users /
                                                    (verify_users + 1))));
    }
    std::vector<UserSignature> before;
    for (const click::UserId user : samples) {
      before.push_back(CaptureUser(engine, user, queries[user % 7]));
    }
    if (engine.store_stats().resident_budget > 0) {
      // Cycle the LRU: touching twice the budget in foreign ids pushes
      // every sampled user out to the cold tier.
      const int64_t budget = engine.store_stats().resident_budget;
      for (int64_t i = 0; i < 2 * budget; ++i) {
        engine.training_pair_count(static_cast<click::UserId>(
            (i * 13 + 7) % num_users));
      }
    }
    for (size_t i = 0; i < samples.size(); ++i) {
      const UserSignature after =
          CaptureUser(engine, samples[i], queries[samples[i] % 7]);
      if (!(after == before[i])) {
        bit_identical = false;
        std::cerr << "VERIFY FAILED: user " << samples[i]
                  << " diverged across evict/reload\n";
      }
    }
    std::cerr << "verify: " << samples.size() << " users "
              << (bit_identical ? "bit-identical" : "DIVERGED")
              << " across evict/reload\n";
  }

  if (args.GetBool("save-at-end", false) && !state_path.empty()) {
    if (const Status status = engine.SaveState(state_path); !status.ok()) {
      std::cerr << "final save failed: " << status << "\n";
      return 1;
    }
    std::cerr << "saved " << state_path << "\n";
  }

  const double peak_rss_mb = PeakRssMb();
  const core::UserStateStore::Stats stats = engine.store_stats();
  std::cerr << "peak rss " << FormatDouble(peak_rss_mb, 1) << "MB ("
            << stats.resident_users << "/" << stats.total_users
            << " resident, cold "
            << FormatDouble(static_cast<double>(stats.cold_live_bytes) /
                                (1024.0 * 1024.0),
                            1)
            << "MB live)\n";

  std::string json = "{\n";
  json += "  \"users\": " + std::to_string(num_users);
  json += ",\n  \"resident_budget\": " + std::to_string(resident_users);
  json += ",\n  \"requests\": " + std::to_string(requests);
  json += ",\n  \"clicks\": " + std::to_string(clicks.load());
  json += ",\n  \"register_s\": " + FormatDouble(register_s, 3);
  json += ",\n  \"traffic_s\": " + FormatDouble(traffic_s, 3);
  json += ",\n  \"throughput_rps\": " +
          FormatDouble(requests / std::max(traffic_s, 1e-9), 1);
  json += ",\n  \"peak_rss_mb\": " + FormatDouble(peak_rss_mb, 1);
  json += ",\n  \"bit_identical\": " +
          std::string(bit_identical ? "true" : "false");
  json += ",\n  \"store\": {";
  json += "\"total_users\": " + std::to_string(stats.total_users);
  json += ", \"resident_users\": " + std::to_string(stats.resident_users);
  json += ", \"evictions\": " + std::to_string(stats.evictions);
  json += ", \"spills\": " + std::to_string(stats.spills);
  json += ", \"faults\": " + std::to_string(stats.faults);
  json += ", \"spill_errors\": " + std::to_string(stats.spill_errors);
  json += ", \"fault_errors\": " + std::to_string(stats.fault_errors);
  json += ", \"compactions\": " + std::to_string(stats.compactions);
  json += ", \"cold_live_bytes\": " + std::to_string(stats.cold_live_bytes);
  json += ", \"cold_dead_bytes\": " + std::to_string(stats.cold_dead_bytes);
  json += "}";
  json += "\n}\n";
  std::cout << json;
  if (!report_json.empty()) {
    std::ofstream out(report_json);
    out << json;
    if (!out) {
      std::cerr << "cannot write " << report_json << "\n";
      return 1;
    }
  }

  if (!bit_identical) return 1;
  if (stats.spill_errors > 0 || stats.fault_errors > 0) {
    std::cerr << "FAILED: store errors (spill " << stats.spill_errors
              << ", fault " << stats.fault_errors << ")\n";
    return 1;
  }
  if (rss_cap_mb > 0 && peak_rss_mb > rss_cap_mb) {
    std::cerr << "FAILED: peak rss " << FormatDouble(peak_rss_mb, 1)
              << "MB exceeds cap " << FormatDouble(rss_cap_mb, 1) << "MB\n";
    return 1;
  }
  return 0;
}
