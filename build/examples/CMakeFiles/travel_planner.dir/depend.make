# Empty dependencies file for travel_planner.
# This may be replaced when dependencies are built.
