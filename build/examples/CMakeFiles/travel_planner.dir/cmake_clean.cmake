file(REMOVE_RECURSE
  "CMakeFiles/travel_planner.dir/travel_planner.cc.o"
  "CMakeFiles/travel_planner.dir/travel_planner.cc.o.d"
  "travel_planner"
  "travel_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
