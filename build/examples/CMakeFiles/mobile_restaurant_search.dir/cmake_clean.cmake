file(REMOVE_RECURSE
  "CMakeFiles/mobile_restaurant_search.dir/mobile_restaurant_search.cc.o"
  "CMakeFiles/mobile_restaurant_search.dir/mobile_restaurant_search.cc.o.d"
  "mobile_restaurant_search"
  "mobile_restaurant_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_restaurant_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
