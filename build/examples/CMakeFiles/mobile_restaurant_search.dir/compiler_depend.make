# Empty compiler generated dependencies file for mobile_restaurant_search.
# This may be replaced when dependencies are built.
