# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/concepts_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/ranking_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
