
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/io_test.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/io_test.dir/io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pws_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pws_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pws_io.dir/DependInfo.cmake"
  "/root/repo/build/src/ranking/CMakeFiles/pws_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/pws_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/concepts/CMakeFiles/pws_concepts.dir/DependInfo.cmake"
  "/root/repo/build/src/click/CMakeFiles/pws_click.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/pws_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/pws_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pws_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pws_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pws_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
