file(REMOVE_RECURSE
  "CMakeFiles/concepts_test.dir/concepts_test.cc.o"
  "CMakeFiles/concepts_test.dir/concepts_test.cc.o.d"
  "concepts_test"
  "concepts_test.pdb"
  "concepts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concepts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
