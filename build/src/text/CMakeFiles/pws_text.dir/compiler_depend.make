# Empty compiler generated dependencies file for pws_text.
# This may be replaced when dependencies are built.
