file(REMOVE_RECURSE
  "libpws_text.a"
)
