file(REMOVE_RECURSE
  "CMakeFiles/pws_text.dir/ngram.cc.o"
  "CMakeFiles/pws_text.dir/ngram.cc.o.d"
  "CMakeFiles/pws_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/pws_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/pws_text.dir/stopwords.cc.o"
  "CMakeFiles/pws_text.dir/stopwords.cc.o.d"
  "CMakeFiles/pws_text.dir/tf_idf.cc.o"
  "CMakeFiles/pws_text.dir/tf_idf.cc.o.d"
  "CMakeFiles/pws_text.dir/tokenizer.cc.o"
  "CMakeFiles/pws_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/pws_text.dir/vocabulary.cc.o"
  "CMakeFiles/pws_text.dir/vocabulary.cc.o.d"
  "libpws_text.a"
  "libpws_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
