
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/gazetteer.cc" "src/geo/CMakeFiles/pws_geo.dir/gazetteer.cc.o" "gcc" "src/geo/CMakeFiles/pws_geo.dir/gazetteer.cc.o.d"
  "/root/repo/src/geo/geo_point.cc" "src/geo/CMakeFiles/pws_geo.dir/geo_point.cc.o" "gcc" "src/geo/CMakeFiles/pws_geo.dir/geo_point.cc.o.d"
  "/root/repo/src/geo/gps.cc" "src/geo/CMakeFiles/pws_geo.dir/gps.cc.o" "gcc" "src/geo/CMakeFiles/pws_geo.dir/gps.cc.o.d"
  "/root/repo/src/geo/location_extractor.cc" "src/geo/CMakeFiles/pws_geo.dir/location_extractor.cc.o" "gcc" "src/geo/CMakeFiles/pws_geo.dir/location_extractor.cc.o.d"
  "/root/repo/src/geo/location_ontology.cc" "src/geo/CMakeFiles/pws_geo.dir/location_ontology.cc.o" "gcc" "src/geo/CMakeFiles/pws_geo.dir/location_ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pws_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
