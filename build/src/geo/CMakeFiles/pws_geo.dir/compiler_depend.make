# Empty compiler generated dependencies file for pws_geo.
# This may be replaced when dependencies are built.
