file(REMOVE_RECURSE
  "libpws_geo.a"
)
