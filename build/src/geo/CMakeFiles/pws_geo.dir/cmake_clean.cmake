file(REMOVE_RECURSE
  "CMakeFiles/pws_geo.dir/gazetteer.cc.o"
  "CMakeFiles/pws_geo.dir/gazetteer.cc.o.d"
  "CMakeFiles/pws_geo.dir/geo_point.cc.o"
  "CMakeFiles/pws_geo.dir/geo_point.cc.o.d"
  "CMakeFiles/pws_geo.dir/gps.cc.o"
  "CMakeFiles/pws_geo.dir/gps.cc.o.d"
  "CMakeFiles/pws_geo.dir/location_extractor.cc.o"
  "CMakeFiles/pws_geo.dir/location_extractor.cc.o.d"
  "CMakeFiles/pws_geo.dir/location_ontology.cc.o"
  "CMakeFiles/pws_geo.dir/location_ontology.cc.o.d"
  "libpws_geo.a"
  "libpws_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
