file(REMOVE_RECURSE
  "libpws_eval.a"
)
