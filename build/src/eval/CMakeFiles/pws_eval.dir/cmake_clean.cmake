file(REMOVE_RECURSE
  "CMakeFiles/pws_eval.dir/harness.cc.o"
  "CMakeFiles/pws_eval.dir/harness.cc.o.d"
  "CMakeFiles/pws_eval.dir/metrics.cc.o"
  "CMakeFiles/pws_eval.dir/metrics.cc.o.d"
  "CMakeFiles/pws_eval.dir/stats.cc.o"
  "CMakeFiles/pws_eval.dir/stats.cc.o.d"
  "CMakeFiles/pws_eval.dir/world.cc.o"
  "CMakeFiles/pws_eval.dir/world.cc.o.d"
  "libpws_eval.a"
  "libpws_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
