# Empty compiler generated dependencies file for pws_eval.
# This may be replaced when dependencies are built.
