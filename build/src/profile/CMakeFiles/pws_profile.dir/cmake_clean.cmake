file(REMOVE_RECURSE
  "CMakeFiles/pws_profile.dir/entropy.cc.o"
  "CMakeFiles/pws_profile.dir/entropy.cc.o.d"
  "CMakeFiles/pws_profile.dir/gps_augment.cc.o"
  "CMakeFiles/pws_profile.dir/gps_augment.cc.o.d"
  "CMakeFiles/pws_profile.dir/preference_pairs.cc.o"
  "CMakeFiles/pws_profile.dir/preference_pairs.cc.o.d"
  "CMakeFiles/pws_profile.dir/user_profile.cc.o"
  "CMakeFiles/pws_profile.dir/user_profile.cc.o.d"
  "libpws_profile.a"
  "libpws_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
