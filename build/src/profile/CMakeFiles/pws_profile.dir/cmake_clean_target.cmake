file(REMOVE_RECURSE
  "libpws_profile.a"
)
