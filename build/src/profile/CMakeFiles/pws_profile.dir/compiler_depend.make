# Empty compiler generated dependencies file for pws_profile.
# This may be replaced when dependencies are built.
