file(REMOVE_RECURSE
  "CMakeFiles/pws_backend.dir/inverted_index.cc.o"
  "CMakeFiles/pws_backend.dir/inverted_index.cc.o.d"
  "CMakeFiles/pws_backend.dir/search_backend.cc.o"
  "CMakeFiles/pws_backend.dir/search_backend.cc.o.d"
  "CMakeFiles/pws_backend.dir/snippet.cc.o"
  "CMakeFiles/pws_backend.dir/snippet.cc.o.d"
  "libpws_backend.a"
  "libpws_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
