file(REMOVE_RECURSE
  "libpws_backend.a"
)
