# Empty compiler generated dependencies file for pws_backend.
# This may be replaced when dependencies are built.
