# Empty dependencies file for pws_ranking.
# This may be replaced when dependencies are built.
