file(REMOVE_RECURSE
  "libpws_ranking.a"
)
