file(REMOVE_RECURSE
  "CMakeFiles/pws_ranking.dir/features.cc.o"
  "CMakeFiles/pws_ranking.dir/features.cc.o.d"
  "CMakeFiles/pws_ranking.dir/rank_svm.cc.o"
  "CMakeFiles/pws_ranking.dir/rank_svm.cc.o.d"
  "CMakeFiles/pws_ranking.dir/ranker.cc.o"
  "CMakeFiles/pws_ranking.dir/ranker.cc.o.d"
  "libpws_ranking.a"
  "libpws_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
