file(REMOVE_RECURSE
  "libpws_util.a"
)
