# Empty compiler generated dependencies file for pws_util.
# This may be replaced when dependencies are built.
