file(REMOVE_RECURSE
  "CMakeFiles/pws_util.dir/arg_parser.cc.o"
  "CMakeFiles/pws_util.dir/arg_parser.cc.o.d"
  "CMakeFiles/pws_util.dir/file_util.cc.o"
  "CMakeFiles/pws_util.dir/file_util.cc.o.d"
  "CMakeFiles/pws_util.dir/logging.cc.o"
  "CMakeFiles/pws_util.dir/logging.cc.o.d"
  "CMakeFiles/pws_util.dir/math_util.cc.o"
  "CMakeFiles/pws_util.dir/math_util.cc.o.d"
  "CMakeFiles/pws_util.dir/random.cc.o"
  "CMakeFiles/pws_util.dir/random.cc.o.d"
  "CMakeFiles/pws_util.dir/status.cc.o"
  "CMakeFiles/pws_util.dir/status.cc.o.d"
  "CMakeFiles/pws_util.dir/string_util.cc.o"
  "CMakeFiles/pws_util.dir/string_util.cc.o.d"
  "CMakeFiles/pws_util.dir/table.cc.o"
  "CMakeFiles/pws_util.dir/table.cc.o.d"
  "libpws_util.a"
  "libpws_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
