file(REMOVE_RECURSE
  "CMakeFiles/pws_concepts.dir/content_extractor.cc.o"
  "CMakeFiles/pws_concepts.dir/content_extractor.cc.o.d"
  "CMakeFiles/pws_concepts.dir/content_ontology.cc.o"
  "CMakeFiles/pws_concepts.dir/content_ontology.cc.o.d"
  "CMakeFiles/pws_concepts.dir/location_concepts.cc.o"
  "CMakeFiles/pws_concepts.dir/location_concepts.cc.o.d"
  "libpws_concepts.a"
  "libpws_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
