
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concepts/content_extractor.cc" "src/concepts/CMakeFiles/pws_concepts.dir/content_extractor.cc.o" "gcc" "src/concepts/CMakeFiles/pws_concepts.dir/content_extractor.cc.o.d"
  "/root/repo/src/concepts/content_ontology.cc" "src/concepts/CMakeFiles/pws_concepts.dir/content_ontology.cc.o" "gcc" "src/concepts/CMakeFiles/pws_concepts.dir/content_ontology.cc.o.d"
  "/root/repo/src/concepts/location_concepts.cc" "src/concepts/CMakeFiles/pws_concepts.dir/location_concepts.cc.o" "gcc" "src/concepts/CMakeFiles/pws_concepts.dir/location_concepts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pws_text.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pws_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/pws_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/pws_backend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
