file(REMOVE_RECURSE
  "libpws_concepts.a"
)
