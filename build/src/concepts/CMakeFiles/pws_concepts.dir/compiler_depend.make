# Empty compiler generated dependencies file for pws_concepts.
# This may be replaced when dependencies are built.
