file(REMOVE_RECURSE
  "libpws_click.a"
)
