
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/click/click_log.cc" "src/click/CMakeFiles/pws_click.dir/click_log.cc.o" "gcc" "src/click/CMakeFiles/pws_click.dir/click_log.cc.o.d"
  "/root/repo/src/click/click_model.cc" "src/click/CMakeFiles/pws_click.dir/click_model.cc.o" "gcc" "src/click/CMakeFiles/pws_click.dir/click_model.cc.o.d"
  "/root/repo/src/click/query_generator.cc" "src/click/CMakeFiles/pws_click.dir/query_generator.cc.o" "gcc" "src/click/CMakeFiles/pws_click.dir/query_generator.cc.o.d"
  "/root/repo/src/click/relevance.cc" "src/click/CMakeFiles/pws_click.dir/relevance.cc.o" "gcc" "src/click/CMakeFiles/pws_click.dir/relevance.cc.o.d"
  "/root/repo/src/click/sessions.cc" "src/click/CMakeFiles/pws_click.dir/sessions.cc.o" "gcc" "src/click/CMakeFiles/pws_click.dir/sessions.cc.o.d"
  "/root/repo/src/click/simulated_user.cc" "src/click/CMakeFiles/pws_click.dir/simulated_user.cc.o" "gcc" "src/click/CMakeFiles/pws_click.dir/simulated_user.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pws_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/pws_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/pws_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pws_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
