# Empty compiler generated dependencies file for pws_click.
# This may be replaced when dependencies are built.
