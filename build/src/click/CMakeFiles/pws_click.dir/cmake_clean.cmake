file(REMOVE_RECURSE
  "CMakeFiles/pws_click.dir/click_log.cc.o"
  "CMakeFiles/pws_click.dir/click_log.cc.o.d"
  "CMakeFiles/pws_click.dir/click_model.cc.o"
  "CMakeFiles/pws_click.dir/click_model.cc.o.d"
  "CMakeFiles/pws_click.dir/query_generator.cc.o"
  "CMakeFiles/pws_click.dir/query_generator.cc.o.d"
  "CMakeFiles/pws_click.dir/relevance.cc.o"
  "CMakeFiles/pws_click.dir/relevance.cc.o.d"
  "CMakeFiles/pws_click.dir/sessions.cc.o"
  "CMakeFiles/pws_click.dir/sessions.cc.o.d"
  "CMakeFiles/pws_click.dir/simulated_user.cc.o"
  "CMakeFiles/pws_click.dir/simulated_user.cc.o.d"
  "libpws_click.a"
  "libpws_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
