file(REMOVE_RECURSE
  "libpws_corpus.a"
)
