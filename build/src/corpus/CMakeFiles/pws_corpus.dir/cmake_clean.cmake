file(REMOVE_RECURSE
  "CMakeFiles/pws_corpus.dir/corpus.cc.o"
  "CMakeFiles/pws_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/pws_corpus.dir/corpus_generator.cc.o"
  "CMakeFiles/pws_corpus.dir/corpus_generator.cc.o.d"
  "CMakeFiles/pws_corpus.dir/topic_model.cc.o"
  "CMakeFiles/pws_corpus.dir/topic_model.cc.o.d"
  "libpws_corpus.a"
  "libpws_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
