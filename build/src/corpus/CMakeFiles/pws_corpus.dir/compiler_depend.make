# Empty compiler generated dependencies file for pws_corpus.
# This may be replaced when dependencies are built.
