
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cc" "src/corpus/CMakeFiles/pws_corpus.dir/corpus.cc.o" "gcc" "src/corpus/CMakeFiles/pws_corpus.dir/corpus.cc.o.d"
  "/root/repo/src/corpus/corpus_generator.cc" "src/corpus/CMakeFiles/pws_corpus.dir/corpus_generator.cc.o" "gcc" "src/corpus/CMakeFiles/pws_corpus.dir/corpus_generator.cc.o.d"
  "/root/repo/src/corpus/topic_model.cc" "src/corpus/CMakeFiles/pws_corpus.dir/topic_model.cc.o" "gcc" "src/corpus/CMakeFiles/pws_corpus.dir/topic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pws_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/pws_text.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/pws_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
