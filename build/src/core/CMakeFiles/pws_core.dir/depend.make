# Empty dependencies file for pws_core.
# This may be replaced when dependencies are built.
