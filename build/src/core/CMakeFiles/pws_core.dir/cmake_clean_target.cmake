file(REMOVE_RECURSE
  "libpws_core.a"
)
