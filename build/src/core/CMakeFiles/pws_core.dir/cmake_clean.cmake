file(REMOVE_RECURSE
  "CMakeFiles/pws_core.dir/pws_engine.cc.o"
  "CMakeFiles/pws_core.dir/pws_engine.cc.o.d"
  "libpws_core.a"
  "libpws_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
