# Empty dependencies file for pws_baselines.
# This may be replaced when dependencies are built.
