file(REMOVE_RECURSE
  "libpws_baselines.a"
)
