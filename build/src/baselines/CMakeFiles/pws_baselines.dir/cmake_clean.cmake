file(REMOVE_RECURSE
  "CMakeFiles/pws_baselines.dir/click_history.cc.o"
  "CMakeFiles/pws_baselines.dir/click_history.cc.o.d"
  "libpws_baselines.a"
  "libpws_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
