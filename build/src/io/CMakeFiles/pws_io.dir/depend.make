# Empty dependencies file for pws_io.
# This may be replaced when dependencies are built.
