file(REMOVE_RECURSE
  "CMakeFiles/pws_io.dir/corpus_io.cc.o"
  "CMakeFiles/pws_io.dir/corpus_io.cc.o.d"
  "CMakeFiles/pws_io.dir/engine_state_io.cc.o"
  "CMakeFiles/pws_io.dir/engine_state_io.cc.o.d"
  "CMakeFiles/pws_io.dir/gazetteer_io.cc.o"
  "CMakeFiles/pws_io.dir/gazetteer_io.cc.o.d"
  "CMakeFiles/pws_io.dir/model_io.cc.o"
  "CMakeFiles/pws_io.dir/model_io.cc.o.d"
  "CMakeFiles/pws_io.dir/profile_io.cc.o"
  "CMakeFiles/pws_io.dir/profile_io.cc.o.d"
  "libpws_io.a"
  "libpws_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
