file(REMOVE_RECURSE
  "libpws_io.a"
)
