file(REMOVE_RECURSE
  "CMakeFiles/pws_cli.dir/tools/pws_cli.cc.o"
  "CMakeFiles/pws_cli.dir/tools/pws_cli.cc.o.d"
  "pws_cli"
  "pws_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pws_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
