# Empty dependencies file for pws_cli.
# This may be replaced when dependencies are built.
