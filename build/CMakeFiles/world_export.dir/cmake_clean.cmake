file(REMOVE_RECURSE
  "CMakeFiles/world_export.dir/tools/world_export.cc.o"
  "CMakeFiles/world_export.dir/tools/world_export.cc.o.d"
  "world_export"
  "world_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
