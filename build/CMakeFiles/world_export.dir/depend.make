# Empty dependencies file for world_export.
# This may be replaced when dependencies are built.
