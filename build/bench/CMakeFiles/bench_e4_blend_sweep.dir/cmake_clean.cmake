file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_blend_sweep.dir/bench_e4_blend_sweep.cc.o"
  "CMakeFiles/bench_e4_blend_sweep.dir/bench_e4_blend_sweep.cc.o.d"
  "bench_e4_blend_sweep"
  "bench_e4_blend_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_blend_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
