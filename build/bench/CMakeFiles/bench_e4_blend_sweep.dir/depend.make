# Empty dependencies file for bench_e4_blend_sweep.
# This may be replaced when dependencies are built.
