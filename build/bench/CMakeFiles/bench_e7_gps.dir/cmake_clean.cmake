file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_gps.dir/bench_e7_gps.cc.o"
  "CMakeFiles/bench_e7_gps.dir/bench_e7_gps.cc.o.d"
  "bench_e7_gps"
  "bench_e7_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
