# Empty dependencies file for bench_e7_gps.
# This may be replaced when dependencies are built.
