file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_concept_quality.dir/bench_e8_concept_quality.cc.o"
  "CMakeFiles/bench_e8_concept_quality.dir/bench_e8_concept_quality.cc.o.d"
  "bench_e8_concept_quality"
  "bench_e8_concept_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_concept_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
