# Empty dependencies file for bench_e8_concept_quality.
# This may be replaced when dependencies are built.
