file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_entropy_dist.dir/bench_e6_entropy_dist.cc.o"
  "CMakeFiles/bench_e6_entropy_dist.dir/bench_e6_entropy_dist.cc.o.d"
  "bench_e6_entropy_dist"
  "bench_e6_entropy_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_entropy_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
