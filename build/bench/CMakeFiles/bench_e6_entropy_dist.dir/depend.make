# Empty dependencies file for bench_e6_entropy_dist.
# This may be replaced when dependencies are built.
