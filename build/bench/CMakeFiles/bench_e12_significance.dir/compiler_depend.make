# Empty compiler generated dependencies file for bench_e12_significance.
# This may be replaced when dependencies are built.
