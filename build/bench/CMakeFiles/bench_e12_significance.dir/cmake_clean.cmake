file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_significance.dir/bench_e12_significance.cc.o"
  "CMakeFiles/bench_e12_significance.dir/bench_e12_significance.cc.o.d"
  "bench_e12_significance"
  "bench_e12_significance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_significance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
