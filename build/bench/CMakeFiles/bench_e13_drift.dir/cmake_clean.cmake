file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_drift.dir/bench_e13_drift.cc.o"
  "CMakeFiles/bench_e13_drift.dir/bench_e13_drift.cc.o.d"
  "bench_e13_drift"
  "bench_e13_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
