# Empty dependencies file for bench_e13_drift.
# This may be replaced when dependencies are built.
