file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_overall.dir/bench_e1_overall.cc.o"
  "CMakeFiles/bench_e1_overall.dir/bench_e1_overall.cc.o.d"
  "bench_e1_overall"
  "bench_e1_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
