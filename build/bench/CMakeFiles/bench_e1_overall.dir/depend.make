# Empty dependencies file for bench_e1_overall.
# This may be replaced when dependencies are built.
