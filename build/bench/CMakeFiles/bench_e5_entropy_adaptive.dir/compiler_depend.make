# Empty compiler generated dependencies file for bench_e5_entropy_adaptive.
# This may be replaced when dependencies are built.
