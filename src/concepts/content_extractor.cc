#include "concepts/content_extractor.h"

#include <algorithm>
#include <functional>
#include <string_view>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::concepts {
namespace {

/// Transparent hash so candidate lookups take string_view without
/// building a temporary std::string key.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view sv) const {
    return std::hash<std::string_view>{}(sv);
  }
};

/// Tokenizer options matching how concepts are defined: lowercased,
/// stopwords removed, stemmed (through the shared StemCache memo).
text::TokenizerOptions ConceptTokenizerOptions(int min_token_length) {
  text::TokenizerOptions opts;
  opts.remove_stopwords = true;
  opts.stem = true;
  opts.min_token_length = min_token_length;
  return opts;
}

}  // namespace

ContentConceptExtractor::ContentConceptExtractor(
    ContentExtractorOptions options)
    : options_(options) {
  PWS_CHECK_GT(options_.min_support, 0.0);
  PWS_CHECK_LE(options_.min_support, 1.0);
  PWS_CHECK_GE(options_.max_support, options_.min_support);
  PWS_CHECK_GT(options_.max_concepts, 0);
}

std::vector<ContentConcept> ContentConceptExtractor::Extract(
    const backend::ResultPage& page, SnippetIncidence* incidence) const {
  std::vector<ContentConcept> concepts;
  if (incidence != nullptr) incidence->clear();
  if (page.results.empty()) return concepts;

  // Query terms (stemmed) are never concepts of their own query. Sorted
  // vector: membership checks are binary searches, no hashing.
  std::vector<std::string> query_terms =
      text::Tokenize(page.query, ConceptTokenizerOptions(1));
  std::sort(query_terms.begin(), query_terms.end());
  query_terms.erase(std::unique(query_terms.begin(), query_terms.end()),
                    query_terms.end());
  const auto is_query_term = [&query_terms](const std::string& token) {
    return std::binary_search(query_terms.begin(), query_terms.end(), token);
  };

  // Candidate concepts are interned to dense local ids; per-snippet
  // presence is stamp-deduplicated (last_seen), so one pass over the
  // token stream replaces the old per-snippet hash sets. Candidate
  // tokens are already stemmed, so a bigram contains a query term
  // exactly when either component equals one — no re-tokenization.
  const int num_snippets = static_cast<int>(page.results.size());
  std::unordered_map<std::string, int, StringHash, std::equal_to<>> cand_ids;
  std::vector<std::string> cand_terms;  // id -> candidate string
  std::vector<int> snippet_counts;      // id -> #snippets containing it
  std::vector<int> last_seen;           // id -> last snippet stamped
  std::vector<std::vector<int>> per_snippet(num_snippets);

  const text::TokenizerOptions snippet_opts =
      ConceptTokenizerOptions(options_.min_token_length);
  std::vector<std::string> tokens;  // Shared across snippets.
  std::string bigram;               // Reused join buffer.

  const auto consider = [&](std::string_view candidate, int snippet) {
    int id;
    auto it = cand_ids.find(candidate);
    if (it == cand_ids.end()) {
      id = static_cast<int>(cand_terms.size());
      cand_terms.emplace_back(candidate);
      cand_ids.emplace(cand_terms.back(), id);
      snippet_counts.push_back(0);
      last_seen.push_back(-1);
    } else {
      id = it->second;
    }
    if (last_seen[id] != snippet) {
      last_seen[id] = snippet;
      ++snippet_counts[id];
      per_snippet[snippet].push_back(id);
    }
  };

  for (int s = 0; s < num_snippets; ++s) {
    const auto& result = page.results[s];
    // Title and snippet tokenize separately into one shared buffer: the
    // token stream is identical to the old `title + " " + snippet`
    // concatenation (the join space is a token boundary) without the
    // per-result temporary strings.
    tokens.clear();
    text::TokenizeAppend(result.title, snippet_opts, &tokens);
    text::TokenizeAppend(result.snippet, snippet_opts, &tokens);
    const int n = static_cast<int>(tokens.size());
    for (int t = 0; t < n; ++t) {
      if (is_query_term(tokens[t])) continue;
      consider(tokens[t], s);
    }
    if (options_.include_bigrams) {
      for (int t = 0; t + 1 < n; ++t) {
        if (is_query_term(tokens[t]) || is_query_term(tokens[t + 1])) continue;
        bigram.assign(tokens[t]);
        bigram.push_back(' ');
        bigram.append(tokens[t + 1]);
        consider(bigram, s);
      }
    }
  }

  // Threshold by support (and drop near-universal page words).
  const int num_candidates = static_cast<int>(cand_terms.size());
  for (int id = 0; id < num_candidates; ++id) {
    const double support =
        static_cast<double>(snippet_counts[id]) / num_snippets;
    if (support + 1e-12 >= options_.min_support &&
        support <= options_.max_support + 1e-12) {
      concepts.push_back({cand_terms[id], support, snippet_counts[id]});
    }
  }
  std::sort(concepts.begin(), concepts.end(),
            [](const ContentConcept& a, const ContentConcept& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.term < b.term;
            });
  if (static_cast<int>(concepts.size()) > options_.max_concepts) {
    concepts.resize(options_.max_concepts);
  }

  if (incidence != nullptr) {
    // Candidate id -> index in the final concept list (-1 = dropped).
    std::vector<int> concept_index(num_candidates, -1);
    for (size_t i = 0; i < concepts.size(); ++i) {
      concept_index[cand_ids.find(concepts[i].term)->second] =
          static_cast<int>(i);
    }
    incidence->resize(num_snippets);
    for (int s = 0; s < num_snippets; ++s) {
      auto& row = (*incidence)[s];
      for (const int id : per_snippet[s]) {
        if (concept_index[id] >= 0) row.push_back(concept_index[id]);
      }
      std::sort(row.begin(), row.end());
    }
  }
  return concepts;
}

}  // namespace pws::concepts
