#include "concepts/content_extractor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "text/ngram.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::concepts {
namespace {

// Tokenizes display text the way concepts are defined: lowercased,
// stopwords removed, stemmed.
std::vector<std::string> ConceptTokens(const std::string& raw,
                                       int min_token_length) {
  text::TokenizerOptions opts;
  opts.remove_stopwords = true;
  opts.stem = true;
  opts.min_token_length = min_token_length;
  return text::Tokenize(raw, opts);
}

}  // namespace

ContentConceptExtractor::ContentConceptExtractor(
    ContentExtractorOptions options)
    : options_(options) {
  PWS_CHECK_GT(options_.min_support, 0.0);
  PWS_CHECK_LE(options_.min_support, 1.0);
  PWS_CHECK_GE(options_.max_support, options_.min_support);
  PWS_CHECK_GT(options_.max_concepts, 0);
}

std::vector<ContentConcept> ContentConceptExtractor::Extract(
    const backend::ResultPage& page, SnippetIncidence* incidence) const {
  std::vector<ContentConcept> concepts;
  if (incidence != nullptr) incidence->clear();
  if (page.results.empty()) return concepts;

  // Query terms (stemmed) are never concepts of their own query.
  std::unordered_set<std::string> query_terms;
  for (const auto& tok : ConceptTokens(page.query, 1)) {
    query_terms.insert(tok);
  }

  // Collect candidates per snippet.
  const int num_snippets = static_cast<int>(page.results.size());
  std::vector<std::unordered_set<std::string>> per_snippet(num_snippets);
  std::unordered_map<std::string, int> snippet_counts;
  for (int s = 0; s < num_snippets; ++s) {
    const auto& result = page.results[s];
    const std::vector<std::string> tokens =
        ConceptTokens(result.title + " " + result.snippet,
                      options_.min_token_length);
    std::vector<std::string> candidates =
        options_.include_bigrams ? text::ExtractUnigramsAndBigrams(tokens)
                                 : tokens;
    for (auto& cand : candidates) {
      // Skip candidates containing a query term.
      bool contains_query_term = false;
      for (const auto& piece : text::Tokenize(cand)) {
        if (query_terms.count(piece) > 0) {
          contains_query_term = true;
          break;
        }
      }
      if (contains_query_term) continue;
      if (per_snippet[s].insert(cand).second) ++snippet_counts[cand];
    }
  }

  // Threshold by support (and drop near-universal page words).
  for (const auto& [term, count] : snippet_counts) {
    const double support = static_cast<double>(count) / num_snippets;
    if (support + 1e-12 >= options_.min_support &&
        support <= options_.max_support + 1e-12) {
      concepts.push_back({term, support, count});
    }
  }
  std::sort(concepts.begin(), concepts.end(),
            [](const ContentConcept& a, const ContentConcept& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.term < b.term;
            });
  if (static_cast<int>(concepts.size()) > options_.max_concepts) {
    concepts.resize(options_.max_concepts);
  }

  if (incidence != nullptr) {
    std::unordered_map<std::string, int> concept_index;
    for (size_t i = 0; i < concepts.size(); ++i) {
      concept_index[concepts[i].term] = static_cast<int>(i);
    }
    incidence->resize(num_snippets);
    for (int s = 0; s < num_snippets; ++s) {
      auto& row = (*incidence)[s];
      for (const auto& term : per_snippet[s]) {
        auto it = concept_index.find(term);
        if (it != concept_index.end()) row.push_back(it->second);
      }
      std::sort(row.begin(), row.end());
    }
  }
  return concepts;
}

}  // namespace pws::concepts
