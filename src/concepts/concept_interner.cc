#include "concepts/concept_interner.h"

#include <mutex>

#include "util/check.h"

namespace pws::concepts {

ConceptInterner& ConceptInterner::Global() {
  static ConceptInterner* interner = new ConceptInterner();
  return *interner;
}

ConceptId ConceptInterner::Intern(std::string_view term) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = index_.find(term);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;  // Another thread won.
  const ConceptId id = static_cast<ConceptId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

ConceptId ConceptInterner::Find(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidConcept : it->second;
}

const std::string& ConceptInterner::TermOf(ConceptId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  PWS_CHECK_GE(id, 0);
  PWS_CHECK_LT(id, static_cast<ConceptId>(terms_.size()));
  return terms_[id];
}

int ConceptInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return static_cast<int>(terms_.size());
}

}  // namespace pws::concepts
