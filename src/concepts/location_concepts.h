#ifndef PWS_CONCEPTS_LOCATION_CONCEPTS_H_
#define PWS_CONCEPTS_LOCATION_CONCEPTS_H_

#include <unordered_map>
#include <vector>

#include "backend/search_backend.h"
#include "corpus/corpus.h"
#include "geo/location_extractor.h"
#include "geo/location_ontology.h"

namespace pws::concepts {

/// One location concept of a query: a gazetteer node with the number of
/// result documents mentioning it (directly or through a descendant) and
/// a normalized weight.
struct LocationConcept {
  geo::LocationId location = geo::kInvalidLocation;
  /// Results whose documents mention the node or any descendant.
  int doc_count = 0;
  /// doc_count normalized by the page size.
  double weight = 0.0;
};

/// Per-result location sets plus the aggregated per-query location
/// ontology projection.
struct QueryLocationConcepts {
  /// For result i, the distinct city/region/country nodes mentioned in
  /// its document (direct mentions only).
  std::vector<std::vector<geo::LocationId>> per_result;
  /// Aggregated concepts (direct + rolled up to ancestors), sorted by
  /// descending weight.
  std::vector<LocationConcept> aggregated;

  /// Returns the aggregated weight of `location` (0 when absent).
  double WeightOf(geo::LocationId location) const;
};

/// Extraction options.
struct LocationConceptOptions {
  geo::LocationExtractorOptions extractor;
  /// Roll direct mentions up to ancestors (a Whistler mention also counts
  /// toward British Columbia and Canada) — gives the ontology its
  /// hierarchical character.
  bool rollup_to_ancestors = true;
  /// Nodes present in fewer than this many result docs are dropped.
  int min_doc_count = 1;
};

/// Extracts the location concepts of a query from the bodies of its
/// result documents — the paper's location-ontology construction step.
/// (Snippets are often too short to carry place names, so the full
/// document is scanned, as the paper does.)
class LocationConceptExtractor {
 public:
  /// `ontology` must outlive the extractor.
  LocationConceptExtractor(const geo::LocationOntology* ontology,
                           LocationConceptOptions options);

  /// Extracts per-result and aggregated location concepts for `page`.
  /// `corpus` provides the document bodies.
  QueryLocationConcepts Extract(const backend::ResultPage& page,
                                const corpus::Corpus& corpus) const;

  const geo::LocationOntology& ontology() const { return *ontology_; }

 private:
  const geo::LocationOntology* ontology_;
  LocationConceptOptions options_;
  geo::LocationExtractor extractor_;
};

}  // namespace pws::concepts

#endif  // PWS_CONCEPTS_LOCATION_CONCEPTS_H_
