#ifndef PWS_CONCEPTS_CONCEPT_INTERNER_H_
#define PWS_CONCEPTS_CONCEPT_INTERNER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pws::concepts {

/// Dense id of an interned content-concept term; -1 means "unknown".
/// Concept ids are a *runtime* representation only: they are assigned in
/// first-seen order, never persisted, and never compared across
/// processes. Everything persisted (profiles, models) stays keyed by the
/// term string.
using ConceptId = int32_t;
inline constexpr ConceptId kInvalidConcept = -1;

/// Process-wide concept-term interner: the string <-> ConceptId map the
/// learning loop runs on. Content-concept terms flow from per-query
/// extraction into user profiles, click-entropy statistics, and feature
/// extraction; interning them once lets every layer downstream of
/// extraction key by a 4-byte id instead of hashing/copying strings.
///
/// Why a process-wide singleton rather than a per-engine member: ids
/// must agree between an engine's analyses and any UserProfile imported
/// into it (ImportUserState after io::LoadUserState), and profiles are
/// constructed in io/ and tests without an engine in sight. A shared
/// authority makes every profile in the process compatible with every
/// engine by construction. The id space is bounded by the distinct
/// stemmed uni/bigram concepts of the corpus vocabulary.
///
/// Thread-safety: all methods are safe to call concurrently
/// (shared_mutex; reads take the shared lock). TermOf returns a
/// reference into a deque, which never relocates elements, so the
/// reference stays valid for the process lifetime.
class ConceptInterner {
 public:
  static ConceptInterner& Global();

  /// Returns the id of `term`, interning it if new.
  ConceptId Intern(std::string_view term);

  /// Returns the id of `term` or kInvalidConcept (never interns — the
  /// read-only boundary lookup for e.g. UserProfile::ContentWeight).
  ConceptId Find(std::string_view term) const;

  /// Returns the term of `id`; id must be a valid interned id.
  const std::string& TermOf(ConceptId id) const;

  int size() const;

 private:
  ConceptInterner() = default;

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, ConceptId, StringHash, std::equal_to<>>
      index_;
  /// Deque: element addresses are stable across growth, so TermOf can
  /// hand out references without holding the lock.
  std::deque<std::string> terms_;
};

}  // namespace pws::concepts

#endif  // PWS_CONCEPTS_CONCEPT_INTERNER_H_
