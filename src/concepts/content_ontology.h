#ifndef PWS_CONCEPTS_CONTENT_ONTOLOGY_H_
#define PWS_CONCEPTS_CONTENT_ONTOLOGY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "concepts/concept_interner.h"
#include "concepts/content_extractor.h"

namespace pws::concepts {

/// The per-query content ontology: extracted concepts plus a similarity
/// relation derived from snippet co-occurrence,
///   sim(i, j) = |snippets with both| / sqrt(|with i| * |with j|),
/// i.e. the cosine of the incidence vectors. The profile layer uses it to
/// spread clicked-concept weight to related concepts.
class ContentOntology {
 public:
  /// An empty ontology (no concepts).
  ContentOntology() = default;

  /// Builds the similarity matrix from the extractor's outputs. The
  /// incidence rows must reference indices into `concepts`.
  ContentOntology(std::vector<ContentConcept> concepts,
                  const SnippetIncidence& incidence);

  int size() const { return static_cast<int>(concepts_.size()); }
  const std::vector<ContentConcept>& concepts() const { return concepts_; }
  const ContentConcept& concept_at(int index) const;

  /// Similarity in [0, 1]; Similarity(i, i) == 1 for concepts that occur
  /// anywhere.
  double Similarity(int i, int j) const;

  /// Concepts with Similarity(i, ·) >= min_similarity, excluding i,
  /// ordered by descending similarity.
  std::vector<int> Neighbors(int i, double min_similarity) const;

  /// Index of `term` among the concepts, or -1.
  int Find(const std::string& term) const;

  /// Global (process-wide) interned id of local concept `index`. The
  /// constructor interns every concept once, so the learning loop can
  /// move per-result concepts around as 4-byte ids.
  ConceptId concept_id(int index) const;

  /// Local concept index of a global id, or -1 when the id's term is not
  /// a concept of this query — the Observe-side reverse of concept_id,
  /// replacing the old linear-scan Find(term) on the spreading path.
  int LocalIndexOf(ConceptId id) const;

 private:
  std::vector<ContentConcept> concepts_;
  /// concept_ids_[local index] = global interned id.
  std::vector<ConceptId> concept_ids_;
  std::unordered_map<ConceptId, int> id_index_;
  /// Dense row-major size() x size() similarity matrix; per-query concept
  /// counts are small (<= max_concepts), so dense storage is fine.
  std::vector<double> similarity_;
};

}  // namespace pws::concepts

#endif  // PWS_CONCEPTS_CONTENT_ONTOLOGY_H_
