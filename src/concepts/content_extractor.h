#ifndef PWS_CONCEPTS_CONTENT_EXTRACTOR_H_
#define PWS_CONCEPTS_CONTENT_EXTRACTOR_H_

#include <string>
#include <vector>

#include "backend/search_backend.h"

namespace pws::concepts {

/// One content concept mined from a result page: a stemmed unigram or
/// bigram that appears in enough snippets to characterize an aspect of
/// the query ("booking", "ski resort", ...).
struct ContentConcept {
  std::string term;
  /// Fraction of the page's snippets containing the term.
  double support = 0.0;
  /// Absolute snippet count.
  int snippet_count = 0;
};

/// Extraction thresholds (the support threshold is the paper's key knob;
/// E8 sweeps it).
struct ContentExtractorOptions {
  /// Keep concepts appearing in at least this fraction of snippets.
  double min_support = 0.08;
  /// Drop concepts appearing in more than this fraction of snippets:
  /// near-universal page words ("best", "guide") cannot discriminate.
  double max_support = 0.85;
  /// Hard cap on concepts per query (highest support wins).
  int max_concepts = 120;
  /// Also consider bigrams as candidate concepts.
  bool include_bigrams = true;
  /// Minimum token length for unigram candidates.
  int min_token_length = 3;
};

/// The per-snippet concept incidence used to build the content ontology:
/// element s is the set of concept indices present in snippet s.
using SnippetIncidence = std::vector<std::vector<int>>;

/// Mines content concepts from the snippets (and titles) of a result
/// page, excluding the query's own terms. This is the paper's content
/// concept extraction step: concepts are terms that co-occur with the
/// query in enough web-snippets.
class ContentConceptExtractor {
 public:
  explicit ContentConceptExtractor(ContentExtractorOptions options);

  /// Extracts concepts ordered by descending support. If `incidence` is
  /// non-null it receives the per-snippet concept sets (aligned with the
  /// returned concept indices) for ontology construction.
  std::vector<ContentConcept> Extract(const backend::ResultPage& page,
                                      SnippetIncidence* incidence) const;

 private:
  ContentExtractorOptions options_;
};

}  // namespace pws::concepts

#endif  // PWS_CONCEPTS_CONTENT_EXTRACTOR_H_
