#include "concepts/location_concepts.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::concepts {

double QueryLocationConcepts::WeightOf(geo::LocationId location) const {
  for (const auto& lc : aggregated) {
    if (lc.location == location) return lc.weight;
  }
  return 0.0;
}

LocationConceptExtractor::LocationConceptExtractor(
    const geo::LocationOntology* ontology, LocationConceptOptions options)
    : ontology_(ontology),
      options_(options),
      extractor_(ontology, options.extractor) {
  PWS_CHECK(ontology_ != nullptr);
  PWS_CHECK_GE(options_.min_doc_count, 1);
}

QueryLocationConcepts LocationConceptExtractor::Extract(
    const backend::ResultPage& page, const corpus::Corpus& corpus) const {
  QueryLocationConcepts out;
  out.per_result.resize(page.results.size());
  std::unordered_map<geo::LocationId, int> doc_counts;

  // Title and body tokenize into one shared buffer (the token stream is
  // identical to tokenizing their concatenation) — no per-result
  // `title + " " + body` temporaries.
  std::vector<std::string> tokens;
  for (size_t i = 0; i < page.results.size(); ++i) {
    const corpus::Document& doc = corpus.doc(page.results[i].doc);
    tokens.clear();
    text::TokenizeAppend(doc.title, text::TokenizerOptions{}, &tokens);
    text::TokenizeAppend(doc.body, text::TokenizerOptions{}, &tokens);
    const auto mentions = extractor_.ExtractFromTokens(tokens);
    std::unordered_set<geo::LocationId> direct;
    for (const auto& mention : mentions) direct.insert(mention.location);
    out.per_result[i].assign(direct.begin(), direct.end());
    std::sort(out.per_result[i].begin(), out.per_result[i].end());

    // Count each node once per document; optionally roll up to ancestors.
    std::unordered_set<geo::LocationId> counted;
    for (geo::LocationId loc : direct) {
      if (options_.rollup_to_ancestors) {
        for (geo::LocationId node : ontology_->PathToRoot(loc)) {
          if (node == ontology_->root()) break;
          counted.insert(node);
        }
      } else {
        counted.insert(loc);
      }
    }
    for (geo::LocationId node : counted) ++doc_counts[node];
  }

  const int page_size = std::max<size_t>(1, page.results.size());
  for (const auto& [location, count] : doc_counts) {
    if (count < options_.min_doc_count) continue;
    LocationConcept lc;
    lc.location = location;
    lc.doc_count = count;
    lc.weight = static_cast<double>(count) / page_size;
    out.aggregated.push_back(lc);
  }
  std::sort(out.aggregated.begin(), out.aggregated.end(),
            [](const LocationConcept& a, const LocationConcept& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.location < b.location;
            });
  return out;
}

}  // namespace pws::concepts
