#include "concepts/content_ontology.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pws::concepts {

ContentOntology::ContentOntology(std::vector<ContentConcept> concepts,
                                 const SnippetIncidence& incidence)
    : concepts_(std::move(concepts)) {
  const int n = size();
  concept_ids_.reserve(n);
  ConceptInterner& interner = ConceptInterner::Global();
  for (int i = 0; i < n; ++i) {
    const ConceptId id = interner.Intern(concepts_[i].term);
    concept_ids_.push_back(id);
    id_index_.emplace(id, i);
  }
  similarity_.assign(static_cast<size_t>(n) * n, 0.0);
  if (n == 0) return;
  std::vector<int> occurrence(n, 0);
  std::vector<int> cooccurrence(static_cast<size_t>(n) * n, 0);
  for (const auto& row : incidence) {
    for (int i : row) {
      PWS_CHECK_GE(i, 0);
      PWS_CHECK_LT(i, n);
      ++occurrence[i];
      for (int j : row) {
        if (j > i) ++cooccurrence[static_cast<size_t>(i) * n + j];
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (occurrence[i] > 0) similarity_[static_cast<size_t>(i) * n + i] = 1.0;
    for (int j = i + 1; j < n; ++j) {
      if (occurrence[i] == 0 || occurrence[j] == 0) continue;
      const double sim =
          cooccurrence[static_cast<size_t>(i) * n + j] /
          std::sqrt(static_cast<double>(occurrence[i]) * occurrence[j]);
      similarity_[static_cast<size_t>(i) * n + j] = sim;
      similarity_[static_cast<size_t>(j) * n + i] = sim;
    }
  }
}

const ContentConcept& ContentOntology::concept_at(int index) const {
  PWS_CHECK_GE(index, 0);
  PWS_CHECK_LT(index, size());
  return concepts_[index];
}

double ContentOntology::Similarity(int i, int j) const {
  PWS_CHECK_GE(i, 0);
  PWS_CHECK_LT(i, size());
  PWS_CHECK_GE(j, 0);
  PWS_CHECK_LT(j, size());
  return similarity_[static_cast<size_t>(i) * size() + j];
}

std::vector<int> ContentOntology::Neighbors(int i,
                                            double min_similarity) const {
  std::vector<int> out;
  for (int j = 0; j < size(); ++j) {
    if (j == i) continue;
    if (Similarity(i, j) >= min_similarity) out.push_back(j);
  }
  std::sort(out.begin(), out.end(), [&](int a, int b) {
    const double sa = Similarity(i, a);
    const double sb = Similarity(i, b);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return out;
}

int ContentOntology::Find(const std::string& term) const {
  for (int i = 0; i < size(); ++i) {
    if (concepts_[i].term == term) return i;
  }
  return -1;
}

ConceptId ContentOntology::concept_id(int index) const {
  PWS_CHECK_GE(index, 0);
  PWS_CHECK_LT(index, size());
  return concept_ids_[index];
}

int ContentOntology::LocalIndexOf(ConceptId id) const {
  auto it = id_index_.find(id);
  return it == id_index_.end() ? -1 : it->second;
}

}  // namespace pws::concepts
