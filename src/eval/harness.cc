#include "eval/harness.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace pws::eval {
namespace {

// Mixes user/query/seed into a per-impression RNG seed so CTR draws are
// identical across engine configurations (paired comparison).
uint64_t MixSeed(uint64_t seed, int user, int query_id, int sample) {
  uint64_t h = seed;
  h ^= 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(user) + (h << 6);
  h ^= 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(query_id) + (h << 6);
  h ^= 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(sample) + (h << 6);
  return h;
}

}  // namespace

StrategyMetrics AverageMetrics(const std::vector<StrategyMetrics>& runs) {
  PWS_CHECK(!runs.empty());
  StrategyMetrics mean;
  const double n = static_cast<double>(runs.size());
  for (const auto& run : runs) {
    mean.avg_rank_relevant += run.avg_rank_relevant / n;
    mean.mrr += run.mrr / n;
    mean.ndcg10 += run.ndcg10 / n;
    mean.mean_average_precision += run.mean_average_precision / n;
    for (int k = 0; k < 10; ++k) {
      mean.precision_at[k] += run.precision_at[k] / n;
    }
    mean.ctr_at_1 += run.ctr_at_1 / n;
    mean.impressions += run.impressions;
    mean.online_ndcg10 += run.online_ndcg10 / n;
    mean.online_mrr += run.online_mrr / n;
    mean.online_impressions += run.online_impressions;
    for (int c = 0; c < 3; ++c) {
      mean.avg_rank_by_class[c] += run.avg_rank_by_class[c] / n;
      mean.ctr1_by_class[c] += run.ctr1_by_class[c] / n;
      mean.impressions_by_class[c] += run.impressions_by_class[c];
    }
  }
  return mean;
}

SimulationHarness::SimulationHarness(const World* world,
                                     SimulationOptions options)
    : world_(world), options_(options) {
  PWS_CHECK(world_ != nullptr);
  PWS_CHECK_GE(options_.train_days, 0);
  PWS_CHECK_GE(options_.queries_per_user_day, 1);
  PWS_CHECK_GE(options_.train_every_days, 1);
  PWS_CHECK_GE(options_.test_queries_per_user, 1);
  PWS_CHECK_GE(options_.ctr_samples_per_impression, 1);
  PWS_CHECK_GE(options_.threads, 0);
  for (const auto& user : world_->users()) {
    query_weights_.emplace(user.id, QueryWeightsFor(user));
  }
}

const std::vector<double>& SimulationHarness::CachedQueryWeightsFor(
    const click::SimulatedUser& user) const {
  const auto it = query_weights_.find(user.id);
  PWS_CHECK(it != query_weights_.end()) << "unknown user " << user.id;
  return it->second;
}

std::vector<double> SimulationHarness::QueryWeightsFor(
    const click::SimulatedUser& user) const {
  const auto& queries = world_->queries();
  std::vector<double> weights(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    // Users favour queries about their favourite topics, and when a query
    // names a place, queries about places they care about (people search
    // hotels where they live or travel, not uniformly across the globe).
    double w = 0.2 + 3.0 * user.topic_affinity[queries[q].topic];
    if (queries[q].explicit_location != geo::kInvalidLocation) {
      w *= 0.15 + user.LocationAffinity(world_->ontology(),
                                        queries[q].explicit_location);
    }
    weights[q] = w;
  }
  return weights;
}

const click::QueryIntent& SimulationHarness::SampleQuery(
    const click::SimulatedUser& user, Random& rng) const {
  // Same weights as QueryWeightsFor, so draws (and therefore every
  // downstream metric) are bit-identical to the recompute-per-sample
  // path this replaces.
  const std::vector<double>& weights = CachedQueryWeightsFor(user);
  return world_->queries()[rng.Categorical(weights)];
}

const click::QueryIntent& SimulationHarness::SampleQueryInTopic(
    const click::SimulatedUser& user, int topic, Random& rng) const {
  const auto& queries = world_->queries();
  const std::vector<double>& weights = CachedQueryWeightsFor(user);
  std::vector<double> restricted(weights.size(), 0.0);
  double total = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].topic == topic) {
      restricted[q] = weights[q];
      total += weights[q];
    }
  }
  if (total <= 0.0) return SampleQuery(user, rng);
  return queries[rng.Categorical(restricted)];
}

std::vector<const click::QueryIntent*> SimulationHarness::TestQueriesFor(
    const click::SimulatedUser& user) const {
  const auto& queries = world_->queries();
  const std::vector<double>& weights = CachedQueryWeightsFor(user);
  std::vector<int> order(queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  const int n = std::min<int>(options_.test_queries_per_user,
                              static_cast<int>(order.size()));
  std::vector<const click::QueryIntent*> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(&queries[order[i]]);
  return out;
}

StrategyMetrics SimulationHarness::RunAveraged(
    const core::EngineOptions& engine_options, int repetitions) const {
  PWS_CHECK_GE(repetitions, 1);
  // Each repetition is an independent run (own engine, own seed), so
  // they parallelize freely; slot r belongs to repetition r alone and
  // AverageMetrics folds the slots in index order, which makes the
  // result bit-identical to a sequential loop.
  std::vector<StrategyMetrics> runs(repetitions);
  ParallelFor(ResolveThreadCount(options_.threads), repetitions,
              [&](int r) {
                runs[r] = RunSeeded(engine_options,
                                    options_.seed + static_cast<uint64_t>(r),
                                    nullptr);
              });
  return AverageMetrics(runs);
}

std::vector<StrategyMetrics> SimulationHarness::RunManyAveraged(
    const std::vector<core::EngineOptions>& configs, int repetitions) const {
  PWS_CHECK_GE(repetitions, 1);
  const int num_configs = static_cast<int>(configs.size());
  std::vector<std::vector<StrategyMetrics>> runs(
      num_configs, std::vector<StrategyMetrics>(repetitions));
  // Flatten the (config × repetition) grid into one task list so slow
  // configurations don't serialize behind fast ones.
  ParallelFor(ResolveThreadCount(options_.threads),
              num_configs * repetitions, [&](int task) {
                const int c = task / repetitions;
                const int r = task % repetitions;
                runs[c][r] = RunSeeded(
                    configs[c], options_.seed + static_cast<uint64_t>(r),
                    nullptr);
              });
  std::vector<StrategyMetrics> averaged;
  averaged.reserve(num_configs);
  for (const auto& config_runs : runs) {
    averaged.push_back(AverageMetrics(config_runs));
  }
  return averaged;
}

std::vector<StrategyMetrics> SimulationHarness::RunMany(
    const std::vector<core::EngineOptions>& configs,
    std::vector<std::vector<ImpressionOutcome>>* outcomes) const {
  const int num_configs = static_cast<int>(configs.size());
  if (outcomes != nullptr) {
    outcomes->assign(num_configs, {});
  }
  std::vector<StrategyMetrics> results(num_configs);
  ParallelFor(ResolveThreadCount(options_.threads), num_configs,
              [&](int c) {
                results[c] = RunSeeded(
                    configs[c], options_.seed,
                    outcomes != nullptr ? &(*outcomes)[c] : nullptr);
              });
  return results;
}

CacheStats SimulationHarness::accumulated_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_stats_mutex_);
  return cache_stats_;
}

StrategyMetrics SimulationHarness::Run(
    const core::EngineOptions& engine_options) const {
  return Run(engine_options, nullptr);
}

StrategyMetrics SimulationHarness::Run(
    const core::EngineOptions& engine_options,
    std::vector<ImpressionOutcome>* outcomes) const {
  return RunSeeded(engine_options, options_.seed, outcomes);
}

StrategyMetrics SimulationHarness::RunSeeded(
    const core::EngineOptions& engine_options, uint64_t seed,
    std::vector<ImpressionOutcome>* outcomes) const {
  PersonalizerFactory factory = [this, &engine_options]() {
    return std::make_unique<core::PwsEngine>(&world_->search_backend(),
                                             &world_->ontology(),
                                             engine_options);
  };
  const bool attach_gps =
      engine_options.strategy == ranking::Strategy::kCombinedGps;
  return RunPersonalizerSeeded(factory, attach_gps, seed, outcomes);
}

StrategyMetrics SimulationHarness::RunPersonalizer(
    const PersonalizerFactory& factory, bool attach_gps_traces,
    std::vector<ImpressionOutcome>* outcomes) const {
  return RunPersonalizerSeeded(factory, attach_gps_traces, options_.seed,
                               outcomes);
}

StrategyMetrics SimulationHarness::RunPersonalizerSeeded(
    const PersonalizerFactory& factory, bool attach_gps_traces,
    uint64_t seed, std::vector<ImpressionOutcome>* outcomes) const {
  PWS_SPAN("harness.run");
  std::unique_ptr<core::Personalizer> personalizer = factory();
  PWS_CHECK(personalizer != nullptr);
  if (outcomes != nullptr) outcomes->clear();
  for (const auto& user : world_->users()) {
    personalizer->RegisterUser(user.id);
    if (attach_gps_traces && !user.gps_trace.empty()) {
      personalizer->AttachGpsTrace(user.id, user.gps_trace);
    }
  }

  Random rng(seed);

  // --- Training phase: serve, click, observe, periodically retrain. ---
  MeanAccumulator online_ndcg;
  MeanAccumulator online_mrr;
  int online_impressions = 0;
  for (int day = 0; day < options_.train_days; ++day) {
    PWS_SPAN("harness.train.day");
    for (const auto& user : world_->users()) {
      // Session anchor: with session_stickiness, each query after the
      // first repeats the previous query's topic with that probability.
      // Sessions never span days (mirrors click::SessionOptions).
      int anchor_topic = -1;
      for (int q = 0; q < options_.queries_per_user_day; ++q) {
        const click::QueryIntent* intent;
        if (options_.session_stickiness > 0.0 && anchor_topic >= 0 &&
            rng.Bernoulli(options_.session_stickiness)) {
          intent = &SampleQueryInTopic(user, anchor_topic, rng);
        } else {
          intent = &SampleQuery(user, rng);
        }
        anchor_topic = intent->topic;
        core::PersonalizedPage page =
            personalizer->Serve(user.id, intent->text);
        const backend::ResultPage shown = page.ShownPage();
        if (options_.measure_online) {
          GradeList grades;
          grades.reserve(shown.results.size());
          for (const auto& result : shown.results) {
            grades.push_back(world_->relevance().TrueGrade(
                user, *intent, world_->corpus().doc(result.doc)));
          }
          online_ndcg.Add(NdcgAtK(grades, 10));
          online_mrr.Add(ReciprocalRank(grades));
          ++online_impressions;
        }
        const click::ClickRecord record = world_->click_model().Simulate(
            user, *intent, shown, world_->corpus(), day, rng);
        if (rng.Bernoulli(options_.training_fraction)) {
          personalizer->Observe(user.id, page, record);
        }
      }
    }
    personalizer->AdvanceDay();
    if ((day + 1) % options_.train_every_days == 0) {
      personalizer->TrainAllUsers();
    }
  }
  personalizer->TrainAllUsers();

  // --- Test phase: frozen models, deterministic per-user query sets. ---
  PWS_SPAN("harness.test");
  StrategyMetrics metrics;
  MeanAccumulator avg_rank;
  MeanAccumulator mrr;
  MeanAccumulator ndcg;
  MeanAccumulator average_precision;
  std::array<MeanAccumulator, 10> precision;
  MeanAccumulator ctr1;
  std::array<MeanAccumulator, 3> class_rank;
  std::array<MeanAccumulator, 3> class_ctr1;

  for (const auto& user : world_->users()) {
    for (const click::QueryIntent* intent : TestQueriesFor(user)) {
      core::PersonalizedPage page =
          personalizer->Serve(user.id, intent->text);
      const backend::ResultPage shown = page.ShownPage();

      GradeList grades;
      grades.reserve(shown.results.size());
      for (const auto& result : shown.results) {
        grades.push_back(world_->relevance().TrueGrade(
            user, *intent, world_->corpus().doc(result.doc)));
      }
      const int cls = static_cast<int>(intent->query_class);
      const auto rank = AverageRankOfRelevant(grades);
      avg_rank.AddOptional(rank);
      class_rank[cls].AddOptional(rank);
      const double rr = ReciprocalRank(grades);
      const double page_ndcg = NdcgAtK(grades, 10);
      mrr.Add(rr);
      ndcg.Add(page_ndcg);
      average_precision.Add(AveragePrecision(grades));
      for (int k = 1; k <= 10; ++k) {
        precision[k - 1].Add(PrecisionAtK(grades, k));
      }
      if (outcomes != nullptr) {
        ImpressionOutcome outcome;
        outcome.user = user.id;
        outcome.query_id = intent->id;
        outcome.query_class = cls;
        outcome.reciprocal_rank = rr;
        outcome.ndcg10 = page_ndcg;
        outcome.avg_rank_relevant = rank;
        outcomes->push_back(outcome);
      }

      // CTR@1 from paired click simulations (models stay frozen).
      for (int s = 0; s < options_.ctr_samples_per_impression; ++s) {
        Random ctr_rng(MixSeed(seed, user.id, intent->id, s));
        const click::ClickRecord record = world_->click_model().Simulate(
            user, *intent, shown, world_->corpus(), options_.train_days,
            ctr_rng);
        const double clicked_top =
            (!record.interactions.empty() && record.interactions[0].clicked)
                ? 1.0
                : 0.0;
        ctr1.Add(clicked_top);
        class_ctr1[cls].Add(clicked_top);
      }
      ++metrics.impressions;
      ++metrics.impressions_by_class[cls];
    }
  }

  metrics.avg_rank_relevant = avg_rank.Mean();
  metrics.mrr = mrr.Mean();
  metrics.ndcg10 = ndcg.Mean();
  metrics.mean_average_precision = average_precision.Mean();
  for (int k = 0; k < 10; ++k) {
    metrics.precision_at[k] = precision[k].Mean();
  }
  metrics.ctr_at_1 = ctr1.Mean();
  metrics.online_ndcg10 = online_ndcg.Mean();
  metrics.online_mrr = online_mrr.Mean();
  metrics.online_impressions = online_impressions;
  for (int c = 0; c < 3; ++c) {
    metrics.avg_rank_by_class[c] = class_rank[c].Mean();
    metrics.ctr1_by_class[c] = class_ctr1[c].Mean();
  }

  // Fold this engine's query-analysis cache counters into the
  // harness-wide totals (baselines aren't PwsEngines and have no cache).
  if (const auto* engine =
          dynamic_cast<const core::PwsEngine*>(personalizer.get())) {
    const CacheStats stats = engine->query_cache_stats();
    std::lock_guard<std::mutex> lock(cache_stats_mutex_);
    cache_stats_ += stats;
  }
  return metrics;
}

}  // namespace pws::eval
