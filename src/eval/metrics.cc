#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pws::eval {
namespace {

bool IsRelevant(click::RelevanceGrade grade) {
  return static_cast<int>(grade) >= 1;
}

double Gain(click::RelevanceGrade grade) {
  return std::pow(2.0, static_cast<double>(grade)) - 1.0;
}

}  // namespace

std::optional<double> AverageRankOfRelevant(const GradeList& grades) {
  double sum = 0.0;
  int count = 0;
  for (size_t i = 0; i < grades.size(); ++i) {
    if (IsRelevant(grades[i])) {
      sum += static_cast<double>(i + 1);
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / count;
}

double PrecisionAtK(const GradeList& grades, int k) {
  PWS_CHECK_GE(k, 1);
  int hits = 0;
  for (int i = 0; i < k && i < static_cast<int>(grades.size()); ++i) {
    if (IsRelevant(grades[i])) ++hits;
  }
  return static_cast<double>(hits) / k;
}

double RecallAtK(const GradeList& grades, int k) {
  PWS_CHECK_GE(k, 1);
  int total = 0;
  int hits = 0;
  for (size_t i = 0; i < grades.size(); ++i) {
    if (!IsRelevant(grades[i])) continue;
    ++total;
    if (static_cast<int>(i) < k) ++hits;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hits) / total;
}

double ReciprocalRank(const GradeList& grades) {
  for (size_t i = 0; i < grades.size(); ++i) {
    if (IsRelevant(grades[i])) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

double NdcgAtK(const GradeList& grades, int k) {
  PWS_CHECK_GE(k, 1);
  double dcg = 0.0;
  for (int i = 0; i < k && i < static_cast<int>(grades.size()); ++i) {
    dcg += Gain(grades[i]) / std::log2(static_cast<double>(i + 2));
  }
  GradeList ideal = grades;
  std::sort(ideal.begin(), ideal.end(),
            [](click::RelevanceGrade a, click::RelevanceGrade b) {
              return static_cast<int>(a) > static_cast<int>(b);
            });
  double idcg = 0.0;
  for (int i = 0; i < k && i < static_cast<int>(ideal.size()); ++i) {
    idcg += Gain(ideal[i]) / std::log2(static_cast<double>(i + 2));
  }
  if (idcg == 0.0) return 0.0;
  return dcg / idcg;
}

double AveragePrecision(const GradeList& grades) {
  int relevant = 0;
  double sum = 0.0;
  for (size_t i = 0; i < grades.size(); ++i) {
    if (!IsRelevant(grades[i])) continue;
    ++relevant;
    sum += static_cast<double>(relevant) / static_cast<double>(i + 1);
  }
  if (relevant == 0) return 0.0;
  return sum / relevant;
}

void MeanAccumulator::Add(double value) {
  sum_ += value;
  ++count_;
}

void MeanAccumulator::AddOptional(const std::optional<double>& value) {
  if (value.has_value()) Add(*value);
}

double MeanAccumulator::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / count_;
}

}  // namespace pws::eval
