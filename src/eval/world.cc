#include "eval/world.h"

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace pws::eval {

World::World(const WorldConfig& config) : config_(config) {
  WallTimer timer;
  Random rng(config.seed);

  topics_ = std::make_unique<corpus::TopicModel>(corpus::TopicModel::Create(
      config.num_topics, config.filler_terms_per_topic, rng));
  ontology_ =
      std::make_unique<geo::LocationOntology>(geo::BuildWorldGazetteer());

  corpus::CorpusGenerator generator(topics_.get(), ontology_.get(),
                                    config.corpus);
  corpus_ = std::make_unique<corpus::Corpus>(generator.Generate(rng));
  backend_ = std::make_unique<backend::SearchBackend>(corpus_.get(),
                                                      config.backend);

  users_ = click::GenerateUserPopulation(*topics_, *ontology_, config.users,
                                         rng);
  queries_ =
      click::GenerateQueryPool(*topics_, *ontology_, config.queries, rng);

  relevance_ = std::make_unique<click::RelevanceModel>(ontology_.get(),
                                                       config.relevance);
  click_model_ = std::make_unique<click::CascadeClickModel>(relevance_.get(),
                                                            config.clicks);
  PWS_LOG(kInfo) << "world built: " << corpus_->size() << " docs, "
                 << users_.size() << " users, " << queries_.size()
                 << " queries, " << ontology_->size()
                 << " gazetteer nodes in " << timer.ElapsedSeconds() << "s";
}

std::vector<const click::QueryIntent*> World::QueriesOfClass(
    click::QueryClass query_class) const {
  std::vector<const click::QueryIntent*> out;
  for (const auto& q : queries_) {
    if (q.query_class == query_class) out.push_back(&q);
  }
  return out;
}

}  // namespace pws::eval
