#include "eval/stats.h"

#include <cmath>

#include "util/check.h"

namespace pws::eval {

PairedComparison ComparePaired(const std::vector<ImpressionOutcome>& a,
                               const std::vector<ImpressionOutcome>& b,
                               const MetricExtractor& extractor) {
  PWS_CHECK_EQ(a.size(), b.size()) << "outcome lists must align";
  PairedComparison result;
  result.n = static_cast<int>(a.size());
  if (result.n == 0) return result;

  double sum_a = 0.0;
  double sum_b = 0.0;
  double sum_delta = 0.0;
  double sum_delta_sq = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    PWS_CHECK_EQ(a[i].user, b[i].user) << "outcome lists must align";
    PWS_CHECK_EQ(a[i].query_id, b[i].query_id) << "outcome lists must align";
    const double va = extractor(a[i]);
    const double vb = extractor(b[i]);
    const double delta = va - vb;
    sum_a += va;
    sum_b += vb;
    sum_delta += delta;
    sum_delta_sq += delta * delta;
    if (delta > 1e-12) {
      ++result.wins;
    } else if (delta < -1e-12) {
      ++result.losses;
    } else {
      ++result.ties;
    }
  }
  result.mean_a = sum_a / result.n;
  result.mean_b = sum_b / result.n;
  result.mean_delta = sum_delta / result.n;
  if (result.n > 1) {
    const double variance =
        (sum_delta_sq - result.n * result.mean_delta * result.mean_delta) /
        (result.n - 1);
    result.stddev_delta = std::sqrt(std::max(0.0, variance));
    if (result.stddev_delta > 1e-12) {
      result.t_statistic = result.mean_delta /
                           (result.stddev_delta / std::sqrt(
                                static_cast<double>(result.n)));
    }
  }
  return result;
}

double ReciprocalRankOf(const ImpressionOutcome& outcome) {
  return outcome.reciprocal_rank;
}

double NdcgOf(const ImpressionOutcome& outcome) { return outcome.ndcg10; }

}  // namespace pws::eval
