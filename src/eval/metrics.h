#ifndef PWS_EVAL_METRICS_H_
#define PWS_EVAL_METRICS_H_

#include <optional>
#include <vector>

#include "click/relevance.h"

namespace pws::eval {

/// The graded relevance of one shown page, top to bottom.
using GradeList = std::vector<click::RelevanceGrade>;

/// Mean 1-based rank of results graded >= kRelevant; nullopt when the
/// page has none (the paper's headline metric — lower is better).
std::optional<double> AverageRankOfRelevant(const GradeList& grades);

/// Fraction of the top-k graded >= kRelevant. k must be >= 1; positions
/// past the end count as irrelevant.
double PrecisionAtK(const GradeList& grades, int k);

/// Fraction of the page's relevant results that appear in the top-k.
/// Returns 0 when the page has no relevant result.
double RecallAtK(const GradeList& grades, int k);

/// Reciprocal of the 1-based rank of the first result graded >=
/// kRelevant; 0 when none.
double ReciprocalRank(const GradeList& grades);

/// NDCG@k with gains 2^grade - 1 and log2(rank+1) discounts, normalized
/// by the ideal ordering of the same grade multiset. Pages with all-zero
/// grades score 0.
double NdcgAtK(const GradeList& grades, int k);

/// Average precision: mean of P@k over the positions k holding relevant
/// results, normalized by the number of relevant results. 0 when none.
double AveragePrecision(const GradeList& grades);

/// Streaming mean over optionally-missing per-page values.
class MeanAccumulator {
 public:
  void Add(double value);
  void AddOptional(const std::optional<double>& value);
  int count() const { return count_; }
  /// Mean of added values; 0 when empty.
  double Mean() const;

 private:
  double sum_ = 0.0;
  int count_ = 0;
};

}  // namespace pws::eval

#endif  // PWS_EVAL_METRICS_H_
