#ifndef PWS_EVAL_HARNESS_H_
#define PWS_EVAL_HARNESS_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/personalizer.h"
#include "core/pws_engine.h"
#include "eval/metrics.h"
#include "eval/world.h"
#include "util/sharded_lru.h"

namespace pws::eval {

/// Train/test protocol knobs.
struct SimulationOptions {
  uint64_t seed = 7;
  /// Days of clickthrough collection (with periodic retraining).
  int train_days = 12;
  /// Queries each user issues per day.
  int queries_per_user_day = 6;
  /// Retrain every N training days (and once more at the end).
  int train_every_days = 2;
  /// Fraction of training impressions actually observed (E3 sweeps this;
  /// the rest are served but not learned from).
  double training_fraction = 1.0;
  /// Frozen-model evaluation: each user is tested on their personal
  /// top-N most likely queries (deterministic, identical across engine
  /// configurations, so comparisons are paired).
  int test_queries_per_user = 30;
  /// Click simulations per test impression for the CTR estimate, each
  /// seeded by (user, query) so CTR draws are paired across
  /// configurations too.
  int ctr_samples_per_impression = 5;
  /// Worker threads for RunAveraged / RunMany* (0 = one per hardware
  /// core, 1 = sequential). Parallelism is across runs — each run owns
  /// its engine and stays sequential inside — so every thread count
  /// produces bit-identical metrics and outcomes.
  int threads = 0;
  /// Session-structured training traffic (E14): when > 0, each query
  /// after the first in a user-day repeats the previous query's topic
  /// with this probability, so same-day traffic arrives in topically
  /// coherent bursts (the regime in-session personalization exploits).
  /// 0 keeps the original i.i.d. sampling, bit-identical draw for draw.
  double session_stickiness = 0.0;
  /// Grade every page served during training and fill the online_*
  /// fields of StrategyMetrics. Off by default: online adaptation
  /// (session boost, bandit exploration) only shows up in training-phase
  /// quality, but grading costs a relevance lookup per shown result.
  bool measure_online = false;
};

/// Aggregated test-day metrics for one engine configuration.
struct StrategyMetrics {
  double avg_rank_relevant = 0.0;
  double mrr = 0.0;
  double ndcg10 = 0.0;
  double mean_average_precision = 0.0;
  /// precision_at[k-1] = P@k for k = 1..10.
  std::array<double, 10> precision_at{};
  /// Simulated click-through rate at the top position.
  double ctr_at_1 = 0.0;
  int impressions = 0;
  /// Breakdown by query class (indexed by QueryClass).
  std::array<double, 3> avg_rank_by_class{};
  std::array<double, 3> ctr1_by_class{};
  std::array<int, 3> impressions_by_class{};
  /// Training-phase ("online") quality, filled only when
  /// SimulationOptions::measure_online is set. This is where in-session
  /// adaptation acts: the frozen test phase serves queries with no live
  /// session around them.
  double online_ndcg10 = 0.0;
  double online_mrr = 0.0;
  int online_impressions = 0;
};

/// Element-wise mean of several runs' metrics (for seed-averaged
/// experiment tables). The list must be non-empty.
StrategyMetrics AverageMetrics(const std::vector<StrategyMetrics>& runs);

/// Per-test-impression outcome, for paired significance analysis. The
/// test protocol is deterministic, so two configurations evaluated on
/// the same World+SimulationOptions produce outcome lists aligned
/// index-by-index.
struct ImpressionOutcome {
  click::UserId user = -1;
  int query_id = -1;
  int query_class = 0;
  double reciprocal_rank = 0.0;
  double ndcg10 = 0.0;
  /// Absent when the page had no relevant result.
  std::optional<double> avg_rank_relevant;
};

/// Builds a fresh personalizer for one simulation run.
using PersonalizerFactory =
    std::function<std::unique_ptr<core::Personalizer>()>;

/// Drives the full protocol of the reconstructed evaluation against a
/// shared World: simulate `train_days` of personalized serving and
/// clicking (online profile updates + periodic RankSVM retraining), then
/// freeze and measure on `test_days`. Deterministic given the seeds; the
/// same World + SimulationOptions give paired comparisons across engine
/// configurations.
class SimulationHarness {
 public:
  /// `world` must outlive the harness.
  SimulationHarness(const World* world, SimulationOptions options);

  /// Runs one engine configuration through the protocol.
  StrategyMetrics Run(const core::EngineOptions& engine_options) const;

  /// Same, also filling `outcomes` (one entry per test impression).
  StrategyMetrics Run(const core::EngineOptions& engine_options,
                      std::vector<ImpressionOutcome>* outcomes) const;

  /// Runs an arbitrary personalizer (PwsEngine or a baseline) through
  /// the identical protocol. When `attach_gps_traces` is set, user GPS
  /// traces are handed to the personalizer before training.
  StrategyMetrics RunPersonalizer(
      const PersonalizerFactory& factory, bool attach_gps_traces,
      std::vector<ImpressionOutcome>* outcomes) const;

  /// Runs `repetitions` times with sim seeds seed, seed+1, ... and
  /// averages (training trajectories differ per seed; the test protocol
  /// is already paired). Repetitions run in parallel on up to
  /// options().threads workers; results are bit-identical to the
  /// sequential path because every repetition owns an independent
  /// engine and the averaging order is fixed by repetition index.
  StrategyMetrics RunAveraged(const core::EngineOptions& engine_options,
                              int repetitions) const;

  /// Runs several engine configurations (each seed-averaged over
  /// `repetitions`) concurrently: the (configuration × repetition) grid
  /// is flattened into one task list so the pool stays busy even when
  /// configurations differ in cost. Element i corresponds to
  /// configs[i]; equivalent to calling RunAveraged per config.
  std::vector<StrategyMetrics> RunManyAveraged(
      const std::vector<core::EngineOptions>& configs,
      int repetitions) const;

  /// Runs several configurations concurrently, one single run each,
  /// capturing per-impression outcomes for paired analysis. When
  /// `outcomes` is non-null it is resized to configs.size();
  /// (*outcomes)[i] belongs to configs[i] and is index-aligned across
  /// configurations (the paired-comparison invariant).
  std::vector<StrategyMetrics> RunMany(
      const std::vector<core::EngineOptions>& configs,
      std::vector<std::vector<ImpressionOutcome>>* outcomes) const;

  const SimulationOptions& options() const { return options_; }

  /// Query-analysis cache counters summed over every PwsEngine this
  /// harness has run to completion (sequential or parallel) since
  /// construction — the serving-layer cost view of an experiment.
  CacheStats accumulated_cache_stats() const;

  /// The deterministic per-user test set: the user's top-N queries by
  /// issue probability (favourite topics, affine places).
  std::vector<const click::QueryIntent*> TestQueriesFor(
      const click::SimulatedUser& user) const;

  /// Issue-probability weights of every pool query for `user`.
  std::vector<double> QueryWeightsFor(const click::SimulatedUser& user) const;

  /// Cached per-user weights (precomputed at construction — the weights
  /// are a pure function of the immutable World, and SampleQuery sits on
  /// the training hot path of every run).
  const std::vector<double>& CachedQueryWeightsFor(
      const click::SimulatedUser& user) const;

  /// Samples the query a user issues (favourite-topic biased).
  const click::QueryIntent& SampleQuery(const click::SimulatedUser& user,
                                        Random& rng) const;

  /// Samples a query restricted to `topic`, with the user's usual
  /// weights renormalized over that topic (falls back to SampleQuery if
  /// the topic has no queries). Drives session_stickiness.
  const click::QueryIntent& SampleQueryInTopic(
      const click::SimulatedUser& user, int topic, Random& rng) const;

 private:
  /// One full protocol run with an explicit simulation seed (the
  /// sequential unit of work every public entry point reduces to).
  StrategyMetrics RunSeeded(const core::EngineOptions& engine_options,
                            uint64_t seed,
                            std::vector<ImpressionOutcome>* outcomes) const;
  StrategyMetrics RunPersonalizerSeeded(
      const PersonalizerFactory& factory, bool attach_gps_traces,
      uint64_t seed, std::vector<ImpressionOutcome>* outcomes) const;

  const World* world_;
  SimulationOptions options_;
  /// user id -> issue-probability weights over the query pool. Immutable
  /// after construction, so concurrent runs share it lock-free.
  std::unordered_map<click::UserId, std::vector<double>> query_weights_;
  mutable std::mutex cache_stats_mutex_;
  mutable CacheStats cache_stats_;
};

}  // namespace pws::eval

#endif  // PWS_EVAL_HARNESS_H_
