#ifndef PWS_EVAL_WORLD_H_
#define PWS_EVAL_WORLD_H_

#include <memory>
#include <vector>

#include "backend/search_backend.h"
#include "click/click_model.h"
#include "click/query_generator.h"
#include "click/relevance.h"
#include "click/simulated_user.h"
#include "corpus/corpus.h"
#include "corpus/corpus_generator.h"
#include "corpus/topic_model.h"
#include "geo/gazetteer.h"
#include "geo/location_ontology.h"

namespace pws::eval {

/// Everything that defines one experimental universe. All strategies in
/// an experiment share one World so comparisons are paired.
struct WorldConfig {
  uint64_t seed = 42;
  int num_topics = 16;
  int filler_terms_per_topic = 40;
  corpus::CorpusGeneratorOptions corpus;
  click::UserPopulationOptions users;
  click::QueryPoolOptions queries;
  click::RelevanceModelOptions relevance;
  click::ClickModelOptions clicks;
  backend::SearchBackendOptions backend;
};

/// The built universe: topic catalogue, gazetteer, corpus, indexed
/// backend, user population, query pool, and the ground-truth relevance
/// and click models. Build once (indexing dominates), then run many
/// engine configurations against it.
class World {
 public:
  /// Builds the world deterministically from `config`.
  explicit World(const WorldConfig& config);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldConfig& config() const { return config_; }
  const corpus::TopicModel& topics() const { return *topics_; }
  const geo::LocationOntology& ontology() const { return *ontology_; }
  const corpus::Corpus& corpus() const { return *corpus_; }
  const backend::SearchBackend& search_backend() const { return *backend_; }
  const std::vector<click::SimulatedUser>& users() const { return users_; }
  const std::vector<click::QueryIntent>& queries() const { return queries_; }
  const click::RelevanceModel& relevance() const { return *relevance_; }
  const click::CascadeClickModel& click_model() const { return *click_model_; }

  /// Queries of one class (pointers into queries()).
  std::vector<const click::QueryIntent*> QueriesOfClass(
      click::QueryClass query_class) const;

 private:
  WorldConfig config_;
  std::unique_ptr<corpus::TopicModel> topics_;
  std::unique_ptr<geo::LocationOntology> ontology_;
  std::unique_ptr<corpus::Corpus> corpus_;
  std::unique_ptr<backend::SearchBackend> backend_;
  std::vector<click::SimulatedUser> users_;
  std::vector<click::QueryIntent> queries_;
  std::unique_ptr<click::RelevanceModel> relevance_;
  std::unique_ptr<click::CascadeClickModel> click_model_;
};

}  // namespace pws::eval

#endif  // PWS_EVAL_WORLD_H_
