#ifndef PWS_EVAL_STATS_H_
#define PWS_EVAL_STATS_H_

#include <functional>
#include <vector>

#include "eval/harness.h"

namespace pws::eval {

/// Result of a paired comparison of two configurations over the same
/// deterministic test impressions.
struct PairedComparison {
  int n = 0;              // Paired observations.
  double mean_a = 0.0;    // Mean metric of configuration A.
  double mean_b = 0.0;    // Mean metric of configuration B.
  double mean_delta = 0.0;  // mean(A - B).
  double stddev_delta = 0.0;
  /// Paired t statistic mean_delta / (stddev_delta / sqrt(n)); 0 when
  /// the deltas are constant-zero. |t| > ~2 is significant at p < 0.05
  /// for the sample sizes used here.
  double t_statistic = 0.0;
  int wins = 0;    // A strictly better.
  int losses = 0;  // B strictly better.
  int ties = 0;
};

/// Extracts the metric being compared from one impression outcome.
using MetricExtractor = std::function<double(const ImpressionOutcome&)>;

/// Pairs two outcome lists by (user, query) — both must come from the
/// same World + SimulationOptions so the test sets align — and computes
/// the paired statistics of extractor(A) - extractor(B). Aborts if the
/// lists do not align.
PairedComparison ComparePaired(const std::vector<ImpressionOutcome>& a,
                               const std::vector<ImpressionOutcome>& b,
                               const MetricExtractor& extractor);

/// Convenience extractors.
double ReciprocalRankOf(const ImpressionOutcome& outcome);
double NdcgOf(const ImpressionOutcome& outcome);

}  // namespace pws::eval

#endif  // PWS_EVAL_STATS_H_
