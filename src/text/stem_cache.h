#ifndef PWS_TEXT_STEM_CACHE_H_
#define PWS_TEXT_STEM_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace pws::text {

/// Counters of a StemCache (summed over its shards).
struct StemCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Times a full shard was dropped wholesale to stay bounded.
  uint64_t flushes = 0;
  /// Entries resident at the time of the stats() call.
  uint64_t entries = 0;
};

/// A bounded, thread-safe memo for PorterStem. Natural-language token
/// streams repeat a small working set of words, so the analyze pipeline
/// (indexing, query analysis, concept extraction) re-stems the same
/// tokens constantly; the memo turns each repeat into one hash probe
/// with no allocation (lookups are by string_view, heterogeneous).
///
/// Bounding: the table is sharded (one mutex per shard); a shard that
/// grows past its share of `capacity` is dropped wholesale. Stemming is
/// a pure function, so a flush can never change results — only cost.
class StemCache {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 15;

  explicit StemCache(size_t capacity = kDefaultCapacity, int num_shards = 16);
  ~StemCache();

  StemCache(const StemCache&) = delete;
  StemCache& operator=(const StemCache&) = delete;

  /// Returns the Porter stem of `word` (which must already be lowercase
  /// ASCII, as the tokenizer produces). Identical to PorterStem(word).
  std::string Stem(std::string_view word);

  /// Appends the stem of `word` to `*out` without clearing it.
  void AppendStem(std::string_view word, std::string* out);

  StemCacheStats stats() const;

  /// The process-wide instance shared by the tokenizer and every
  /// concept extractor.
  static StemCache& Global();

 private:
  struct Shard;

  Shard& ShardFor(std::string_view word);

  int num_shards_;
  size_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace pws::text

#endif  // PWS_TEXT_STEM_CACHE_H_
