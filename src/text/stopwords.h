#ifndef PWS_TEXT_STOPWORDS_H_
#define PWS_TEXT_STOPWORDS_H_

#include <string_view>

namespace pws::text {

/// Returns true when `word` (already lowercased) is an English stopword.
/// Backed by a compiled-in list of ~120 high-frequency function words.
bool IsStopword(std::string_view word);

/// Number of words in the compiled-in stopword list (for tests).
int StopwordCount();

}  // namespace pws::text

#endif  // PWS_TEXT_STOPWORDS_H_
