#ifndef PWS_TEXT_TOKENIZER_H_
#define PWS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace pws::text {

/// Tokenization knobs shared by indexing, concept extraction, and the
/// location extractor (which needs stopwords *kept* so multi-word place
/// names like "isle of skye" survive).
struct TokenizerOptions {
  /// Drop tokens shorter than this many characters.
  int min_token_length = 1;
  /// Drop English stopwords.
  bool remove_stopwords = false;
  /// Apply the Porter stemmer to each token.
  bool stem = false;
  /// Memoize stems in the process-wide bounded StemCache. Stemming is a
  /// pure function, so this never changes output — only cost. Off is
  /// only useful for benchmarking the uncached stemmer.
  bool stem_memo = true;
};

/// Appends the tokens of `input` to `*out` without clearing it, so
/// callers can fuse several fields (title + snippet, title + body) into
/// one token stream with no concatenation temporaries. Lowercases,
/// splits on non-alphanumeric runs, and post-processes tokens per
/// `options`. Digits are kept (model numbers, zip codes).
void TokenizeAppend(std::string_view input, const TokenizerOptions& options,
                    std::vector<std::string>* out);

/// Lowercases, splits on non-alphanumeric runs, and post-processes tokens
/// per `options`. Digits are kept (model numbers, zip codes).
std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options);

/// Tokenize with default options (keep everything, no stemming).
std::vector<std::string> Tokenize(std::string_view input);

}  // namespace pws::text

#endif  // PWS_TEXT_TOKENIZER_H_
