#ifndef PWS_TEXT_TOKENIZER_H_
#define PWS_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace pws::text {

/// Tokenization knobs shared by indexing, concept extraction, and the
/// location extractor (which needs stopwords *kept* so multi-word place
/// names like "isle of skye" survive).
struct TokenizerOptions {
  /// Drop tokens shorter than this many characters.
  int min_token_length = 1;
  /// Drop English stopwords.
  bool remove_stopwords = false;
  /// Apply the Porter stemmer to each token.
  bool stem = false;
};

/// Lowercases, splits on non-alphanumeric runs, and post-processes tokens
/// per `options`. Digits are kept (model numbers, zip codes).
std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options);

/// Tokenize with default options (keep everything, no stemming).
std::vector<std::string> Tokenize(std::string_view input);

}  // namespace pws::text

#endif  // PWS_TEXT_TOKENIZER_H_
