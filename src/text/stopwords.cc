#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace pws::text {
namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const auto& set = *new std::unordered_set<std::string>{
      "a",     "about", "above", "after",  "again",  "all",    "also",
      "am",    "an",    "and",   "any",    "are",    "as",     "at",
      "be",    "because", "been", "before", "being",  "below",  "between",
      "both",  "but",   "by",    "can",    "could",  "did",    "do",
      "does",  "doing", "down",  "during", "each",   "few",    "for",
      "from",  "further", "had", "has",    "have",   "having", "he",
      "her",   "here",  "hers",  "him",    "his",    "how",    "i",
      "if",    "in",    "into",  "is",     "it",     "its",    "just",
      "me",    "more",  "most",  "my",     "no",     "nor",    "not",
      "now",   "of",    "off",   "on",     "once",   "only",   "or",
      "other", "our",   "ours",  "out",    "over",   "own",    "same",
      "she",   "should", "so",   "some",   "such",   "than",   "that",
      "the",   "their", "theirs", "them",  "then",   "there",  "these",
      "they",  "this",  "those", "through", "to",    "too",    "under",
      "until", "up",    "very",  "was",    "we",     "were",   "what",
      "when",  "where", "which", "while",  "who",    "whom",   "why",
      "will",  "with",  "would", "you",    "your",   "yours",
  };
  return set;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

int StopwordCount() { return static_cast<int>(StopwordSet().size()); }

}  // namespace pws::text
