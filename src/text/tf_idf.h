#ifndef PWS_TEXT_TF_IDF_H_
#define PWS_TEXT_TF_IDF_H_

#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace pws::text {

/// Sparse term-weight vector (term id -> weight).
using SparseVector = std::unordered_map<TermId, double>;

/// Computes smoothed idf values over a collection of token-id documents:
/// idf(t) = log((N + 1) / (df(t) + 1)) + 1. The vocabulary provides the
/// dense id space; ids >= vocabulary size are ignored.
class TfIdfModel {
 public:
  /// Builds document frequencies from `documents` (each a bag of term ids;
  /// kUnknownTerm entries are skipped). `vocab_size` fixes the id space.
  TfIdfModel(const std::vector<std::vector<TermId>>& documents,
             int vocab_size);

  /// Returns the idf of `term` (terms never seen get the maximum idf).
  double Idf(TermId term) const;

  /// Returns the tf-idf vector of a document given as term ids, with tf
  /// log-scaled: tf = 1 + log(count).
  SparseVector Vectorize(const std::vector<TermId>& doc_terms) const;

  /// Cosine similarity between two sparse vectors.
  static double Cosine(const SparseVector& a, const SparseVector& b);

  int num_documents() const { return num_documents_; }

 private:
  int num_documents_ = 0;
  std::vector<int> document_frequency_;
};

}  // namespace pws::text

#endif  // PWS_TEXT_TF_IDF_H_
