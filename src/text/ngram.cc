#include "text/ngram.h"

#include "util/check.h"

namespace pws::text {

std::vector<std::string> ExtractNgrams(const std::vector<std::string>& tokens,
                                       int n) {
  PWS_CHECK_GE(n, 1);
  std::vector<std::string> grams;
  if (static_cast<int>(tokens.size()) < n) return grams;
  grams.reserve(tokens.size() - n + 1);
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (int k = 1; k < n; ++k) {
      gram += ' ';
      gram += tokens[i + k];
    }
    grams.push_back(std::move(gram));
  }
  return grams;
}

std::vector<std::string> ExtractUnigramsAndBigrams(
    const std::vector<std::string>& tokens) {
  std::vector<std::string> out = tokens;
  std::vector<std::string> bigrams = ExtractNgrams(tokens, 2);
  out.insert(out.end(), std::make_move_iterator(bigrams.begin()),
             std::make_move_iterator(bigrams.end()));
  return out;
}

}  // namespace pws::text
