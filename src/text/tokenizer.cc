#include "text/tokenizer.h"

#include <cctype>

#include "text/porter_stemmer.h"
#include "text/stem_cache.h"
#include "text/stopwords.h"

namespace pws::text {

void TokenizeAppend(std::string_view input, const TokenizerOptions& options,
                    std::vector<std::string>* out) {
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return;
    if (static_cast<int>(current.size()) >= options.min_token_length &&
        !(options.remove_stopwords && IsStopword(current))) {
      if (!options.stem) {
        out->push_back(std::move(current));
        current = {};  // Leave `current` valid and empty after the move.
        return;
      }
      out->push_back(options.stem_memo ? StemCache::Global().Stem(current)
                                       : PorterStem(current));
    }
    current.clear();
  };
  for (char raw : input) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
}

std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  TokenizeAppend(input, options, &tokens);
  return tokens;
}

std::vector<std::string> Tokenize(std::string_view input) {
  return Tokenize(input, TokenizerOptions{});
}

}  // namespace pws::text
