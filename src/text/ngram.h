#ifndef PWS_TEXT_NGRAM_H_
#define PWS_TEXT_NGRAM_H_

#include <string>
#include <vector>

namespace pws::text {

/// Returns all contiguous n-grams of `tokens`, each joined with a single
/// space (e.g. n=2 on ["new","york","hotel"] -> ["new york","york hotel"]).
/// n must be >= 1; returns empty when tokens.size() < n.
std::vector<std::string> ExtractNgrams(const std::vector<std::string>& tokens,
                                       int n);

/// Returns unigrams plus bigrams — the candidate set used by the content
/// concept extractor.
std::vector<std::string> ExtractUnigramsAndBigrams(
    const std::vector<std::string>& tokens);

}  // namespace pws::text

#endif  // PWS_TEXT_NGRAM_H_
