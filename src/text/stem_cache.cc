#include "text/stem_cache.h"

#include <functional>
#include <mutex>
#include <unordered_map>

#include "text/porter_stemmer.h"
#include "util/check.h"

namespace pws::text {
namespace {

/// Transparent hash so lookups take string_view without building a
/// temporary std::string key.
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view sv) const {
    return std::hash<std::string_view>{}(sv);
  }
};

}  // namespace

struct StemCache::Shard {
  mutable std::mutex mutex;
  std::unordered_map<std::string, std::string, StringHash, std::equal_to<>>
      stems;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t flushes = 0;
};

StemCache::StemCache(size_t capacity, int num_shards)
    : num_shards_(num_shards) {
  PWS_CHECK_GE(capacity, 1u);
  PWS_CHECK_GE(num_shards_, 1);
  shard_capacity_ = (capacity + static_cast<size_t>(num_shards_) - 1) /
                    static_cast<size_t>(num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

StemCache::~StemCache() = default;

StemCache::Shard& StemCache::ShardFor(std::string_view word) {
  return shards_[std::hash<std::string_view>{}(word) %
                 static_cast<size_t>(num_shards_)];
}

void StemCache::AppendStem(std::string_view word, std::string* out) {
  // PorterStem returns words of length <= 2 unchanged; don't spend cache
  // slots on them.
  if (word.size() <= 2) {
    out->append(word);
    return;
  }
  Shard& shard = ShardFor(word);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.stems.find(word);
    if (it != shard.stems.end()) {
      ++shard.hits;
      out->append(it->second);
      return;
    }
    ++shard.misses;
  }
  // Stem outside the lock: two threads racing on the same absent word
  // both compute the (identical) stem; one insert wins.
  const std::string stem = PorterStem(word);
  out->append(stem);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.stems.size() >= shard_capacity_) {
    shard.stems.clear();
    ++shard.flushes;
  }
  shard.stems.emplace(word, stem);
}

std::string StemCache::Stem(std::string_view word) {
  std::string out;
  AppendStem(word, &out);
  return out;
}

StemCacheStats StemCache::stats() const {
  StemCacheStats total;
  for (int s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.flushes += shard.flushes;
    total.entries += shard.stems.size();
  }
  return total;
}

StemCache& StemCache::Global() {
  static StemCache* cache = new StemCache();
  return *cache;
}

}  // namespace pws::text
