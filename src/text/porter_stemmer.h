#ifndef PWS_TEXT_PORTER_STEMMER_H_
#define PWS_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace pws::text {

/// Returns the Porter stem of `word`. The input must already be lowercase
/// ASCII (the tokenizer guarantees this); words of length <= 2 are
/// returned unchanged, matching the original algorithm.
///
/// Implements M.F. Porter, "An algorithm for suffix stripping",
/// Program 14(3), 1980 — steps 1a through 5b.
std::string PorterStem(std::string_view word);

}  // namespace pws::text

#endif  // PWS_TEXT_PORTER_STEMMER_H_
