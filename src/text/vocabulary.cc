#include "text/vocabulary.h"

#include "util/check.h"

namespace pws::text {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Get(std::string_view term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kUnknownTerm : it->second;
}

const std::string& Vocabulary::TermOf(TermId id) const {
  PWS_CHECK_GE(id, 0);
  PWS_CHECK_LT(id, static_cast<TermId>(terms_.size()));
  return terms_[id];
}

std::vector<TermId> Vocabulary::EncodeOrAdd(
    const std::vector<std::string>& tokens) {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(GetOrAdd(t));
  return ids;
}

std::vector<TermId> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<TermId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(Get(t));
  return ids;
}

}  // namespace pws::text
