#include "text/tf_idf.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace pws::text {

TfIdfModel::TfIdfModel(const std::vector<std::vector<TermId>>& documents,
                       int vocab_size)
    : num_documents_(static_cast<int>(documents.size())),
      document_frequency_(vocab_size, 0) {
  for (const auto& doc : documents) {
    std::unordered_set<TermId> seen;
    for (TermId t : doc) {
      if (t < 0 || t >= vocab_size) continue;
      if (seen.insert(t).second) ++document_frequency_[t];
    }
  }
}

double TfIdfModel::Idf(TermId term) const {
  int df = 0;
  if (term >= 0 && term < static_cast<TermId>(document_frequency_.size())) {
    df = document_frequency_[term];
  }
  return std::log((num_documents_ + 1.0) / (df + 1.0)) + 1.0;
}

SparseVector TfIdfModel::Vectorize(const std::vector<TermId>& doc_terms) const {
  std::unordered_map<TermId, int> counts;
  for (TermId t : doc_terms) {
    if (t >= 0) ++counts[t];
  }
  SparseVector vec;
  vec.reserve(counts.size());
  for (const auto& [term, count] : counts) {
    vec[term] = (1.0 + std::log(static_cast<double>(count))) * Idf(term);
  }
  return vec;
}

double TfIdfModel::Cosine(const SparseVector& a, const SparseVector& b) {
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [term, weight] : small) {
    auto it = large.find(term);
    if (it != large.end()) dot += weight * it->second;
  }
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [term, weight] : a) norm_a += weight * weight;
  for (const auto& [term, weight] : b) norm_b += weight * weight;
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace pws::text
