#include "text/porter_stemmer.h"

namespace pws::text {
namespace {

// Working buffer for one stemming run. Offsets follow Porter's paper:
// the stem under consideration is word_[0..j_], the full word is
// word_[0..k_].
class Stemmer {
 public:
  explicit Stemmer(std::string_view word) : word_(word) {
    k_ = static_cast<int>(word_.size()) - 1;
    j_ = 0;
  }

  std::string Run() {
    if (k_ <= 1) return word_;  // Words of length <= 2 are left alone.
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return word_.substr(0, k_ + 1);
  }

 private:
  // True if word_[i] is a consonant.
  bool IsConsonant(int i) const {
    switch (word_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of word_[0..j_]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if word_[0..j_] contains a vowel.
  bool VowelInStem() const {
    for (int i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True if word_[i-1..i] is a double consonant.
  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (word_[i] != word_[i - 1]) return false;
    return IsConsonant(i);
  }

  // True if word_[i-2..i] is consonant-vowel-consonant and the final
  // consonant is not w, x, or y. Used to detect e.g. hop -> hopping.
  bool CvcEnding(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    const char c = word_[i];
    return c != 'w' && c != 'x' && c != 'y';
  }

  // True if word_[0..k_] ends with `suffix`; sets j_ to the offset just
  // before the suffix when it matches.
  bool Ends(std::string_view suffix) {
    const int len = static_cast<int>(suffix.size());
    if (len > k_ + 1) return false;
    if (word_.compare(k_ - len + 1, len, suffix) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix (word_[j_+1..k_]) with `s` and updates k_.
  void SetTo(std::string_view s) {
    word_.replace(j_ + 1, k_ - j_, s);
    k_ = j_ + static_cast<int>(s.size());
  }

  // SetTo(s) when the stem measure is positive.
  void ReplaceIfM0(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  void Step1ab() {
    // Step 1a: plurals.
    if (word_[k_] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (word_[k_ - 1] != 's') {
        --k_;
      }
    }
    // Step 1b: -ed / -ing.
    if (Ends("eed")) {
      if (Measure() > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && VowelInStem()) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        const char c = word_[k_];
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (Measure() == 1 && CvcEnding(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    // y -> i when there is another vowel in the stem.
    if (Ends("y") && VowelInStem()) word_[k_] = 'i';
  }

  void Step2() {
    if (k_ < 1) return;
    switch (word_[k_ - 1]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfM0("ate"); break; }
        if (Ends("tional")) { ReplaceIfM0("tion"); break; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfM0("ence"); break; }
        if (Ends("anci")) { ReplaceIfM0("ance"); break; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfM0("ize"); break; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfM0("ble"); break; }
        if (Ends("alli")) { ReplaceIfM0("al"); break; }
        if (Ends("entli")) { ReplaceIfM0("ent"); break; }
        if (Ends("eli")) { ReplaceIfM0("e"); break; }
        if (Ends("ousli")) { ReplaceIfM0("ous"); break; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfM0("ize"); break; }
        if (Ends("ation")) { ReplaceIfM0("ate"); break; }
        if (Ends("ator")) { ReplaceIfM0("ate"); break; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfM0("al"); break; }
        if (Ends("iveness")) { ReplaceIfM0("ive"); break; }
        if (Ends("fulness")) { ReplaceIfM0("ful"); break; }
        if (Ends("ousness")) { ReplaceIfM0("ous"); break; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfM0("al"); break; }
        if (Ends("iviti")) { ReplaceIfM0("ive"); break; }
        if (Ends("biliti")) { ReplaceIfM0("ble"); break; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfM0("log"); break; }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (word_[k_]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfM0("ic"); break; }
        if (Ends("ative")) { ReplaceIfM0(""); break; }
        if (Ends("alize")) { ReplaceIfM0("al"); break; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfM0("ic"); break; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfM0("ic"); break; }
        if (Ends("ful")) { ReplaceIfM0(""); break; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfM0(""); break; }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (word_[k_ - 1]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && j_ >= 0 && (word_[j_] == 's' || word_[j_] == 't')) {
          break;
        }
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure() > 1) k_ = j_;
  }

  void Step5() {
    // Step 5a: drop trailing e.
    j_ = k_;
    if (word_[k_] == 'e') {
      const int m = Measure();
      if (m > 1 || (m == 1 && !CvcEnding(k_ - 1))) --k_;
    }
    // Step 5b: -ll -> -l for m > 1.
    if (word_[k_] == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
  }

  std::string word_;
  int k_;  // Index of the last character of the current word.
  int j_;  // Index of the last character of the current stem.
};

}  // namespace

std::string PorterStem(std::string_view word) {
  return Stemmer(word).Run();
}

}  // namespace pws::text
