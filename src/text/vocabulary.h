#ifndef PWS_TEXT_VOCABULARY_H_
#define PWS_TEXT_VOCABULARY_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pws::text {

/// Dense term id assigned by a Vocabulary; -1 means "unknown".
using TermId = int32_t;
inline constexpr TermId kUnknownTerm = -1;

/// Bidirectional term <-> dense id map. Ids are assigned in insertion
/// order starting at 0, which lets callers use them as vector indices.
/// Lookups are heterogeneous (string_view probes the map directly), so
/// Get/GetOrAdd never build a temporary std::string key.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, inserting it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term` or kUnknownTerm.
  TermId Get(std::string_view term) const;

  /// Returns the term for `id`; id must be in [0, size()).
  const std::string& TermOf(TermId id) const;

  int size() const { return static_cast<int>(terms_.size()); }

  /// Converts tokens to ids, adding new terms.
  std::vector<TermId> EncodeOrAdd(const std::vector<std::string>& tokens);

  /// Converts tokens to ids, mapping unknown terms to kUnknownTerm.
  std::vector<TermId> Encode(const std::vector<std::string>& tokens) const;

 private:
  /// Transparent hash enabling string_view lookups against string keys.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view sv) const {
      return std::hash<std::string_view>{}(sv);
    }
  };

  std::unordered_map<std::string, TermId, StringHash, std::equal_to<>> index_;
  std::vector<std::string> terms_;
};

}  // namespace pws::text

#endif  // PWS_TEXT_VOCABULARY_H_
