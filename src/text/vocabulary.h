#ifndef PWS_TEXT_VOCABULARY_H_
#define PWS_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pws::text {

/// Dense term id assigned by a Vocabulary; -1 means "unknown".
using TermId = int32_t;
inline constexpr TermId kUnknownTerm = -1;

/// Bidirectional term <-> dense id map. Ids are assigned in insertion
/// order starting at 0, which lets callers use them as vector indices.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, inserting it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term` or kUnknownTerm.
  TermId Get(std::string_view term) const;

  /// Returns the term for `id`; id must be in [0, size()).
  const std::string& TermOf(TermId id) const;

  int size() const { return static_cast<int>(terms_.size()); }

  /// Converts tokens to ids, adding new terms.
  std::vector<TermId> EncodeOrAdd(const std::vector<std::string>& tokens);

  /// Converts tokens to ids, mapping unknown terms to kUnknownTerm.
  std::vector<TermId> Encode(const std::vector<std::string>& tokens) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace pws::text

#endif  // PWS_TEXT_VOCABULARY_H_
