#ifndef PWS_CORE_USER_STATE_STORE_H_
#define PWS_CORE_USER_STATE_STORE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "click/click_log.h"
#include "geo/geo_point.h"
#include "geo/location_ontology.h"
#include "profile/session_model.h"
#include "profile/user_profile.h"
#include "ranking/bandit.h"
#include "ranking/feature_slab.h"
#include "ranking/rank_svm.h"
#include "util/ring_buffer.h"
#include "util/status.h"

namespace pws::io {
struct PersistedSessionEvent;
}  // namespace pws::io

namespace pws::core {

/// Conversions between the live session window (interned concept ids)
/// and its persisted form (terms — ids are process-local). Shared by the
/// store's section serializer and the engine's snapshot restore.
std::vector<io::PersistedSessionEvent> PersistSessionEvents(
    const profile::SessionWindow& window);
std::vector<profile::SessionEvent> RestoreSessionEvents(
    const std::vector<io::PersistedSessionEvent>& events);

/// A mined preference stored symbolically: indices into the user's query
/// dictionary and the query's backend page. Features are recomputed
/// against the *current* profile at training time so train and serve see
/// the same feature distribution (pairs recorded while the profile was
/// young would otherwise train the model on all-zero profile features).
/// 16 bytes per pair — the query string lives once in
/// UserState::pair_queries, not in every pair.
struct StoredPair {
  int32_t query_index = -1;
  int32_t preferred_backend_index = -1;
  int32_t other_backend_index = -1;
  double weight = 1.0;
};

/// Everything the engine knows about one user, resident in memory. Owned
/// by UserStateStore behind a shared_ptr; pinned (see UserStateHandle)
/// while any caller works on it so the store never spills a state
/// mid-mutation.
struct UserState {
  std::unique_ptr<profile::UserProfile> profile;
  /// The user's current model, published as an immutable snapshot: Serve
  /// copies the pointer under model_mutex and scores against the
  /// snapshot while TrainUser trains a successor off to the side and
  /// swaps it in. This pointer swap is the entire synchronization
  /// between training and serving — it is what makes TrainAllUsers safe
  /// to run concurrently with Serve.
  std::shared_ptr<const ranking::RankSvm> model;
  mutable std::mutex model_mutex;

  std::shared_ptr<const ranking::RankSvm> ModelSnapshot() const {
    std::lock_guard<std::mutex> lock(model_mutex);
    return model;
  }
  void PublishModel(std::shared_ptr<const ranking::RankSvm> next) {
    std::lock_guard<std::mutex> lock(model_mutex);
    model = std::move(next);
  }

  /// Bounded pair store: pushing past the cap overwrites the oldest pair
  /// in O(1).
  std::unique_ptr<RingBuffer<StoredPair>> pairs;
  /// Distinct queries pairs refer to; StoredPair::query_index points
  /// here. Entries whose pairs have all aged out stay (bounded by the
  /// user's distinct-query count) — they cost one string, not one
  /// feature refresh.
  std::vector<std::string> pair_queries;
  std::unordered_map<std::string, int32_t> pair_query_index;
  /// Training-time feature row arena, reused across training rounds.
  ranking::FeatureSlab slab;
  std::optional<geo::GeoPoint> position;

  /// Online-adaptation state (DESIGN.md §17): the in-session click
  /// window and the bandit's per-arm statistics. Serve (reader) may run
  /// concurrently with an Observe of the same user, so both sides take
  /// session_mutex — the same shape as model/model_mutex. Serialized
  /// into the user's snapshot section, so the state tiers, snapshots,
  /// and WAL-replays like everything else.
  mutable std::mutex session_mutex;
  profile::SessionWindow session;
  std::vector<ranking::BanditArm> bandit_arms;

  /// Outstanding UserStateHandles. Eviction only considers states with
  /// zero pins, taken under the shard mutex (which also gates new pins):
  /// a release-decrement by the last handle paired with the evictor's
  /// acquire-load publishes every mutation the handle made before the
  /// spill serializes the state.
  std::atomic<int> pins{0};
  /// True when the in-memory state has diverged from its cold-store
  /// record (or has none). A clean evictee whose record is still on disk
  /// drops from memory for free; a dirty one is re-spilled first.
  /// Mutators store with release; the evictor's acquire-load of pins
  /// orders the read.
  std::atomic<bool> dirty{true};
};

/// RAII pin on a UserState checked out of a UserStateStore. While any
/// handle is live the state stays resident (eviction skips it); the
/// shared_ptr additionally keeps the object alive even across an
/// (impossible by contract, but harmless) eviction race. Move-only.
class UserStateHandle {
 public:
  UserStateHandle() = default;
  /// Takes ownership of one already-counted pin.
  explicit UserStateHandle(std::shared_ptr<UserState> state)
      : state_(std::move(state)) {}
  ~UserStateHandle() { Release(); }

  UserStateHandle(UserStateHandle&& other) noexcept
      : state_(std::move(other.state_)) {
    other.state_.reset();
  }
  UserStateHandle& operator=(UserStateHandle&& other) noexcept {
    if (this != &other) {
      Release();
      state_ = std::move(other.state_);
      other.state_.reset();
    }
    return *this;
  }
  UserStateHandle(const UserStateHandle&) = delete;
  UserStateHandle& operator=(const UserStateHandle&) = delete;

  UserState* get() const { return state_.get(); }
  UserState* operator->() const { return state_.get(); }
  UserState& operator*() const { return *state_; }
  explicit operator bool() const { return state_ != nullptr; }

 private:
  void Release() {
    if (state_ != nullptr) {
      state_->pins.fetch_sub(1, std::memory_order_acq_rel);
      state_.reset();
    }
  }
  std::shared_ptr<UserState> state_;
};

/// N-way sharded user-state table with optional hot/cold tiering — the
/// structure that makes engine memory O(resident users) instead of
/// O(total users). Each shard has its own mutex, an open-addressed
/// id→state table of *resident* users, an LRU list over them, and (when
/// tiering is enabled) an append-only cold segment file plus an
/// open-addressed id→record index over it.
///
/// Eviction: inserts and fault-ins that push the global resident count
/// over the budget evict the least-recently-Acquired unpinned users of
/// the *same* shard — dirty ones serialize to a cold record first (the
/// snapshot per-user section format, so fault-in is bit-identical),
/// clean ones just drop (their record is still valid). Fault-in: an
/// Acquire that misses the resident table but hits the cold index reads
/// the record back under the shard mutex (concurrent Acquires of the
/// same user therefore fault exactly once) and re-inserts it resident.
///
/// The cold store is process-transient spill space, not the durability
/// story: EnableTiering truncates any stale segments, records are not
/// fsynced, and crash recovery still runs snapshot + WAL replay. A
/// failed spill keeps the user resident (counted in Stats::spill_errors)
/// — tiering degrades to all-resident rather than losing state.
///
/// Thread-safety: all methods are safe from any thread. Mutating the
/// *contents* of a checked-out UserState follows the engine's contract
/// (callers serialize mutators per user); the store itself only needs
/// the pin to know not to spill mid-mutation.
class UserStateStore {
 public:
  struct Options {
    /// Shard count (rounded up to a power of two, min 1).
    int shards = 16;
    /// Capacity of each user's bounded pair ring (engine option
    /// max_training_pairs_per_user); fault-in rebuilds rings at this
    /// capacity.
    int pair_ring_capacity = 20000;
    /// A segment compacts when its dead bytes exceed its live bytes and
    /// this floor (rewriting tiny files buys nothing).
    uint64_t compact_min_dead_bytes = 1 << 20;
  };

  struct Stats {
    int64_t total_users = 0;
    int64_t resident_users = 0;
    int64_t resident_budget = 0;  // 0 = tiering off
    uint64_t evictions = 0;
    uint64_t spills = 0;  // dirty evictions that wrote a record
    uint64_t faults = 0;
    uint64_t spill_errors = 0;
    uint64_t fault_errors = 0;
    uint64_t compactions = 0;
    uint64_t cold_live_bytes = 0;
    uint64_t cold_dead_bytes = 0;
    int64_t cold_users = 0;
    int shards = 0;
  };

  /// `ontology` must outlive the store (fault-in parses profiles
  /// against it).
  UserStateStore(const geo::LocationOntology* ontology, Options options);
  ~UserStateStore();

  UserStateStore(const UserStateStore&) = delete;
  UserStateStore& operator=(const UserStateStore&) = delete;

  /// Turns on hot/cold tiering: per-shard segment files live under
  /// `cold_dir` (created if absent; stale segments truncated) and at
  /// most ~`resident_budget` users stay in memory. Call once, before
  /// concurrent use. `resident_budget` <= 0 keeps everything resident.
  Status EnableTiering(const std::string& cold_dir, int64_t resident_budget);
  bool tiering_enabled() const { return resident_budget_ > 0; }

  /// Fallback for a cold record that cannot be read back (bit rot,
  /// truncated segment): the factory builds a fresh empty state so the
  /// user keeps serving (with reset personalization) instead of
  /// disappearing. Unset, a failed fault-in returns a null handle.
  void SetFreshStateFactory(
      std::function<std::shared_ptr<UserState>(click::UserId)> factory) {
    fresh_state_factory_ = std::move(factory);
  }

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int shard_of(click::UserId user) const {
    return static_cast<int>(HashOf(user) & shard_mask_);
  }

  /// Pins and returns the user's state, faulting it in from the cold
  /// tier if needed (the fault is timed as the `serve.fault_in` span).
  /// Null when the user is unknown. Refreshes the user's LRU position.
  UserStateHandle Acquire(click::UserId user);

  /// Inserts a new user (resident, dirty). False if the user already
  /// exists — resident or cold. May evict colder users of the shard.
  bool InsertIfAbsent(click::UserId user, std::shared_ptr<UserState> state);

  /// True when the user exists, resident or cold. Does not fault in or
  /// touch LRU order.
  bool Contains(click::UserId user) const;

  int64_t total_users() const {
    return total_users_.load(std::memory_order_relaxed);
  }
  int64_t resident_users() const {
    return resident_users_.load(std::memory_order_relaxed);
  }

  /// Every user id, resident or cold, ascending.
  std::vector<click::UserId> SortedUserIds() const;

  /// The user's snapshot section (io::PersistedUserToText format): a
  /// resident user serializes from live state (model via ModelSnapshot,
  /// so concurrent training is safe); a cold user's record bytes are
  /// returned as-is — SaveState splices cold users into the snapshot
  /// without deserializing them. kNotFound for unknown users.
  StatusOr<std::string> UserSectionText(click::UserId user);

  Stats stats() const;

 private:
  struct ColdLoc {
    uint64_t offset = 0;  // of the record header in the segment file
    uint32_t len = 0;     // payload bytes (header excluded)
  };

  /// Open-addressed, linear-probing id→V table (power-of-two capacity,
  /// tombstone deletion, rehash clears tombstones). unordered_map costs
  /// ~56 bytes of node + pointer per user; at a million cold users the
  /// index must stay near sizeof(V) per user.
  template <typename V>
  class IdTable {
   public:
    V* Find(click::UserId key);
    const V* Find(click::UserId key) const;
    /// Returns the (existing or new) slot value; sets `*inserted`.
    V* Insert(click::UserId key, bool* inserted);
    bool Erase(click::UserId key);
    size_t size() const { return size_; }
    template <typename Fn>
    void ForEach(Fn&& fn) const {
      for (const Slot& slot : slots_) {
        if (slot.key >= 0) fn(slot.key, slot.value);
      }
    }

   private:
    static constexpr click::UserId kEmpty = -1;
    static constexpr click::UserId kTombstone = -2;
    struct Slot {
      click::UserId key = kEmpty;
      V value{};
    };
    void Grow();
    std::vector<Slot> slots_;
    size_t size_ = 0;
    size_t used_ = 0;  // live + tombstones
  };

  struct ResidentEntry {
    std::shared_ptr<UserState> state;
    /// Position in the shard's LRU list (front = most recent).
    std::list<click::UserId>::iterator lru_it{};
  };

  struct Shard {
    mutable std::mutex mutex;
    IdTable<ResidentEntry> resident;
    std::list<click::UserId> lru;  // front = most recently Acquired
    // ---- cold tier (null/zero until EnableTiering) ----
    std::FILE* segment = nullptr;
    std::string segment_path;
    IdTable<ColdLoc> cold;
    uint64_t segment_end = 0;
    uint64_t live_bytes = 0;
    uint64_t dead_bytes = 0;
  };

  static uint64_t HashOf(click::UserId user) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(user)) *
            0x9E3779B97F4A7C15ull) >>
           32;
  }

  Shard& ShardFor(click::UserId user) { return *shards_[shard_of(user)]; }
  const Shard& ShardFor(click::UserId user) const {
    return *shards_[shard_of(user)];
  }

  /// Serializes `state` as its snapshot section.
  std::string SerializeSection(click::UserId user, const UserState& state);
  /// Rebuilds a UserState from a snapshot section (fresh pins, clean).
  StatusOr<std::shared_ptr<UserState>> DeserializeSection(
      const std::string& text);

  /// Appends a cold record for `user` and updates the index; shard mutex
  /// held. Marks any previous record's bytes dead.
  Status SpillLocked(Shard& shard, click::UserId user,
                     const std::string& section);
  /// Reads the payload of the user's cold record; shard mutex held.
  StatusOr<std::string> ReadColdLocked(Shard& shard, const ColdLoc& loc);
  /// Evicts unpinned LRU-tail users of `shard` while the global resident
  /// count exceeds the budget; shard mutex held.
  void MaybeEvictLocked(Shard& shard);
  /// Rewrites the segment keeping only indexed records; shard mutex held.
  void MaybeCompactLocked(Shard& shard);
  /// Inserts a faulted-in or fresh state as resident MRU; shard mutex
  /// held. Returns the pinned handle.
  UserStateHandle InsertResidentLocked(Shard& shard, click::UserId user,
                                       std::shared_ptr<UserState> state,
                                       bool dirty);
  void PublishGauges() const;

  const geo::LocationOntology* ontology_;
  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
  std::string cold_dir_;
  /// 0 = tiering off. Set once in EnableTiering (before concurrent use).
  int64_t resident_budget_ = 0;
  std::function<std::shared_ptr<UserState>(click::UserId)>
      fresh_state_factory_;

  std::atomic<int64_t> total_users_{0};
  std::atomic<int64_t> resident_users_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> spill_errors_{0};
  std::atomic<uint64_t> fault_errors_{0};
  std::atomic<uint64_t> compactions_{0};
};

}  // namespace pws::core

#endif  // PWS_CORE_USER_STATE_STORE_H_
