#include "core/user_state_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "io/engine_state_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/file_util.h"

namespace pws::core {
namespace {

// Cold record framing, mirroring the WAL's: [u32 payload_len][u32 crc]
// [u64 user][payload]. The CRC covers the payload_len and user header
// fields and the payload, so a flipped length byte fails the check like
// any other corruption.
constexpr size_t kColdHeaderBytes = 16;
constexpr uint32_t kMaxColdPayloadBytes = 1u << 30;

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return value;
}

uint64_t GetU64(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return value;
}

uint32_t ColdCrc(uint32_t payload_len, uint64_t user,
                 std::string_view payload) {
  std::string header_bytes;
  header_bytes.reserve(12);
  PutU32(&header_bytes, payload_len);
  PutU64(&header_bytes, user);
  return Crc32Finalize(
      Crc32Update(Crc32Update(Crc32Init(), header_bytes), payload));
}

// Hot-path metric handles, resolved once (registry lookup takes a lock).
struct StoreMetrics {
  obs::Gauge* resident_users;
  obs::Gauge* total_users;
  obs::Gauge* cold_bytes;
  obs::Counter* evictions;
  obs::Counter* spills;
  obs::Counter* faults;
  obs::Counter* spill_errors;
  obs::Counter* fault_errors;
  obs::Counter* compactions;
};

StoreMetrics& Metrics() {
  static StoreMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    StoreMetrics out;
    out.resident_users = reg.GetGauge("store.resident_users");
    out.total_users = reg.GetGauge("store.total_users");
    out.cold_bytes = reg.GetGauge("store.cold_bytes");
    out.evictions = reg.GetCounter("store.evictions");
    out.spills = reg.GetCounter("store.spills");
    out.faults = reg.GetCounter("store.faults");
    out.spill_errors = reg.GetCounter("store.spill_errors");
    out.fault_errors = reg.GetCounter("store.fault_errors");
    out.compactions = reg.GetCounter("store.compactions");
    return out;
  }();
  return m;
}

int RoundUpPow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------- IdTable ----------

template <typename V>
V* UserStateStore::IdTable<V>::Find(click::UserId key) {
  return const_cast<V*>(
      static_cast<const IdTable<V>*>(this)->Find(key));
}

template <typename V>
const V* UserStateStore::IdTable<V>::Find(click::UserId key) const {
  if (slots_.empty()) return nullptr;
  const size_t mask = slots_.size() - 1;
  size_t idx = HashOf(key) & mask;
  while (slots_[idx].key != kEmpty) {
    if (slots_[idx].key == key) return &slots_[idx].value;
    idx = (idx + 1) & mask;
  }
  return nullptr;
}

template <typename V>
V* UserStateStore::IdTable<V>::Insert(click::UserId key, bool* inserted) {
  // Grow at ~70% occupancy counting tombstones, so probe chains stay
  // short and deleted slots get recycled by the rehash.
  if (slots_.empty() || (used_ + 1) * 10 >= slots_.size() * 7) Grow();
  const size_t mask = slots_.size() - 1;
  size_t idx = HashOf(key) & mask;
  size_t first_tombstone = slots_.size();
  while (slots_[idx].key != kEmpty) {
    if (slots_[idx].key == key) {
      *inserted = false;
      return &slots_[idx].value;
    }
    if (slots_[idx].key == kTombstone && first_tombstone == slots_.size()) {
      first_tombstone = idx;
    }
    idx = (idx + 1) & mask;
  }
  if (first_tombstone != slots_.size()) {
    idx = first_tombstone;  // Reuse the grave; used_ already counts it.
  } else {
    ++used_;
  }
  slots_[idx].key = key;
  slots_[idx].value = V{};
  ++size_;
  *inserted = true;
  return &slots_[idx].value;
}

template <typename V>
bool UserStateStore::IdTable<V>::Erase(click::UserId key) {
  if (slots_.empty()) return false;
  const size_t mask = slots_.size() - 1;
  size_t idx = HashOf(key) & mask;
  while (slots_[idx].key != kEmpty) {
    if (slots_[idx].key == key) {
      slots_[idx].key = kTombstone;
      slots_[idx].value = V{};  // Drop the payload (shared_ptr etc.) now.
      --size_;
      return true;
    }
    idx = (idx + 1) & mask;
  }
  return false;
}

template <typename V>
void UserStateStore::IdTable<V>::Grow() {
  const size_t new_cap =
      std::max<size_t>(16, slots_.empty() ? 16 : slots_.size() * 2);
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  size_ = 0;
  used_ = 0;
  const size_t mask = new_cap - 1;
  for (Slot& slot : old) {
    if (slot.key < 0) continue;
    size_t idx = HashOf(slot.key) & mask;
    while (slots_[idx].key != kEmpty) idx = (idx + 1) & mask;
    slots_[idx].key = slot.key;
    slots_[idx].value = std::move(slot.value);
    ++size_;
    ++used_;
  }
}

// ---------- UserStateStore ----------

UserStateStore::UserStateStore(const geo::LocationOntology* ontology,
                               Options options)
    : ontology_(ontology), options_(options) {
  const int shards = RoundUpPow2(std::max(1, options_.shards));
  shard_mask_ = static_cast<uint64_t>(shards - 1);
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

UserStateStore::~UserStateStore() {
  for (auto& shard : shards_) {
    if (shard->segment != nullptr) std::fclose(shard->segment);
  }
}

Status UserStateStore::EnableTiering(const std::string& cold_dir,
                                     int64_t resident_budget) {
  if (resident_budget <= 0) return OkStatus();
  if (::mkdir(cold_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return InternalError("cannot create cold store dir " + cold_dir + ": " +
                         std::strerror(errno));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string path =
        cold_dir + "/shard-" + std::to_string(i) + ".cold";
    // "w+b" truncates: the cold tier is spill space for THIS process —
    // stale segments from a previous run are invisible to recovery
    // (which replays snapshot + WAL) and must not be read back.
    std::FILE* file = std::fopen(path.c_str(), "w+b");
    if (file == nullptr) {
      return InternalError("cannot open cold segment " + path + ": " +
                           std::strerror(errno));
    }
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.segment != nullptr) std::fclose(shard.segment);
    shard.segment = file;
    shard.segment_path = path;
    shard.segment_end = 0;
    shard.live_bytes = 0;
    shard.dead_bytes = 0;
  }
  cold_dir_ = cold_dir;
  resident_budget_ = resident_budget;
  PublishGauges();
  return OkStatus();
}

UserStateHandle UserStateStore::Acquire(click::UserId user) {
  Shard& shard = ShardFor(user);
  std::unique_lock<std::mutex> lock(shard.mutex);
  if (ResidentEntry* entry = shard.resident.Find(user)) {
    shard.lru.splice(shard.lru.begin(), shard.lru, entry->lru_it);
    entry->state->pins.fetch_add(1, std::memory_order_acq_rel);
    return UserStateHandle(entry->state);
  }
  const ColdLoc* loc = shard.cold.Find(user);
  if (loc == nullptr) return UserStateHandle();

  // Fault-in: read the record back under the shard mutex (a concurrent
  // Acquire of the same user waits here and then hits the resident
  // table), timed as its own serve stage.
  PWS_SPAN("serve.fault_in");
  const ColdLoc at = *loc;
  std::shared_ptr<UserState> state;
  auto payload = ReadColdLocked(shard, at);
  if (payload.ok()) {
    auto parsed = DeserializeSection(*payload);
    if (parsed.ok()) state = std::move(parsed).value();
  }
  if (state == nullptr) {
    // The record is unreadable (bit rot / torn segment). Drop it; the
    // fresh-state factory, when set, keeps the user serving with reset
    // personalization instead of vanishing.
    fault_errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().fault_errors->Increment();
    shard.cold.Erase(user);
    shard.dead_bytes += kColdHeaderBytes + at.len;
    shard.live_bytes -= std::min<uint64_t>(shard.live_bytes,
                                           kColdHeaderBytes + at.len);
    if (fresh_state_factory_ == nullptr) {
      total_users_.fetch_sub(1, std::memory_order_relaxed);
      PublishGauges();
      return UserStateHandle();
    }
    state = fresh_state_factory_(user);
    return InsertResidentLocked(shard, user, std::move(state),
                                /*dirty=*/true);
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  Metrics().faults->Increment();
  // The cold record stays indexed: if this user is evicted again without
  // being mutated, the eviction is free (no rewrite).
  return InsertResidentLocked(shard, user, std::move(state),
                              /*dirty=*/false);
}

bool UserStateStore::InsertIfAbsent(click::UserId user,
                                    std::shared_ptr<UserState> state) {
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.resident.Find(user) != nullptr ||
      shard.cold.Find(user) != nullptr) {
    return false;
  }
  total_users_.fetch_add(1, std::memory_order_relaxed);
  state->dirty.store(true, std::memory_order_release);
  UserStateHandle pin =
      InsertResidentLocked(shard, user, std::move(state), /*dirty=*/true);
  (void)pin;  // Dropped immediately: registration does not hold the user.
  return true;
}

bool UserStateStore::Contains(click::UserId user) const {
  const Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.resident.Find(user) != nullptr ||
         shard.cold.Find(user) != nullptr;
}

std::vector<click::UserId> UserStateStore::SortedUserIds() const {
  std::vector<click::UserId> ids;
  ids.reserve(static_cast<size_t>(
      std::max<int64_t>(0, total_users_.load(std::memory_order_relaxed))));
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.resident.ForEach(
        [&](click::UserId id, const ResidentEntry&) { ids.push_back(id); });
    shard.cold.ForEach(
        [&](click::UserId id, const ColdLoc&) { ids.push_back(id); });
  }
  std::sort(ids.begin(), ids.end());
  // A faulted-in user is both resident and cold-indexed.
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

StatusOr<std::string> UserStateStore::UserSectionText(click::UserId user) {
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (ResidentEntry* entry = shard.resident.Find(user)) {
    return SerializeSection(user, *entry->state);
  }
  if (const ColdLoc* loc = shard.cold.Find(user)) {
    // Cold users splice into the snapshot as raw record payloads — the
    // payload IS the snapshot section, no deserialize/re-serialize.
    return ReadColdLocked(shard, *loc);
  }
  return NotFoundError("user " + std::to_string(user) + " not in store");
}

UserStateStore::Stats UserStateStore::stats() const {
  Stats out;
  out.total_users = total_users_.load(std::memory_order_relaxed);
  out.resident_users = resident_users_.load(std::memory_order_relaxed);
  out.resident_budget = resident_budget_;
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.spills = spills_.load(std::memory_order_relaxed);
  out.faults = faults_.load(std::memory_order_relaxed);
  out.spill_errors = spill_errors_.load(std::memory_order_relaxed);
  out.fault_errors = fault_errors_.load(std::memory_order_relaxed);
  out.compactions = compactions_.load(std::memory_order_relaxed);
  out.shards = shard_count();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.cold_live_bytes += shard.live_bytes;
    out.cold_dead_bytes += shard.dead_bytes;
    out.cold_users += static_cast<int64_t>(shard.cold.size());
  }
  return out;
}

std::vector<io::PersistedSessionEvent> PersistSessionEvents(
    const profile::SessionWindow& window) {
  const concepts::ConceptInterner& interner =
      concepts::ConceptInterner::Global();
  std::vector<io::PersistedSessionEvent> out;
  out.reserve(window.events().size());
  for (const profile::SessionEvent& event : window.events()) {
    io::PersistedSessionEvent persisted;
    persisted.query_id = event.query_id;
    persisted.day = event.day;
    persisted.content_terms.reserve(event.content.size());
    for (const concepts::ConceptId id : event.content) {
      persisted.content_terms.push_back(interner.TermOf(id));
    }
    persisted.locations.assign(event.locations.begin(),
                               event.locations.end());
    out.push_back(std::move(persisted));
  }
  return out;
}

std::vector<profile::SessionEvent> RestoreSessionEvents(
    const std::vector<io::PersistedSessionEvent>& events) {
  concepts::ConceptInterner& interner = concepts::ConceptInterner::Global();
  std::vector<profile::SessionEvent> out;
  out.reserve(events.size());
  for (const io::PersistedSessionEvent& persisted : events) {
    profile::SessionEvent event;
    event.query_id = persisted.query_id;
    event.day = persisted.day;
    event.content.reserve(persisted.content_terms.size());
    for (const std::string& term : persisted.content_terms) {
      event.content.push_back(interner.Intern(term));
    }
    event.locations.assign(persisted.locations.begin(),
                           persisted.locations.end());
    out.push_back(std::move(event));
  }
  return out;
}

std::string UserStateStore::SerializeSection(click::UserId user,
                                             const UserState& state) {
  io::PersistedUserState persisted(*state.profile,
                                   ranking::RankSvm(*state.ModelSnapshot()));
  persisted.user = user;
  persisted.position = state.position;
  persisted.pair_queries = state.pair_queries;
  if (state.pairs != nullptr) {
    persisted.pairs.reserve(state.pairs->size());
    state.pairs->ForEach([&](const StoredPair& sp) {
      io::PersistedPair pp;
      pp.query_index = sp.query_index;
      pp.preferred_backend_index = sp.preferred_backend_index;
      pp.other_backend_index = sp.other_backend_index;
      pp.weight = sp.weight;
      persisted.pairs.push_back(pp);
    });
  }
  {
    // Like ModelSnapshot above: a concurrent Serve of this user may be
    // reading the window/arms while the evictor serializes.
    std::lock_guard<std::mutex> lock(state.session_mutex);
    persisted.session_events = PersistSessionEvents(state.session);
    persisted.bandit_arms.reserve(state.bandit_arms.size());
    for (const ranking::BanditArm& arm : state.bandit_arms) {
      io::PersistedBanditArm pa;
      pa.pulls = arm.pulls;
      pa.reward_sum = arm.reward_sum;
      persisted.bandit_arms.push_back(pa);
    }
  }
  return io::PersistedUserToText(persisted);
}

StatusOr<std::shared_ptr<UserState>> UserStateStore::DeserializeSection(
    const std::string& text) {
  auto parsed = io::PersistedUserFromText(text, ontology_);
  if (!parsed.ok()) return parsed.status();
  auto state = std::make_shared<UserState>();
  state->profile =
      std::make_unique<profile::UserProfile>(std::move(parsed->profile));
  state->model =
      std::make_shared<const ranking::RankSvm>(std::move(parsed->model));
  state->pairs = std::make_unique<RingBuffer<StoredPair>>(
      std::max(1, options_.pair_ring_capacity));
  state->pair_queries = std::move(parsed->pair_queries);
  state->pair_query_index.reserve(state->pair_queries.size());
  for (size_t i = 0; i < state->pair_queries.size(); ++i) {
    state->pair_query_index[state->pair_queries[i]] =
        static_cast<int32_t>(i);
  }
  for (const io::PersistedPair& pp : parsed->pairs) {
    StoredPair sp;
    sp.query_index = pp.query_index;
    sp.preferred_backend_index = pp.preferred_backend_index;
    sp.other_backend_index = pp.other_backend_index;
    sp.weight = pp.weight;
    state->pairs->Push(sp);
  }
  state->position = parsed->position;
  state->session.Restore(RestoreSessionEvents(parsed->session_events));
  state->bandit_arms.reserve(parsed->bandit_arms.size());
  for (const io::PersistedBanditArm& pa : parsed->bandit_arms) {
    ranking::BanditArm arm;
    arm.pulls = pa.pulls;
    arm.reward_sum = pa.reward_sum;
    state->bandit_arms.push_back(arm);
  }
  return state;
}

Status UserStateStore::SpillLocked(Shard& shard, click::UserId user,
                                   const std::string& section) {
  if (shard.segment == nullptr) {
    return InternalError("cold tier not enabled");
  }
  if (section.size() > kMaxColdPayloadBytes) {
    return InternalError("cold record too large");
  }
  const uint32_t payload_len = static_cast<uint32_t>(section.size());
  std::string frame;
  frame.reserve(kColdHeaderBytes + section.size());
  PutU32(&frame, payload_len);
  PutU32(&frame, ColdCrc(payload_len, static_cast<uint64_t>(user), section));
  PutU64(&frame, static_cast<uint64_t>(user));
  frame += section;

  // Appends go through the hooked write so crash-point sweeps can tear
  // an eviction mid-record; no fsync — the cold tier is spill space,
  // not the durability story (snapshot + WAL is).
  if (std::fseek(shard.segment, static_cast<long>(shard.segment_end),
                 SEEK_SET) != 0) {
    return InternalError("seek failed on " + shard.segment_path);
  }
  Status written =
      internal_file::HookedWrite(shard.segment, frame, shard.segment_path);
  if (!written.ok()) {
    // A torn frame may sit past segment_end now; harmless — the next
    // append seeks back to segment_end and overwrites it, and no index
    // entry ever points at it.
    return written;
  }
  if (std::fflush(shard.segment) != 0) {
    return InternalError("flush failed on " + shard.segment_path);
  }
  bool inserted = false;
  ColdLoc* loc = shard.cold.Insert(user, &inserted);
  if (!inserted) {
    const uint64_t old_frame = kColdHeaderBytes + loc->len;
    shard.dead_bytes += old_frame;
    shard.live_bytes -= std::min(shard.live_bytes, old_frame);
  }
  loc->offset = shard.segment_end;
  loc->len = payload_len;
  shard.segment_end += frame.size();
  shard.live_bytes += frame.size();
  Metrics().cold_bytes->Add(static_cast<int64_t>(frame.size()));
  return OkStatus();
}

StatusOr<std::string> UserStateStore::ReadColdLocked(Shard& shard,
                                                     const ColdLoc& loc) {
  if (shard.segment == nullptr) {
    return InternalError("cold tier not enabled");
  }
  if (std::fseek(shard.segment, static_cast<long>(loc.offset), SEEK_SET) !=
      0) {
    return InternalError("seek failed on " + shard.segment_path);
  }
  char header[kColdHeaderBytes];
  if (std::fread(header, 1, kColdHeaderBytes, shard.segment) !=
      kColdHeaderBytes) {
    return DataLossError("cold record header short read in " +
                         shard.segment_path);
  }
  const uint32_t payload_len = GetU32(header);
  const uint32_t crc = GetU32(header + 4);
  const uint64_t user = GetU64(header + 8);
  if (payload_len != loc.len) {
    return DataLossError("cold record length mismatch in " +
                         shard.segment_path);
  }
  std::string payload(payload_len, '\0');
  if (payload_len > 0 &&
      std::fread(payload.data(), 1, payload_len, shard.segment) !=
          payload_len) {
    return DataLossError("cold record short read in " + shard.segment_path);
  }
  if (ColdCrc(payload_len, user, payload) != crc) {
    return DataLossError("cold record checksum mismatch in " +
                         shard.segment_path);
  }
  return payload;
}

UserStateHandle UserStateStore::InsertResidentLocked(
    Shard& shard, click::UserId user, std::shared_ptr<UserState> state,
    bool dirty) {
  state->dirty.store(dirty, std::memory_order_release);
  shard.lru.push_front(user);
  bool inserted = false;
  ResidentEntry* entry = shard.resident.Insert(user, &inserted);
  entry->state = std::move(state);
  entry->lru_it = shard.lru.begin();
  resident_users_.fetch_add(1, std::memory_order_relaxed);
  // Pin before any eviction scan so the newcomer is never its own victim.
  entry->state->pins.fetch_add(1, std::memory_order_acq_rel);
  UserStateHandle handle(entry->state);
  MaybeEvictLocked(shard);
  PublishGauges();
  return handle;
}

void UserStateStore::MaybeEvictLocked(Shard& shard) {
  if (resident_budget_ <= 0 || shard.segment == nullptr) return;
  // The budget is global but evictions are shard-local (only this
  // shard's mutex is held), so bound the work per call: one insert
  // overshoots the budget by one, and a little headroom catches up
  // after inserts whose evictions were blocked by pins. Without the
  // bound, one insert into a hot shard would drain that entire shard
  // whenever the excess residents live in *other* shards — they pay
  // down their own share on their next insert instead.
  int evictions_left = 4;
  bool wrote = false;
  while (evictions_left > 0 &&
         resident_users_.load(std::memory_order_relaxed) >
             resident_budget_) {
    // Walk from the LRU tail toward the head for the first unpinned
    // victim. Pinned states (a caller mid-Serve/Observe) are skipped:
    // new pins are only granted under this mutex, and the acquire load
    // pairs with the last handle's release decrement, so a zero here
    // means every mutation is visible to the spill below.
    auto it = shard.lru.rbegin();
    while (it != shard.lru.rend()) {
      ResidentEntry* entry = shard.resident.Find(*it);
      if (entry != nullptr &&
          entry->state->pins.load(std::memory_order_acquire) == 0) {
        break;
      }
      ++it;
    }
    if (it == shard.lru.rend()) break;  // Everyone here is pinned.
    const click::UserId victim = *it;
    ResidentEntry* entry = shard.resident.Find(victim);
    const bool dirty = entry->state->dirty.load(std::memory_order_acquire);
    if (dirty || shard.cold.Find(victim) == nullptr) {
      const std::string section = SerializeSection(victim, *entry->state);
      Status spilled = SpillLocked(shard, victim, section);
      if (!spilled.ok()) {
        // Keep the user resident — tiering degrades to all-resident
        // rather than losing state. Stop evicting for now; a later
        // insert retries.
        spill_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().spill_errors->Increment();
        break;
      }
      spills_.fetch_add(1, std::memory_order_relaxed);
      Metrics().spills->Increment();
      wrote = true;
    }
    shard.lru.erase(entry->lru_it);
    shard.resident.Erase(victim);
    resident_users_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    Metrics().evictions->Increment();
    --evictions_left;
  }
  if (wrote) MaybeCompactLocked(shard);
}

void UserStateStore::MaybeCompactLocked(Shard& shard) {
  if (shard.dead_bytes <= shard.live_bytes ||
      shard.dead_bytes < options_.compact_min_dead_bytes) {
    return;
  }
  // Rewrite only the indexed (live) records into a fresh segment and
  // atomically swap it in; on any failure the old segment stays.
  const std::string tmp_path = shard.segment_path + ".tmp";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) {
    spill_errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().spill_errors->Increment();
    return;
  }
  struct LiveRecord {
    click::UserId user;
    ColdLoc loc;
  };
  std::vector<LiveRecord> live;
  live.reserve(shard.cold.size());
  shard.cold.ForEach([&](click::UserId id, const ColdLoc& loc) {
    live.push_back({id, loc});
  });
  uint64_t new_end = 0;
  std::vector<ColdLoc> new_locs(live.size());
  bool failed = false;
  for (size_t i = 0; i < live.size() && !failed; ++i) {
    auto payload = ReadColdLocked(shard, live[i].loc);
    if (!payload.ok()) {
      failed = true;
      break;
    }
    std::string frame;
    frame.reserve(kColdHeaderBytes + payload->size());
    const uint32_t len = static_cast<uint32_t>(payload->size());
    PutU32(&frame, len);
    PutU32(&frame,
           ColdCrc(len, static_cast<uint64_t>(live[i].user), *payload));
    PutU64(&frame, static_cast<uint64_t>(live[i].user));
    frame += *payload;
    if (!internal_file::HookedWrite(tmp, frame, tmp_path).ok()) {
      failed = true;
      break;
    }
    new_locs[i].offset = new_end;
    new_locs[i].len = len;
    new_end += frame.size();
  }
  if (failed || std::fflush(tmp) != 0) {
    std::fclose(tmp);
    std::remove(tmp_path.c_str());
    spill_errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().spill_errors->Increment();
    return;
  }
  std::fclose(tmp);
  if (!internal_file::HookedRename(tmp_path, shard.segment_path).ok()) {
    std::remove(tmp_path.c_str());
    spill_errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().spill_errors->Increment();
    return;
  }
  // The rename already replaced the directory entry; reopen our handle
  // onto the new file (the old FILE* still references the unlinked
  // inode).
  std::FILE* reopened = std::fopen(shard.segment_path.c_str(), "r+b");
  if (reopened == nullptr) {
    // Extremely unlikely (the file we just renamed into place). Keep
    // serving reads and appends through the old FILE*: it still
    // references the replaced (now unlinked) inode, whose contents
    // match the untouched cold index. The freshly compacted file on
    // disk is simply abandoned until a later compaction renames over
    // it — the cold tier is process-transient, so nothing reads it.
    spill_errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().spill_errors->Increment();
    return;
  }
  std::fclose(shard.segment);
  shard.segment = reopened;
  for (size_t i = 0; i < live.size(); ++i) {
    ColdLoc* loc = shard.cold.Find(live[i].user);
    if (loc != nullptr) *loc = new_locs[i];
  }
  Metrics().cold_bytes->Add(static_cast<int64_t>(new_end) -
                            static_cast<int64_t>(shard.segment_end));
  shard.segment_end = new_end;
  shard.live_bytes = new_end;
  shard.dead_bytes = 0;
  compactions_.fetch_add(1, std::memory_order_relaxed);
  Metrics().compactions->Increment();
}

void UserStateStore::PublishGauges() const {
  Metrics().resident_users->Set(
      resident_users_.load(std::memory_order_relaxed));
  Metrics().total_users->Set(total_users_.load(std::memory_order_relaxed));
}

}  // namespace pws::core
