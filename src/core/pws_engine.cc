#include "core/pws_engine.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace pws::core {

PersonalizedPage PersonalizedPage::FromBackendPage(backend::ResultPage page) {
  PersonalizedPage out;
  auto analysis = std::make_shared<QueryAnalysis>();
  analysis->page = std::move(page);
  out.analysis = std::move(analysis);
  return out;
}

backend::ResultPage PersonalizedPage::ShownPage() const {
  const backend::ResultPage& source = backend_page();
  backend::ResultPage shown;
  shown.query = source.query;
  shown.results.reserve(order.size());
  for (size_t j = 0; j < order.size(); ++j) {
    backend::SearchResult result = source.results[order[j]];
    result.rank = static_cast<int>(j);
    shown.results.push_back(std::move(result));
  }
  return shown;
}

PwsEngine::PwsEngine(const backend::SearchBackend* search_backend,
                     const geo::LocationOntology* ontology,
                     EngineOptions options)
    : backend_(search_backend),
      ontology_(ontology),
      options_(std::move(options)),
      content_extractor_(options_.content_extractor),
      location_extractor_(ontology, options_.location_concepts),
      query_location_extractor_(ontology, options_.query_location_extractor),
      query_cache_(static_cast<size_t>(
                       std::max(1, options_.query_cache_capacity)),
                   std::max(1, options_.query_cache_shards)) {
  PWS_CHECK(backend_ != nullptr);
  PWS_CHECK(ontology_ != nullptr);
  // Mirror the cache tallies into the process-wide registry; the
  // per-instance CacheStats stay available via query_cache_stats().
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  query_cache_.BindExternalCounters(
      &registry.GetCounter("engine.query_cache.hits")->raw(),
      &registry.GetCounter("engine.query_cache.misses")->raw(),
      &registry.GetCounter("engine.query_cache.evictions")->raw());
}

void PwsEngine::RegisterUser(click::UserId user) {
  {
    std::shared_lock<std::shared_mutex> lock(users_mutex_);
    if (users_.find(user) != users_.end()) return;
  }
  auto profile = std::make_unique<profile::UserProfile>(user, ontology_);
  auto model = std::make_shared<ranking::RankSvm>(ranking::kFeatureCount);
  auto pairs = std::make_unique<RingBuffer<StoredPair>>(
      static_cast<size_t>(std::max(1, options_.max_training_pairs_per_user)));
  if (options_.query_location_match_prior != 0.0 ||
      options_.location_affinity_prior != 0.0) {
    std::vector<double> prior(ranking::kFeatureCount, 0.0);
    prior[ranking::kQueryLocationMatchIndex] =
        options_.query_location_match_prior;
    prior[ranking::kProfileLocationAffinityIndex] =
        options_.location_affinity_prior;
    prior[ranking::kGpsFeatureIndex] = options_.location_affinity_prior;
    ranking::MaskForStrategy(prior.data(), options_.strategy);
    model->SetPrior(std::move(prior));
  }
  // UserState carries a mutex, so it is built in place under the lock
  // rather than moved in.
  std::unique_lock<std::shared_mutex> lock(users_mutex_);
  auto [it, inserted] = users_.try_emplace(user);
  if (!inserted) return;  // Another thread won the race.
  UserState& state = it->second;
  state.profile = std::move(profile);
  state.model = std::move(model);
  state.pairs = std::move(pairs);
}

void PwsEngine::AttachGpsTrace(click::UserId user,
                               const geo::GpsTrace& trace) {
  RegisterUser(user);
  UserState& state = StateOf(user);
  if (trace.empty()) return;
  profile::AugmentProfileWithGps(*ontology_, trace, options_.gps_augment,
                                 state.profile.get());
  state.position = trace.back().point;
}

PwsEngine::UserState& PwsEngine::StateOf(click::UserId user) {
  std::shared_lock<std::shared_mutex> lock(users_mutex_);
  auto it = users_.find(user);
  PWS_CHECK(it != users_.end()) << "user " << user << " not registered";
  // unordered_map nodes are stable: the reference outlives the lock.
  return it->second;
}

const PwsEngine::UserState& PwsEngine::StateOf(click::UserId user) const {
  std::shared_lock<std::shared_mutex> lock(users_mutex_);
  auto it = users_.find(user);
  PWS_CHECK(it != users_.end()) << "user " << user << " not registered";
  return it->second;
}

int PwsEngine::QueryIdOf(const std::string& query) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  for (unsigned char c : query) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime.
  }
  return static_cast<int>(h & 0x7fffffffULL);
}

std::shared_ptr<const QueryAnalysis> PwsEngine::AnalyzeQuery(
    const std::string& query) {
  return query_cache_.GetOrCompute(query, [&] {
    PWS_SPAN("engine.analyze.compute");
    auto analysis = std::make_shared<QueryAnalysis>();
    // Tokenize + intern the query exactly once; backend retrieval and
    // the query-location scan below share the analyzed form.
    backend::AnalyzedQuery analyzed;
    {
      PWS_SPAN("engine.analyze.tokenize");
      analyzed = backend_->Analyze(query);
    }
    {
      PWS_SPAN("engine.analyze.search");
      analysis->page = backend_->Search(analyzed);
    }

    concepts::SnippetIncidence incidence;
    {
      PWS_SPAN("engine.analyze.content");
      analysis->content_concepts =
          content_extractor_.Extract(analysis->page, &incidence);
      analysis->content_ontology =
          std::make_shared<const concepts::ContentOntology>(
              analysis->content_concepts, incidence);
    }
    {
      PWS_SPAN("engine.analyze.locations");
      analysis->locations =
          location_extractor_.Extract(analysis->page, backend_->corpus());
      for (const auto& mention :
           query_location_extractor_.ExtractFromTokens(analyzed.tokens)) {
        analysis->query_mentioned_locations.push_back(mention.location);
      }
    }

    // Per-result concept ids, aligned with backend rank order, as slices
    // of one flat pool. The ontology interned every concept term in local
    // index order, so concept_id(index) resolves without touching the
    // term strings again.
    const int n = static_cast<int>(analysis->page.results.size());
    const concepts::ContentOntology& ontology = *analysis->content_ontology;
    auto& impression = analysis->impression;
    impression.content_offsets.reserve(n + 1);
    impression.content_offsets.push_back(0);
    for (int s = 0; s < n; ++s) {
      if (s < static_cast<int>(incidence.size())) {
        for (int concept_index : incidence[s]) {
          impression.content_pool.push_back(ontology.concept_id(concept_index));
        }
      }
      impression.content_offsets.push_back(
          static_cast<int32_t>(impression.content_pool.size()));
    }
    impression.locations_per_result = analysis->locations.per_result;
    impression.query_mentioned_locations =
        analysis->query_mentioned_locations;
    return std::shared_ptr<const QueryAnalysis>(std::move(analysis));
  });
}

void PwsEngine::ComputeFeaturesInto(const QueryAnalysis& analysis,
                                    const UserState& state,
                                    ranking::FeatureBlock& out,
                                    const ProfileNorms* norms) const {
  ranking::FeatureContext context;
  if (norms != nullptr) {
    context.content_norm = norms->content;
    context.location_norm = norms->location;
  }
  context.ontology = ontology_;
  context.user_profile = state.profile.get();
  context.impression = &analysis.impression;
  context.query_locations = &analysis.locations;
  context.query_mentioned_locations = analysis.query_mentioned_locations;
  context.gps_decay_scale_km = options_.gps_decay_scale_km;
  if (options_.strategy == ranking::Strategy::kCombinedGps) {
    context.gps_position = state.position;
  }
  ranking::ExtractFeaturesInto(analysis.page, context, out);
  ranking::MaskBlockForStrategy(out, options_.strategy);
}

PersonalizedPage PwsEngine::Serve(click::UserId user,
                                  const std::string& query) {
  // Stage spans feed the engine.serve.* latency histograms; the query
  // trace (when the collector is enabled) gets one record per Serve.
  PWS_QUERY_TRACE(query);
  PWS_SPAN("engine.serve.total");
  RegisterUser(user);
  std::shared_ptr<const QueryAnalysis> analysis;
  {
    PWS_SPAN("engine.serve.analyze");
    analysis = AnalyzeQuery(query);
  }
  const UserState* state;
  {
    PWS_SPAN("engine.serve.profile_lookup");
    state = &StateOf(user);
  }

  PersonalizedPage page;
  {
    PWS_SPAN("engine.serve.features");
    ComputeFeaturesInto(*analysis, *state, page.features);
  }
  // The page shares the analysis instead of deep-copying the backend
  // page and impression: cheap Serve, and Observe reads concepts straight
  // from the shared pool.
  page.analysis = std::move(analysis);

  PWS_SPAN("engine.serve.rank");
  ranking::RankerOptions ranker_options;
  ranker_options.alpha = options_.alpha;
  ranker_options.rank_prior_weight = options_.rank_prior_weight;
  ranker_options.blend_mode = options_.blend_mode;
  if (options_.entropy_adaptive_alpha) {
    const int qid = QueryIdOf(query);
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    ranker_options.alpha = entropy_tracker_.AdaptiveLocationBlend(
        qid, options_.min_alpha, options_.max_alpha);
  }
  page.alpha_used = ranker_options.alpha;
  // Score against a model snapshot: a concurrent TrainUser publishes a
  // successor without touching the weights this Serve is reading.
  const std::shared_ptr<const ranking::RankSvm> model =
      state->ModelSnapshot();
  page.order = ranking::RankResults(*model, page.features, options_.strategy,
                                    ranker_options);
  return page;
}

void PwsEngine::Observe(click::UserId user, const PersonalizedPage& page,
                        const click::ClickRecord& record) {
  PWS_SPAN("engine.observe.total");
  UserState& state = StateOf(user);
  const int n = static_cast<int>(page.order.size());
  PWS_CHECK_EQ(static_cast<int>(record.interactions.size()), n)
      << "record/page size mismatch";
  const profile::ImpressionConcepts& impression = page.impression();

  // Re-align per-result concepts to shown order for the profile update —
  // id copies into one flat pool, no string traffic.
  profile::ImpressionConcepts shown;
  shown.content_pool.reserve(impression.content_pool.size());
  shown.content_offsets.reserve(n + 1);
  shown.locations_per_result.resize(n);
  shown.query_mentioned_locations = impression.query_mentioned_locations;
  for (int j = 0; j < n; ++j) {
    const int backend_index = page.order[j];
    shown.AppendResultIds(impression.content_ids(backend_index));
    shown.locations_per_result[j] =
        impression.locations_per_result[backend_index];
  }

  // The page carries its query's content ontology, so similarity
  // spreading works even after the analysis was evicted from the cache.
  state.profile->ObserveImpression(record, shown, page.content_ontology(),
                                   options_.profile_update);

  // Entropy bookkeeping over clicked results.
  const int qid = QueryIdOf(page.backend_page().query);
  {
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    for (int j = 0; j < n; ++j) {
      if (!record.interactions[j].clicked) continue;
      entropy_tracker_.AddClick(qid, shown.content_ids(j),
                                shown.locations_per_result[j]);
    }
  }

  // Preference pairs, stored symbolically (features are recomputed with
  // the current profile at training time). The ring overwrites the
  // oldest pair once the per-user cap is reached.
  const auto pairs = profile::MinePreferencePairs(record, options_.pair_mining);
  if (!pairs.empty()) {
    const std::string& query = page.backend_page().query;
    auto [it, inserted] = state.pair_query_index.try_emplace(
        query, static_cast<int32_t>(state.pair_queries.size()));
    if (inserted) state.pair_queries.push_back(query);
    const int32_t query_index = it->second;
    for (const auto& pair : pairs) {
      StoredPair stored;
      stored.query_index = query_index;
      stored.preferred_backend_index = page.order[pair.preferred_index];
      stored.other_backend_index = page.order[pair.other_index];
      stored.weight = pair.weight;
      state.pairs->Push(stored);
    }
  }
}

double PwsEngine::TrainUser(click::UserId user) {
  PWS_SPAN("engine.train_user.total");
  UserState& state = StateOf(user);
  // Refresh pair features under the current profile: one feature block
  // per distinct query, copied once into the user's slab; every pair of
  // that query points at the copied rows. Chronological ForEach keeps
  // the pair order (and so the SGD shuffle walk) identical to the old
  // front-trimmed vector.
  state.slab.Clear();
  // The profile is fixed for the duration of this retrain: scan its
  // weight maps for the feature normalizers once instead of per query.
  ProfileNorms norms;
  norms.content = std::max(1e-9, state.profile->MaxContentWeight());
  norms.location = std::max(1e-9, state.profile->MaxLocationWeight());
  std::vector<const double*> query_rows(state.pair_queries.size(), nullptr);
  std::vector<ranking::TrainingPair> training_pairs;
  training_pairs.reserve(state.pairs->size());
  ranking::FeatureBlock scratch;
  state.pairs->ForEach([&](const StoredPair& stored) {
    const double*& rows = query_rows[stored.query_index];
    if (rows == nullptr) {
      const std::shared_ptr<const QueryAnalysis> analysis =
          AnalyzeQuery(state.pair_queries[stored.query_index]);
      ComputeFeaturesInto(*analysis, state, scratch, &norms);
      rows = state.slab.CopyBlock(scratch);
    }
    ranking::TrainingPair pair;
    pair.preferred =
        rows + static_cast<size_t>(stored.preferred_backend_index) *
                   ranking::kFeatureCount;
    pair.other = rows + static_cast<size_t>(stored.other_backend_index) *
                            ranking::kFeatureCount;
    pair.weight = stored.weight;
    training_pairs.push_back(pair);
  });
  // Train a successor model off to the side and publish it atomically;
  // Train resets weights to the prior, so copying the snapshot only
  // carries over dimension and prior — results are bit-identical to
  // training in place.
  auto next = std::make_shared<ranking::RankSvm>(*state.ModelSnapshot());
  const double loss = next->Train(training_pairs, options_.rank_svm);
  state.PublishModel(std::move(next));
  return loss;
}

void PwsEngine::TrainAllUsers() {
  PWS_SPAN("engine.train_all_users.total");
  std::vector<click::UserId> ids;
  {
    std::shared_lock<std::shared_mutex> lock(users_mutex_);
    ids.reserve(users_.size());
    for (const auto& [user, state] : users_) ids.push_back(user);
  }
  // Sorted for a stable work order; numerics are per-user and do not
  // depend on scheduling, so any thread count gives identical weights.
  std::sort(ids.begin(), ids.end());
  ParallelFor(ResolveThreadCount(options_.train_threads),
              static_cast<int>(ids.size()),
              [&](int i) { TrainUser(ids[i]); });
}

void PwsEngine::AdvanceDay() {
  std::shared_lock<std::shared_mutex> lock(users_mutex_);
  for (auto& [user, state] : users_) {
    state.profile->DecayDaily(options_.profile_update);
  }
}

const profile::UserProfile& PwsEngine::user_profile(
    click::UserId user) const {
  return *StateOf(user).profile;
}

const ranking::RankSvm& PwsEngine::user_model(click::UserId user) const {
  const UserState& state = StateOf(user);
  std::lock_guard<std::mutex> lock(state.model_mutex);
  return *state.model;
}

int PwsEngine::training_pair_count(click::UserId user) const {
  return static_cast<int>(StateOf(user).pairs->size());
}

void PwsEngine::ImportUserState(click::UserId user,
                                profile::UserProfile profile,
                                ranking::RankSvm model) {
  PWS_CHECK_EQ(model.dimension(), ranking::kFeatureCount);
  RegisterUser(user);
  UserState& state = StateOf(user);
  state.profile = std::make_unique<profile::UserProfile>(std::move(profile));
  state.PublishModel(std::make_shared<const ranking::RankSvm>(std::move(model)));
  state.pairs->Clear();
  state.pair_queries.clear();
  state.pair_query_index.clear();
  state.slab.Clear();
}

}  // namespace pws::core
