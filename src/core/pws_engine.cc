#include "core/pws_engine.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::core {

backend::ResultPage PersonalizedPage::ShownPage() const {
  backend::ResultPage shown;
  shown.query = backend_page.query;
  shown.results.reserve(order.size());
  for (size_t j = 0; j < order.size(); ++j) {
    backend::SearchResult result = backend_page.results[order[j]];
    result.rank = static_cast<int>(j);
    shown.results.push_back(std::move(result));
  }
  return shown;
}

PwsEngine::PwsEngine(const backend::SearchBackend* search_backend,
                     const geo::LocationOntology* ontology,
                     EngineOptions options)
    : backend_(search_backend),
      ontology_(ontology),
      options_(std::move(options)),
      content_extractor_(options_.content_extractor),
      location_extractor_(ontology, options_.location_concepts),
      query_location_extractor_(ontology, options_.query_location_extractor),
      query_cache_(static_cast<size_t>(
                       std::max(1, options_.query_cache_capacity)),
                   std::max(1, options_.query_cache_shards)) {
  PWS_CHECK(backend_ != nullptr);
  PWS_CHECK(ontology_ != nullptr);
  // Mirror the cache tallies into the process-wide registry; the
  // per-instance CacheStats stay available via query_cache_stats().
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  query_cache_.BindExternalCounters(
      &registry.GetCounter("engine.query_cache.hits")->raw(),
      &registry.GetCounter("engine.query_cache.misses")->raw(),
      &registry.GetCounter("engine.query_cache.evictions")->raw());
}

void PwsEngine::RegisterUser(click::UserId user) {
  {
    std::shared_lock<std::shared_mutex> lock(users_mutex_);
    if (users_.find(user) != users_.end()) return;
  }
  UserState state;
  state.profile = std::make_unique<profile::UserProfile>(user, ontology_);
  state.model = std::make_unique<ranking::RankSvm>(ranking::kFeatureCount);
  if (options_.query_location_match_prior != 0.0 ||
      options_.location_affinity_prior != 0.0) {
    std::vector<double> prior(ranking::kFeatureCount, 0.0);
    prior[ranking::kQueryLocationMatchIndex] =
        options_.query_location_match_prior;
    prior[ranking::kProfileLocationAffinityIndex] =
        options_.location_affinity_prior;
    prior[ranking::kGpsFeatureIndex] = options_.location_affinity_prior;
    ranking::MaskForStrategy(prior, options_.strategy);
    state.model->SetPrior(std::move(prior));
  }
  std::unique_lock<std::shared_mutex> lock(users_mutex_);
  users_.emplace(user, std::move(state));  // No-op if another thread won.
}

void PwsEngine::AttachGpsTrace(click::UserId user,
                               const geo::GpsTrace& trace) {
  RegisterUser(user);
  UserState& state = StateOf(user);
  if (trace.empty()) return;
  profile::AugmentProfileWithGps(*ontology_, trace, options_.gps_augment,
                                 state.profile.get());
  state.position = trace.back().point;
}

PwsEngine::UserState& PwsEngine::StateOf(click::UserId user) {
  std::shared_lock<std::shared_mutex> lock(users_mutex_);
  auto it = users_.find(user);
  PWS_CHECK(it != users_.end()) << "user " << user << " not registered";
  // unordered_map nodes are stable: the reference outlives the lock.
  return it->second;
}

const PwsEngine::UserState& PwsEngine::StateOf(click::UserId user) const {
  std::shared_lock<std::shared_mutex> lock(users_mutex_);
  auto it = users_.find(user);
  PWS_CHECK(it != users_.end()) << "user " << user << " not registered";
  return it->second;
}

int PwsEngine::QueryIdOf(const std::string& query) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  for (unsigned char c : query) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime.
  }
  return static_cast<int>(h & 0x7fffffffULL);
}

std::shared_ptr<const PwsEngine::QueryAnalysis> PwsEngine::AnalyzeQuery(
    const std::string& query) {
  return query_cache_.GetOrCompute(query, [&] {
    PWS_SPAN("engine.analyze.compute");
    auto analysis = std::make_shared<QueryAnalysis>();
    // Tokenize + intern the query exactly once; backend retrieval and
    // the query-location scan below share the analyzed form.
    backend::AnalyzedQuery analyzed;
    {
      PWS_SPAN("engine.analyze.tokenize");
      analyzed = backend_->Analyze(query);
    }
    {
      PWS_SPAN("engine.analyze.search");
      analysis->page = backend_->Search(analyzed);
    }

    concepts::SnippetIncidence incidence;
    {
      PWS_SPAN("engine.analyze.content");
      analysis->content_concepts =
          content_extractor_.Extract(analysis->page, &incidence);
      analysis->content_ontology =
          std::make_shared<const concepts::ContentOntology>(
              analysis->content_concepts, incidence);
    }
    {
      PWS_SPAN("engine.analyze.locations");
      analysis->locations =
          location_extractor_.Extract(analysis->page, backend_->corpus());
      for (const auto& mention :
           query_location_extractor_.ExtractFromTokens(analyzed.tokens)) {
        analysis->query_mentioned_locations.push_back(mention.location);
      }
    }

    // Per-result concept term lists, aligned with backend rank order.
    const int n = static_cast<int>(analysis->page.results.size());
    analysis->impression.content_terms_per_result.resize(n);
    for (int s = 0; s < n && s < static_cast<int>(incidence.size()); ++s) {
      for (int concept_index : incidence[s]) {
        analysis->impression.content_terms_per_result[s].push_back(
            analysis->content_concepts[concept_index].term);
      }
    }
    analysis->impression.locations_per_result = analysis->locations.per_result;
    analysis->impression.query_mentioned_locations =
        analysis->query_mentioned_locations;
    return std::shared_ptr<const QueryAnalysis>(std::move(analysis));
  });
}

ranking::FeatureMatrix PwsEngine::ComputeFeatures(
    const QueryAnalysis& analysis, const UserState& state) const {
  ranking::FeatureContext context;
  context.ontology = ontology_;
  context.user_profile = state.profile.get();
  context.content_terms_per_result =
      &analysis.impression.content_terms_per_result;
  context.query_locations = &analysis.locations;
  context.query_mentioned_locations = analysis.query_mentioned_locations;
  context.gps_decay_scale_km = options_.gps_decay_scale_km;
  if (options_.strategy == ranking::Strategy::kCombinedGps) {
    context.gps_position = state.position;
  }
  ranking::FeatureMatrix features =
      ranking::ExtractFeatures(analysis.page, context);
  ranking::MaskMatrixForStrategy(features, options_.strategy);
  return features;
}

PersonalizedPage PwsEngine::Serve(click::UserId user,
                                  const std::string& query) {
  // Stage spans feed the engine.serve.* latency histograms; the query
  // trace (when the collector is enabled) gets one record per Serve.
  PWS_QUERY_TRACE(query);
  PWS_SPAN("engine.serve.total");
  RegisterUser(user);
  std::shared_ptr<const QueryAnalysis> analysis;
  {
    PWS_SPAN("engine.serve.analyze");
    analysis = AnalyzeQuery(query);
  }
  const UserState* state;
  {
    PWS_SPAN("engine.serve.profile_lookup");
    state = &StateOf(user);
  }

  PersonalizedPage page;
  page.backend_page = analysis->page;
  page.impression = analysis->impression;
  page.content_ontology = analysis->content_ontology;
  {
    PWS_SPAN("engine.serve.features");
    page.features = ComputeFeatures(*analysis, *state);
  }

  PWS_SPAN("engine.serve.rank");
  ranking::RankerOptions ranker_options;
  ranker_options.alpha = options_.alpha;
  ranker_options.rank_prior_weight = options_.rank_prior_weight;
  ranker_options.blend_mode = options_.blend_mode;
  if (options_.entropy_adaptive_alpha) {
    const int qid = QueryIdOf(query);
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    ranker_options.alpha = entropy_tracker_.AdaptiveLocationBlend(
        qid, options_.min_alpha, options_.max_alpha);
  }
  page.alpha_used = ranker_options.alpha;
  page.order = ranking::RankResults(*state->model, page.features,
                                    options_.strategy, ranker_options);
  return page;
}

void PwsEngine::Observe(click::UserId user, const PersonalizedPage& page,
                        const click::ClickRecord& record) {
  PWS_SPAN("engine.observe.total");
  UserState& state = StateOf(user);
  const int n = static_cast<int>(page.order.size());
  PWS_CHECK_EQ(static_cast<int>(record.interactions.size()), n)
      << "record/page size mismatch";

  // Re-align per-result concepts to shown order for the profile update.
  profile::ImpressionConcepts shown;
  shown.content_terms_per_result.resize(n);
  shown.locations_per_result.resize(n);
  shown.query_mentioned_locations = page.impression.query_mentioned_locations;
  for (int j = 0; j < n; ++j) {
    const int backend_index = page.order[j];
    shown.content_terms_per_result[j] =
        page.impression.content_terms_per_result[backend_index];
    shown.locations_per_result[j] =
        page.impression.locations_per_result[backend_index];
  }

  // The page carries its query's content ontology, so similarity
  // spreading works even after the analysis was evicted from the cache.
  state.profile->ObserveImpression(record, shown,
                                   page.content_ontology.get(),
                                   options_.profile_update);

  // Entropy bookkeeping over clicked results.
  const int qid = QueryIdOf(page.backend_page.query);
  {
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    for (int j = 0; j < n; ++j) {
      if (!record.interactions[j].clicked) continue;
      entropy_tracker_.AddClick(qid, shown.content_terms_per_result[j],
                                shown.locations_per_result[j]);
    }
  }

  // Preference pairs, stored symbolically (features are recomputed with
  // the current profile at training time).
  const auto pairs = profile::MinePreferencePairs(record, options_.pair_mining);
  for (const auto& pair : pairs) {
    StoredPair stored;
    stored.query = page.backend_page.query;
    stored.preferred_backend_index = page.order[pair.preferred_index];
    stored.other_backend_index = page.order[pair.other_index];
    stored.weight = pair.weight;
    state.pairs.push_back(std::move(stored));
  }
  const int cap = options_.max_training_pairs_per_user;
  if (static_cast<int>(state.pairs.size()) > cap) {
    state.pairs.erase(state.pairs.begin(), state.pairs.end() - cap);
  }
}

double PwsEngine::TrainUser(click::UserId user) {
  PWS_SPAN("engine.train_user.total");
  UserState& state = StateOf(user);
  // Refresh pair features under the current profile; one feature matrix
  // per distinct query.
  std::unordered_map<std::string, ranking::FeatureMatrix> fresh;
  std::vector<ranking::TrainingPair> training_pairs;
  training_pairs.reserve(state.pairs.size());
  for (const StoredPair& stored : state.pairs) {
    auto it = fresh.find(stored.query);
    if (it == fresh.end()) {
      const std::shared_ptr<const QueryAnalysis> analysis =
          AnalyzeQuery(stored.query);
      it = fresh.emplace(stored.query, ComputeFeatures(*analysis, state))
               .first;
    }
    ranking::TrainingPair pair;
    pair.preferred = it->second[stored.preferred_backend_index];
    pair.other = it->second[stored.other_backend_index];
    pair.weight = stored.weight;
    training_pairs.push_back(std::move(pair));
  }
  return state.model->Train(training_pairs, options_.rank_svm);
}

void PwsEngine::TrainAllUsers() {
  std::vector<click::UserId> ids;
  {
    std::shared_lock<std::shared_mutex> lock(users_mutex_);
    ids.reserve(users_.size());
    for (const auto& [user, state] : users_) ids.push_back(user);
  }
  for (click::UserId user : ids) TrainUser(user);
}

void PwsEngine::AdvanceDay() {
  std::shared_lock<std::shared_mutex> lock(users_mutex_);
  for (auto& [user, state] : users_) {
    state.profile->DecayDaily(options_.profile_update);
  }
}

const profile::UserProfile& PwsEngine::user_profile(
    click::UserId user) const {
  return *StateOf(user).profile;
}

const ranking::RankSvm& PwsEngine::user_model(click::UserId user) const {
  return *StateOf(user).model;
}

int PwsEngine::training_pair_count(click::UserId user) const {
  return static_cast<int>(StateOf(user).pairs.size());
}

void PwsEngine::ImportUserState(click::UserId user,
                                profile::UserProfile profile,
                                ranking::RankSvm model) {
  PWS_CHECK_EQ(model.dimension(), ranking::kFeatureCount);
  RegisterUser(user);
  UserState& state = StateOf(user);
  state.profile = std::make_unique<profile::UserProfile>(std::move(profile));
  state.model = std::make_unique<ranking::RankSvm>(std::move(model));
  state.pairs.clear();
}

}  // namespace pws::core
