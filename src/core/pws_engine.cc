#include "core/pws_engine.h"

#include <algorithm>
#include <iterator>
#include <unordered_set>

#include "io/engine_state_io.h"
#include "io/wal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"
#include "util/check.h"
#include "util/file_util.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace pws::core {
namespace {

// WAL record types: the first payload byte tags the event.
//   'C' — one observed impression; body is the click payload below.
//   'T' — TrainUser; body is the user id.
//   'A' — TrainAllUsers (no body).
constexpr char kWalClick = 'C';
constexpr char kWalTrainUser = 'T';
constexpr char kWalTrainAll = 'A';

// %a hex floats: exact round trip, so replayed dwell times grade
// identically to the original observation (the click-log TSV's 2-decimal
// dwell would not).
std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

// Click payload body (after the "C\n" tag line):
//
//   <user>\t<day>\t<query_id>\t<query text>\n
//   <doc>\t<rank>\t<clicked>\t<dwell %a>\t<last_click>\n   (per shown slot)
//
// The query text is the last header field so embedded tabs survive, and
// it is line-break-escaped so an embedded '\n'/'\r' cannot tear the
// line-based payload apart on replay.
std::string EncodeClickPayload(click::UserId user, const std::string& query,
                               const click::ClickRecord& record) {
  std::string out(1, kWalClick);
  out += '\n';
  out += std::to_string(user);
  out += '\t';
  out += std::to_string(record.day);
  out += '\t';
  out += std::to_string(record.query_id);
  out += '\t';
  out += EscapeLineBreaks(query);
  out += '\n';
  for (const click::Interaction& interaction : record.interactions) {
    out += std::to_string(interaction.doc);
    out += '\t';
    out += std::to_string(interaction.rank);
    out += '\t';
    out += interaction.clicked ? '1' : '0';
    out += '\t';
    out += HexDouble(interaction.dwell_units);
    out += '\t';
    out += interaction.last_click_in_session ? '1' : '0';
    out += '\n';
  }
  return out;
}

// Parses EncodeClickPayload's body. Returns false on any malformed line
// (the caller skips the record with a warning rather than aborting the
// whole recovery).
bool DecodeClickPayload(const std::string& body, click::UserId* user,
                        std::string* query, click::ClickRecord* record) {
  const std::vector<std::string> lines = SplitLines(body);
  if (lines.empty()) return false;
  const std::vector<std::string> header = StrSplit(lines[0], '\t');
  if (header.size() < 4) return false;
  int64_t user_id = 0;
  int64_t day = 0;
  int64_t query_id = 0;
  if (!ParseInt64(header[0], &user_id) || !ParseInt64(header[1], &day) ||
      !ParseInt64(header[2], &query_id)) {
    return false;
  }
  std::string escaped_query = header[3];
  for (size_t f = 4; f < header.size(); ++f) {
    escaped_query += '\t';
    escaped_query += header[f];
  }
  *query = UnescapeLineBreaks(escaped_query);
  *user = static_cast<click::UserId>(user_id);
  record->user = *user;
  record->day = static_cast<int>(day);
  record->query_id = static_cast<int>(query_id);
  record->query_text = *query;
  for (size_t l = 1; l < lines.size(); ++l) {
    if (lines[l].empty()) continue;  // Trailing newline.
    const std::vector<std::string> fields = StrSplit(lines[l], '\t');
    if (fields.size() != 5) return false;
    int64_t doc = 0;
    int64_t rank = 0;
    click::Interaction interaction;
    if (!ParseInt64(fields[0], &doc) || !ParseInt64(fields[1], &rank) ||
        !ParseDouble(fields[3], &interaction.dwell_units)) {
      return false;
    }
    interaction.doc = static_cast<corpus::DocId>(doc);
    interaction.rank = static_cast<int>(rank);
    interaction.clicked = fields[2] == "1";
    interaction.last_click_in_session = fields[4] == "1";
    record->interactions.push_back(interaction);
  }
  return !record->interactions.empty();
}

}  // namespace

PersonalizedPage PersonalizedPage::FromBackendPage(backend::ResultPage page) {
  PersonalizedPage out;
  auto analysis = std::make_shared<QueryAnalysis>();
  analysis->page = std::move(page);
  out.analysis = std::move(analysis);
  return out;
}

backend::ResultPage PersonalizedPage::ShownPage() const {
  const backend::ResultPage& source = backend_page();
  backend::ResultPage shown;
  shown.query = source.query;
  shown.results.reserve(order.size());
  for (size_t j = 0; j < order.size(); ++j) {
    backend::SearchResult result = source.results[order[j]];
    result.rank = static_cast<int>(j);
    shown.results.push_back(std::move(result));
  }
  return shown;
}

PwsEngine::PwsEngine(const backend::SearchBackend* search_backend,
                     const geo::LocationOntology* ontology,
                     EngineOptions options)
    : backend_(search_backend),
      ontology_(ontology),
      options_(std::move(options)),
      content_extractor_(options_.content_extractor),
      location_extractor_(ontology, options_.location_concepts),
      query_location_extractor_(ontology, options_.query_location_extractor),
      query_cache_(static_cast<size_t>(
                       std::max(1, options_.query_cache_capacity)),
                   std::max(1, options_.query_cache_shards)),
      store_(ontology, [this] {
        UserStateStore::Options store_options;
        store_options.shards = options_.user_store_shards;
        store_options.pair_ring_capacity =
            std::max(1, options_.max_training_pairs_per_user);
        return store_options;
      }()) {
  PWS_CHECK(backend_ != nullptr);
  PWS_CHECK(ontology_ != nullptr);
  // An unreadable cold record degrades to a fresh (reset) state instead
  // of dropping the user.
  store_.SetFreshStateFactory(
      [this](click::UserId user) { return BuildFreshState(user); });
  // Mirror the cache tallies into the process-wide registry; the
  // per-instance CacheStats stay available via query_cache_stats().
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  query_cache_.BindExternalCounters(
      &registry.GetCounter("engine.query_cache.hits")->raw(),
      &registry.GetCounter("engine.query_cache.misses")->raw(),
      &registry.GetCounter("engine.query_cache.evictions")->raw());
}

PwsEngine::~PwsEngine() = default;

std::shared_ptr<UserState> PwsEngine::BuildFreshState(
    click::UserId user) const {
  auto state = std::make_shared<UserState>();
  state->profile = std::make_unique<profile::UserProfile>(user, ontology_);
  auto model = std::make_shared<ranking::RankSvm>(ranking::kFeatureCount);
  state->pairs = std::make_unique<RingBuffer<StoredPair>>(
      static_cast<size_t>(std::max(1, options_.max_training_pairs_per_user)));
  if (options_.query_location_match_prior != 0.0 ||
      options_.location_affinity_prior != 0.0) {
    std::vector<double> prior(ranking::kFeatureCount, 0.0);
    prior[ranking::kQueryLocationMatchIndex] =
        options_.query_location_match_prior;
    prior[ranking::kProfileLocationAffinityIndex] =
        options_.location_affinity_prior;
    prior[ranking::kGpsFeatureIndex] = options_.location_affinity_prior;
    ranking::MaskForStrategy(prior.data(), options_.strategy);
    model->SetPrior(std::move(prior));
  }
  state->model = std::move(model);
  return state;
}

void PwsEngine::RegisterUser(click::UserId user) {
  if (store_.Contains(user)) return;
  // A racing registration loses inside InsertIfAbsent (idempotent).
  store_.InsertIfAbsent(user, BuildFreshState(user));
}

void PwsEngine::AttachGpsTrace(click::UserId user,
                               const geo::GpsTrace& trace) {
  RegisterUser(user);
  if (trace.empty()) return;
  UserStateHandle state = StateOf(user);
  profile::AugmentProfileWithGps(*ontology_, trace, options_.gps_augment,
                                 state->profile.get());
  state->position = trace.back().point;
  state->dirty.store(true, std::memory_order_release);
}

UserStateHandle PwsEngine::StateOf(click::UserId user) const {
  UserStateHandle handle = store_.Acquire(user);
  PWS_CHECK(handle) << "user " << user << " not registered";
  return handle;
}

io::WriteAheadLog* PwsEngine::WalForUser(click::UserId user) {
  if (wals_.empty()) return nullptr;
  return wals_[static_cast<size_t>(store_.shard_of(user)) % wals_.size()]
      .get();
}

int PwsEngine::QueryIdOf(const std::string& query) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis.
  for (unsigned char c : query) {
    h ^= c;
    h *= 1099511628211ULL;  // FNV prime.
  }
  return static_cast<int>(h & 0x7fffffffULL);
}

std::shared_ptr<const QueryAnalysis> PwsEngine::AnalyzeQuery(
    const std::string& query) {
  return query_cache_.GetOrCompute(query, [&] {
    PWS_SPAN("engine.analyze.compute");
    auto analysis = std::make_shared<QueryAnalysis>();
    // Tokenize + intern the query exactly once; backend retrieval and
    // the query-location scan below share the analyzed form.
    backend::AnalyzedQuery analyzed;
    {
      PWS_SPAN("engine.analyze.tokenize");
      analyzed = backend_->Analyze(query);
    }
    {
      PWS_SPAN("engine.analyze.search");
      analysis->page = backend_->Search(analyzed);
    }

    concepts::SnippetIncidence incidence;
    {
      PWS_SPAN("engine.analyze.content");
      analysis->content_concepts =
          content_extractor_.Extract(analysis->page, &incidence);
      analysis->content_ontology =
          std::make_shared<const concepts::ContentOntology>(
              analysis->content_concepts, incidence);
    }
    {
      PWS_SPAN("engine.analyze.locations");
      analysis->locations =
          location_extractor_.Extract(analysis->page, backend_->corpus());
      for (const auto& mention :
           query_location_extractor_.ExtractFromTokens(analyzed.tokens)) {
        analysis->query_mentioned_locations.push_back(mention.location);
      }
    }

    // Per-result concept ids, aligned with backend rank order, as slices
    // of one flat pool. The ontology interned every concept term in local
    // index order, so concept_id(index) resolves without touching the
    // term strings again.
    const int n = static_cast<int>(analysis->page.results.size());
    const concepts::ContentOntology& ontology = *analysis->content_ontology;
    auto& impression = analysis->impression;
    impression.content_offsets.reserve(n + 1);
    impression.content_offsets.push_back(0);
    for (int s = 0; s < n; ++s) {
      if (s < static_cast<int>(incidence.size())) {
        for (int concept_index : incidence[s]) {
          impression.content_pool.push_back(ontology.concept_id(concept_index));
        }
      }
      impression.content_offsets.push_back(
          static_cast<int32_t>(impression.content_pool.size()));
    }
    impression.locations_per_result = analysis->locations.per_result;
    impression.query_mentioned_locations =
        analysis->query_mentioned_locations;
    return std::shared_ptr<const QueryAnalysis>(std::move(analysis));
  });
}

void PwsEngine::ComputeFeaturesInto(const QueryAnalysis& analysis,
                                    const UserState& state,
                                    ranking::FeatureBlock& out,
                                    const ProfileNorms* norms) const {
  ranking::FeatureContext context;
  if (norms != nullptr) {
    context.content_norm = norms->content;
    context.location_norm = norms->location;
  }
  context.ontology = ontology_;
  context.user_profile = state.profile.get();
  context.impression = &analysis.impression;
  context.query_locations = &analysis.locations;
  context.query_mentioned_locations = analysis.query_mentioned_locations;
  context.gps_decay_scale_km = options_.gps_decay_scale_km;
  if (options_.strategy == ranking::Strategy::kCombinedGps) {
    context.gps_position = state.position;
  }
  ranking::ExtractFeaturesInto(analysis.page, context, out);
  ranking::MaskBlockForStrategy(out, options_.strategy);
}

std::vector<double> PwsEngine::ComputeSessionBoost(
    const QueryAnalysis& analysis,
    const profile::SessionWindow& window) const {
  const int n = static_cast<int>(analysis.page.results.size());
  std::vector<double> boost(n, 0.0);
  IdMap<concepts::ConceptId, double> content_weights;
  IdMap<geo::LocationId, double> location_weights;
  window.AccumulateWeights(options_.session, &content_weights,
                           &location_weights);
  for (int i = 0; i < n; ++i) {
    double overlap = 0.0;
    for (const concepts::ConceptId id : analysis.impression.content_ids(i)) {
      overlap += content_weights.ValueOr(id, 0.0);
    }
    for (const geo::LocationId loc :
         analysis.impression.locations_per_result[i]) {
      overlap += location_weights.ValueOr(loc, 0.0);
    }
    // Saturating overlap/(1+overlap): a result sharing *something* with
    // the session moves up, but no pile-up of shared concepts can drown
    // the learned score.
    boost[i] = options_.session_boost_weight * overlap / (1.0 + overlap);
  }
  return boost;
}

PersonalizedPage PwsEngine::Serve(click::UserId user,
                                  const std::string& query) {
  // Stage spans feed the engine.serve.* latency histograms; the query
  // trace (when the collector is enabled) gets one record per Serve.
  PWS_QUERY_TRACE(query);
  PWS_SPAN("engine.serve.total");
  RegisterUser(user);
  std::shared_ptr<const QueryAnalysis> analysis;
  {
    PWS_SPAN("engine.serve.analyze");
    analysis = AnalyzeQuery(query);
  }
  UserStateHandle state;
  {
    PWS_SPAN("engine.serve.profile_lookup");
    state = StateOf(user);
  }

  PersonalizedPage page;
  {
    PWS_SPAN("engine.serve.features");
    ComputeFeaturesInto(*analysis, *state, page.features);
  }
  // The page shares the analysis instead of deep-copying the backend
  // page and impression: cheap Serve, and Observe reads concepts straight
  // from the shared pool.
  page.analysis = std::move(analysis);

  PWS_SPAN("engine.serve.rank");
  ranking::RankerOptions ranker_options;
  ranker_options.alpha = options_.alpha;
  ranker_options.rank_prior_weight = options_.rank_prior_weight;
  ranker_options.blend_mode = options_.blend_mode;
  if (options_.entropy_adaptive_alpha) {
    const int qid = QueryIdOf(query);
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    ranker_options.alpha = entropy_tracker_.AdaptiveLocationBlend(
        qid, options_.min_alpha, options_.max_alpha);
  }
  // The session boost and the bandit's α choice both read the user's
  // online-adaptation state; one lock hold covers them. Selection is
  // read-only — Observe records the pull and reward, so WAL replay
  // (which rebuilds arm statistics click by click) re-selects exactly
  // the arms the original process played.
  std::vector<double> session_boost;
  {
    std::lock_guard<std::mutex> lock(state->session_mutex);
    if (options_.bandit.enabled) {
      const int arm_count = std::max(1, options_.bandit.arms);
      int64_t total_pulls = 0;
      for (const ranking::BanditArm& arm : state->bandit_arms) {
        total_pulls += arm.pulls;
      }
      std::span<const ranking::BanditArm> arms(state->bandit_arms);
      // A user restored from an older snapshot (or a reconfigured arm
      // count) selects over what exists; Observe resizes on update.
      const int arm = static_cast<int>(state->bandit_arms.size()) == arm_count
          ? ranking::SelectArm(
                arms, options_.bandit,
                ranking::BanditDrawKey(options_.bandit.seed, user,
                                       QueryIdOf(query), total_pulls))
          : 0;
      page.bandit_arm = arm;
      ranker_options.alpha = ranking::ArmAlpha(arm, options_.bandit);
    }
    if (options_.strategy == ranking::Strategy::kSession &&
        !state->session.empty()) {
      session_boost = ComputeSessionBoost(*page.analysis, state->session);
      ranker_options.session_boost = &session_boost;
    }
  }
  page.alpha_used = ranker_options.alpha;
  // Score against a model snapshot: a concurrent TrainUser publishes a
  // successor without touching the weights this Serve is reading.
  const std::shared_ptr<const ranking::RankSvm> model =
      state->ModelSnapshot();
  page.order = ranking::RankResults(*model, page.features, options_.strategy,
                                    ranker_options);
  return page;
}

void PwsEngine::Observe(click::UserId user, const PersonalizedPage& page,
                        const click::ClickRecord& record) {
  PWS_SPAN("engine.observe.total");
  UserStateHandle state = StateOf(user);
  const int n = static_cast<int>(page.order.size());
  PWS_CHECK_EQ(static_cast<int>(record.interactions.size()), n)
      << "record/page size mismatch";
  const profile::ImpressionConcepts& impression = page.impression();

  // Re-align per-result concepts to shown order for the profile update —
  // id copies into one flat pool, no string traffic.
  profile::ImpressionConcepts shown;
  shown.content_pool.reserve(impression.content_pool.size());
  shown.content_offsets.reserve(n + 1);
  shown.locations_per_result.resize(n);
  shown.query_mentioned_locations = impression.query_mentioned_locations;
  for (int j = 0; j < n; ++j) {
    const int backend_index = page.order[j];
    shown.AppendResultIds(impression.content_ids(backend_index));
    shown.locations_per_result[j] =
        impression.locations_per_result[backend_index];
  }

  // The page carries its query's content ontology, so similarity
  // spreading works even after the analysis was evicted from the cache.
  {
    PWS_SPAN("engine.observe.profile");
    state->profile->ObserveImpression(record, shown, page.content_ontology(),
                                      options_.profile_update);
  }

  // Entropy bookkeeping over clicked results.
  const int qid = QueryIdOf(page.backend_page().query);
  {
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    for (int j = 0; j < n; ++j) {
      if (!record.interactions[j].clicked) continue;
      entropy_tracker_.AddClick(qid, shown.content_ids(j),
                                shown.locations_per_result[j]);
    }
  }

  // Online-adaptation state: the session window eats the clicked
  // results' concepts (kSession only — the five paper strategies stay
  // bit-identical with this code in place), and the bandit credits the
  // arm Serve played with this page's click reward. Both run during WAL
  // replay too, which is what reconstructs them after a crash.
  if (options_.strategy == ranking::Strategy::kSession ||
      options_.bandit.enabled) {
    std::lock_guard<std::mutex> lock(state->session_mutex);
    if (options_.strategy == ranking::Strategy::kSession) {
      for (int j = 0; j < n; ++j) {
        if (!record.interactions[j].clicked) continue;
        state->session.AddClick(qid, static_cast<double>(record.day),
                                shown.content_ids(j),
                                shown.locations_per_result[j],
                                options_.session);
      }
    }
    if (options_.bandit.enabled && page.bandit_arm >= 0) {
      const int arm_count = std::max(1, options_.bandit.arms);
      if (static_cast<int>(state->bandit_arms.size()) != arm_count) {
        state->bandit_arms.assign(static_cast<size_t>(arm_count),
                                  ranking::BanditArm{});
      }
      // Reciprocal rank of the first click: rewards pages whose top
      // results got clicked, 0 for click-less pages.
      double reward = 0.0;
      for (int j = 0; j < n; ++j) {
        if (record.interactions[j].clicked) {
          reward = 1.0 / (1.0 + static_cast<double>(j));
          break;
        }
      }
      ranking::BanditArm& arm =
          state->bandit_arms[static_cast<size_t>(page.bandit_arm) %
                             state->bandit_arms.size()];
      ++arm.pulls;
      arm.reward_sum += reward;
    }
  }

  // Preference pairs, stored symbolically (features are recomputed with
  // the current profile at training time). The ring overwrites the
  // oldest pair once the per-user cap is reached.
  {
    PWS_SPAN("engine.observe.pairs");
    const auto pairs =
        profile::MinePreferencePairs(record, options_.pair_mining);
    if (!pairs.empty()) {
      const std::string& query = page.backend_page().query;
      auto [it, inserted] = state->pair_query_index.try_emplace(
          query, static_cast<int32_t>(state->pair_queries.size()));
      if (inserted) state->pair_queries.push_back(query);
      const int32_t query_index = it->second;
      for (const auto& pair : pairs) {
        StoredPair stored;
        stored.query_index = query_index;
        stored.preferred_backend_index = page.order[pair.preferred_index];
        stored.other_backend_index = page.order[pair.other_index];
        stored.weight = pair.weight;
        state->pairs->Push(stored);
      }
      if (options_.incremental_training) {
        // Fold this impression's pairs into the model right now: the
        // page's feature rows are exactly what a retrain would recompute
        // for this query under the current profile (strategy-masked,
        // backend order), so the online step trains on the same
        // distribution as the full sweep. The successor-copy + publish
        // dance matches TrainUser: a concurrent Serve keeps scoring its
        // snapshot.
        PWS_SPAN("engine.observe.incremental_train");
        std::vector<ranking::TrainingPair> fresh;
        fresh.reserve(pairs.size());
        for (const auto& pair : pairs) {
          ranking::TrainingPair tp;
          tp.preferred = page.features.row(page.order[pair.preferred_index]);
          tp.other = page.features.row(page.order[pair.other_index]);
          tp.weight = pair.weight;
          fresh.push_back(tp);
        }
        auto next =
            std::make_shared<ranking::RankSvm>(*state->ModelSnapshot());
        ranking::RankSvmOptions incremental_options = options_.rank_svm;
        incremental_options.epochs = std::max(1, options_.incremental_epochs);
        next->TrainIncremental(fresh, incremental_options);
        state->PublishModel(std::move(next));
      }
    }
  }
  // Published before the pin drops: the release store pairs with the
  // evictor's acquire of the pin count, so a later spill serializes
  // everything this Observe wrote.
  state->dirty.store(true, std::memory_order_release);

  // Log the observation after applying it: a crash between the two loses
  // at most this one event — recovery lands on the pre-observe state,
  // which is a state the engine really was in (old-or-new, never torn).
  io::WriteAheadLog* wal = WalForUser(user);
  if (wal != nullptr && !replaying_) {
    PWS_SPAN("engine.observe.wal");
    // The engine's own (user, query) are authoritative for replay: the
    // caller may have left the record's copies unset.
    const Status status = wal->Append(
        EncodeClickPayload(user, page.backend_page().query, record));
    if (!status.ok()) {
      PWS_LOG(kWarning) << "WAL append failed (observation not durable): "
                        << status;
    }
  }
}

double PwsEngine::TrainUser(click::UserId user) {
  PWS_SPAN("engine.train_user.total");
  UserStateHandle state = StateOf(user);
  // Refresh pair features under the current profile: one feature block
  // per distinct query, copied once into the user's slab; every pair of
  // that query points at the copied rows. Chronological ForEach keeps
  // the pair order (and so the SGD shuffle walk) identical to the old
  // front-trimmed vector.
  std::vector<ranking::TrainingPair> training_pairs;
  {
    PWS_SPAN("engine.train_user.features");
    state->slab.Clear();
    // The profile is fixed for the duration of this retrain: scan its
    // weight maps for the feature normalizers once instead of per query.
    ProfileNorms norms;
    norms.content = std::max(1e-9, state->profile->MaxContentWeight());
    norms.location = std::max(1e-9, state->profile->MaxLocationWeight());
    std::vector<const double*> query_rows(state->pair_queries.size(),
                                          nullptr);
    std::vector<int> query_row_counts(state->pair_queries.size(), 0);
    training_pairs.reserve(state->pairs->size());
    ranking::FeatureBlock scratch;
    state->pairs->ForEach([&](const StoredPair& stored) {
      const double*& rows = query_rows[stored.query_index];
      if (rows == nullptr) {
        const std::shared_ptr<const QueryAnalysis> analysis =
            AnalyzeQuery(state->pair_queries[stored.query_index]);
        ComputeFeaturesInto(*analysis, *state, scratch, &norms);
        rows = state->slab.CopyBlock(scratch);
        query_row_counts[stored.query_index] = scratch.rows();
      }
      // Pairs restored from a snapshot may point past the current backend
      // page (e.g. the corpus shrank between runs); drop them rather than
      // read rows that do not exist.
      const int row_count = query_row_counts[stored.query_index];
      if (stored.preferred_backend_index >= row_count ||
          stored.other_backend_index >= row_count) {
        PWS_LOG(kWarning) << "dropping stored pair with out-of-range backend "
                             "index for query '"
                          << state->pair_queries[stored.query_index] << "'";
        return;
      }
      ranking::TrainingPair pair;
      pair.preferred =
          rows + static_cast<size_t>(stored.preferred_backend_index) *
                     ranking::kFeatureCount;
      pair.other = rows + static_cast<size_t>(stored.other_backend_index) *
                              ranking::kFeatureCount;
      pair.weight = stored.weight;
      training_pairs.push_back(pair);
    });
  }
  // Train a successor model off to the side and publish it atomically;
  // Train resets weights to the prior, so copying the snapshot only
  // carries over dimension and prior — results are bit-identical to
  // training in place.
  auto next = std::make_shared<ranking::RankSvm>(*state->ModelSnapshot());
  const double loss = next->Train(training_pairs, options_.rank_svm);
  state->PublishModel(std::move(next));
  state->dirty.store(true, std::memory_order_release);
  // One 'T' record per direct call; a TrainAllUsers sweep logs a single
  // 'A' record instead of one per user.
  io::WriteAheadLog* wal = WalForUser(user);
  if (wal != nullptr && !replaying_ && !in_train_all_) {
    const Status status = wal->Append(std::string(1, kWalTrainUser) + "\n" +
                                      std::to_string(user));
    if (!status.ok()) {
      PWS_LOG(kWarning) << "WAL append failed (training run not durable): "
                        << status;
    }
  }
  return loss;
}

void PwsEngine::TrainAllUsers() {
  PWS_SPAN("engine.train_all_users.total");
  // Already sorted: a stable work order; numerics are per-user and do
  // not depend on scheduling, so any thread count gives identical
  // weights. Cold users fault in inside TrainUser's StateOf.
  const std::vector<click::UserId> ids = store_.SortedUserIds();
  // Set before the fan-out, cleared after the join (both happens-before
  // the workers' reads): the per-user TrainUser calls skip their 'T'
  // records and the sweep logs one 'A' record for the lot.
  in_train_all_ = true;
  ParallelFor(ResolveThreadCount(options_.train_threads),
              static_cast<int>(ids.size()),
              [&](int i) { TrainUser(ids[i]); });
  in_train_all_ = false;
  if (!wals_.empty() && !replaying_) {
    // The sweep covers every shard; its single record lives on shard 0.
    const Status status = wals_[0]->Append(std::string(1, kWalTrainAll));
    if (!status.ok()) {
      PWS_LOG(kWarning) << "WAL append failed (training sweep not durable): "
                        << status;
    }
  }
}

void PwsEngine::AdvanceDay() {
  for (const click::UserId user : store_.SortedUserIds()) {
    UserStateHandle state = StateOf(user);
    state->profile->DecayDaily(options_.profile_update);
    state->dirty.store(true, std::memory_order_release);
  }
}

profile::UserProfile PwsEngine::user_profile(click::UserId user) const {
  // Copied out while the handle pins the state resident; the pin (and,
  // with tiering, possibly the state itself) is gone once we return.
  return *StateOf(user)->profile;
}

ranking::RankSvm PwsEngine::user_model(click::UserId user) const {
  return *StateOf(user)->ModelSnapshot();
}

int PwsEngine::training_pair_count(click::UserId user) const {
  return static_cast<int>(StateOf(user)->pairs->size());
}

void PwsEngine::ImportUserState(click::UserId user,
                                profile::UserProfile profile,
                                ranking::RankSvm model) {
  PWS_CHECK_EQ(model.dimension(), ranking::kFeatureCount);
  RegisterUser(user);
  UserStateHandle state = StateOf(user);
  state->profile = std::make_unique<profile::UserProfile>(std::move(profile));
  state->PublishModel(
      std::make_shared<const ranking::RankSvm>(std::move(model)));
  state->pairs->Clear();
  state->pair_queries.clear();
  state->pair_query_index.clear();
  state->slab.Clear();
  state->dirty.store(true, std::memory_order_release);
}

Status PwsEngine::EnableTiering(const std::string& cold_dir,
                                int64_t resident_users) {
  return store_.EnableTiering(cold_dir, resident_users);
}

Status PwsEngine::EnableWal(const std::string& wal_path) {
  io::WriteAheadLog::Options wal_options;
  wal_options.group_commit = options_.wal_group_commit;
  wal_options.group_max_batch = options_.wal_group_max_batch;
  wal_options.group_wait_us = options_.wal_group_wait_us;
  // One shared sequence space across shards: recovery merge-sorts the
  // per-shard tails back into total order by seq.
  wal_options.sequencer = &wal_seq_;
  const int shards =
      std::max(1, std::min(options_.wal_shards, store_.shard_count()));
  std::vector<std::unique_ptr<io::WriteAheadLog>> wals;
  wals.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    // Shard 0 keeps the bare path, so a single-WAL log from an older
    // run (or an older build) is picked up as shard 0.
    const std::string path =
        i == 0 ? wal_path : wal_path + ".s" + std::to_string(i);
    auto wal = io::WriteAheadLog::Open(path, wal_options);
    if (!wal.ok()) return wal.status();
    wals.push_back(std::move(wal).value());
  }
  wals_ = std::move(wals);
  return OkStatus();
}

std::vector<std::string> PwsEngine::wal_paths() const {
  std::vector<std::string> paths;
  paths.reserve(wals_.size());
  for (const auto& wal : wals_) paths.push_back(wal->path());
  return paths;
}

Status PwsEngine::SaveState(const std::string& snapshot_path) {
  PWS_SPAN("engine.snapshot.save");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  // The high-water mark is read *before* collecting user states: a
  // record sequenced after it but applied during collection is replayed
  // on recovery — at worst a redundant deterministic retrain, never a
  // skipped unapplied event. (Observe must not run concurrently; see the
  // header contract.)
  uint64_t last_wal_seq = 0;
  uint64_t wal_lineage_id = 0;
  std::vector<uint64_t> wal_shard_lineages;
  if (!wals_.empty()) {
    last_wal_seq = wal_seq_.load(std::memory_order_acquire);
    wal_lineage_id = wals_[0]->lineage_id();
    wal_shard_lineages.reserve(wals_.size());
    for (const auto& wal : wals_) {
      wal_shard_lineages.push_back(wal->lineage_id());
    }
  }
  // Per-user sections: a resident user serializes from live state (the
  // model via its published snapshot, so a concurrent TrainAllUsers
  // swaps successors without torn reads); a cold user's spill record IS
  // its section, spliced in without faulting anyone in.
  const std::vector<click::UserId> ids = store_.SortedUserIds();
  std::vector<std::string> sections;
  sections.reserve(ids.size());
  for (const click::UserId user : ids) {
    auto section = store_.UserSectionText(user);
    if (!section.ok()) {
      registry.GetCounter("engine.snapshot.save_errors")->Increment();
      return section.status();
    }
    sections.push_back(std::move(section).value());
  }
  // Click-entropy state rides in the snapshot too: without it a
  // restored engine's entropy_adaptive_alpha rankings diverged from the
  // pre-crash process (the WAL high-water mark makes replay skip every
  // pre-snapshot click, so the counts were simply lost). Ids become
  // terms: concept ids are process-local interner order.
  std::string entropy_section;
  {
    const concepts::ConceptInterner& interner =
        concepts::ConceptInterner::Global();
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    const auto exported = entropy_tracker_.Export();
    std::vector<io::PersistedQueryEntropy> persisted;
    persisted.reserve(exported.size());
    for (const auto& query : exported) {
      io::PersistedQueryEntropy entry;
      entry.query_id = query.query_id;
      entry.clicks = query.clicks;
      entry.content_clicks.reserve(query.content_clicks.size());
      for (const auto& [id, count] : query.content_clicks) {
        entry.content_clicks.emplace_back(interner.TermOf(id), count);
      }
      entry.location_clicks.reserve(query.location_clicks.size());
      for (const auto& [id, count] : query.location_clicks) {
        entry.location_clicks.emplace_back(static_cast<int>(id), count);
      }
      persisted.push_back(std::move(entry));
    }
    entropy_section = io::EntropySectionText(persisted);
  }
  const std::string text = io::ComposeEngineStateText(
      last_wal_seq, wal_lineage_id, wal_shard_lineages, sections,
      entropy_section);
  const Status status = WriteFileAtomic(snapshot_path, text);
  if (!status.ok()) {
    registry.GetCounter("engine.snapshot.save_errors")->Increment();
    return status;
  }
  registry.GetCounter("engine.snapshot.saves")->Increment();
  for (const auto& wal : wals_) {
    const Status truncated = wal->Truncate();
    if (!truncated.ok()) {
      // Harmless: the snapshot's high-water mark makes replay skip the
      // already-folded records; the next snapshot retries the truncation.
      PWS_LOG(kWarning) << "WAL truncation after snapshot failed: "
                        << truncated;
    }
  }
  return OkStatus();
}

Status PwsEngine::RestoreState(const std::string& snapshot_path) {
  PWS_SPAN("engine.snapshot.restore");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  uint64_t floor_seq = 0;
  // A missing snapshot is an empty one: a process that crashed before
  // its first SaveState recovers purely from the WAL.
  if (FileExists(snapshot_path)) {
    auto loaded = io::LoadEngineState(snapshot_path, ontology_);
    if (!loaded.ok()) {
      registry.GetCounter("engine.snapshot.restore_errors")->Increment();
      return loaded.status();
    }
    // Refuse a snapshot/WAL pairing from different lineages before
    // touching any user state: the snapshot's high-water mark only means
    // something against the WALs it was taken with, so replaying these
    // logs' tails on a foreign snapshot would re-apply (or skip) records
    // that have nothing to do with it.
    if (!wals_.empty()) {
      if (loaded->wal_lineage_id != 0 && wals_[0]->lineage_id() != 0 &&
          loaded->wal_lineage_id != wals_[0]->lineage_id()) {
        registry.GetCounter("engine.snapshot.lineage_mismatches")
            ->Increment();
        return FailedPreconditionError(
            "snapshot " + snapshot_path + " is paired with a different WAL "
            "lineage (snapshot wal id " +
            std::to_string(loaded->wal_lineage_id) + ", open wal " +
            wals_[0]->path() + " id " +
            std::to_string(wals_[0]->lineage_id()) +
            "); restore it without this WAL or alongside its own");
      }
      if (!loaded->wal_shard_lineages.empty()) {
        if (loaded->wal_shard_lineages.size() != wals_.size()) {
          registry.GetCounter("engine.snapshot.lineage_mismatches")
              ->Increment();
          return FailedPreconditionError(
              "snapshot " + snapshot_path + " was taken with " +
              std::to_string(loaded->wal_shard_lineages.size()) +
              " WAL shards but " + std::to_string(wals_.size()) +
              " are open; restore with the same wal_shards setting");
        }
        for (size_t i = 0; i < wals_.size(); ++i) {
          if (loaded->wal_shard_lineages[i] != 0 &&
              wals_[i]->lineage_id() != 0 &&
              loaded->wal_shard_lineages[i] != wals_[i]->lineage_id()) {
            registry.GetCounter("engine.snapshot.lineage_mismatches")
                ->Increment();
            return FailedPreconditionError(
                "snapshot " + snapshot_path +
                " is paired with a different WAL lineage on shard " +
                std::to_string(i) + " (snapshot wal id " +
                std::to_string(loaded->wal_shard_lineages[i]) +
                ", open wal " + wals_[i]->path() + " id " +
                std::to_string(wals_[i]->lineage_id()) +
                "); restore it without this WAL or alongside its own");
          }
        }
      }
    }
    floor_seq = loaded->last_wal_seq;
    // Entropy first, before any replayed click re-adds counts on top.
    if (!loaded->entropy.empty()) {
      concepts::ConceptInterner& interner =
          concepts::ConceptInterner::Global();
      std::vector<profile::ClickEntropyTracker::QueryClickStats> stats;
      stats.reserve(loaded->entropy.size());
      for (const io::PersistedQueryEntropy& entry : loaded->entropy) {
        profile::ClickEntropyTracker::QueryClickStats query;
        query.query_id = entry.query_id;
        query.clicks = entry.clicks;
        query.content_clicks.reserve(entry.content_clicks.size());
        for (const auto& [term, count] : entry.content_clicks) {
          query.content_clicks.emplace_back(interner.Intern(term), count);
        }
        query.location_clicks.reserve(entry.location_clicks.size());
        for (const auto& [id, count] : entry.location_clicks) {
          query.location_clicks.emplace_back(
              static_cast<geo::LocationId>(id), count);
        }
        stats.push_back(std::move(query));
      }
      std::lock_guard<std::mutex> lock(entropy_mutex_);
      entropy_tracker_.Import(stats);
    }
    for (io::PersistedUserState& persisted : loaded->users) {
      if (persisted.model.dimension() != ranking::kFeatureCount) {
        registry.GetCounter("engine.snapshot.restore_errors")->Increment();
        return InvalidArgumentError(
            "snapshot model dimension " +
            std::to_string(persisted.model.dimension()) +
            " does not match engine feature count for user " +
            std::to_string(persisted.user));
      }
      RegisterUser(persisted.user);
      UserStateHandle state = StateOf(persisted.user);
      state->profile = std::make_unique<profile::UserProfile>(
          std::move(persisted.profile));
      state->PublishModel(std::make_shared<const ranking::RankSvm>(
          std::move(persisted.model)));
      state->position = persisted.position;
      state->pair_queries = std::move(persisted.pair_queries);
      state->pair_query_index.clear();
      for (size_t q = 0; q < state->pair_queries.size(); ++q) {
        state->pair_query_index[state->pair_queries[q]] =
            static_cast<int32_t>(q);
      }
      state->pairs->Clear();
      for (const io::PersistedPair& pair : persisted.pairs) {
        StoredPair stored;
        stored.query_index = pair.query_index;
        stored.preferred_backend_index = pair.preferred_backend_index;
        stored.other_backend_index = pair.other_backend_index;
        stored.weight = pair.weight;
        state->pairs->Push(stored);
      }
      state->slab.Clear();
      {
        std::lock_guard<std::mutex> lock(state->session_mutex);
        state->session.Restore(
            RestoreSessionEvents(persisted.session_events));
        state->bandit_arms.clear();
        state->bandit_arms.reserve(persisted.bandit_arms.size());
        for (const io::PersistedBanditArm& pa : persisted.bandit_arms) {
          ranking::BanditArm arm;
          arm.pulls = pa.pulls;
          arm.reward_sum = pa.reward_sum;
          state->bandit_arms.push_back(arm);
        }
      }
      state->dirty.store(true, std::memory_order_release);
    }
  }
  registry.GetCounter("engine.snapshot.restores")->Increment();
  if (wals_.empty()) return OkStatus();

  // Re-impose the snapshot's high-water mark on every shard's sequence
  // counter (and so on the shared sequencer). Open derives the counter
  // only from frames still in the files, so after a snapshot truncated
  // the logs and the process restarted it would restart at 0 — and
  // every post-restart append would reuse a sequence number at or below
  // floor_seq, which the *next* recovery silently skips as
  // already-folded-in.
  for (const auto& wal : wals_) wal->EnsureSeqAtLeast(floor_seq);

  // Replay the log tails, merged across shards into total sequence
  // order (all shards draw from one sequence space, so sorting by seq
  // reconstructs the original global apply order). Each 'C' record
  // re-serves its query — Serve is deterministic, so the page order
  // equals what the user saw — and re-observes the logged interactions;
  // 'T'/'A' records re-run training. Records at or below the snapshot's
  // high-water mark are already folded in and skipped.
  std::vector<io::WriteAheadLog::ReplayedRecord> records;
  for (const auto& wal : wals_) {
    auto replay = io::WriteAheadLog::Replay(wal->path());
    if (!replay.ok()) {
      registry.GetCounter("engine.snapshot.restore_errors")->Increment();
      return replay.status();
    }
    if (replay->torn_tail) {
      registry.GetCounter("wal.replay.torn_tails")->Increment();
    }
    std::move(replay->records.begin(), replay->records.end(),
              std::back_inserter(records));
  }
  std::sort(records.begin(), records.end(),
            [](const io::WriteAheadLog::ReplayedRecord& a,
               const io::WriteAheadLog::ReplayedRecord& b) {
              return a.seq < b.seq;
            });
  replaying_ = true;
  for (const io::WriteAheadLog::ReplayedRecord& record : records) {
    if (record.seq <= floor_seq) {
      registry.GetCounter("wal.replay.skipped")->Increment();
      continue;
    }
    bool applied = false;
    if (record.payload.size() == 1 && record.payload[0] == kWalTrainAll) {
      TrainAllUsers();
      applied = true;
    } else if (record.payload.size() >= 2 && record.payload[1] == '\n') {
      const std::string body = record.payload.substr(2);
      if (record.payload[0] == kWalClick) {
        click::UserId user = -1;
        std::string query;
        click::ClickRecord logged;
        if (DecodeClickPayload(body, &user, &query, &logged)) {
          const PersonalizedPage page = Serve(user, query);
          if (page.order.size() == logged.interactions.size()) {
            Observe(user, page, logged);
            applied = true;
          }
        }
      } else if (record.payload[0] == kWalTrainUser) {
        int64_t user = 0;
        bool registered = false;
        if (ParseInt64(body, &user)) {
          registered = store_.Contains(static_cast<click::UserId>(user));
        }
        if (registered) {
          TrainUser(static_cast<click::UserId>(user));
          applied = true;
        }
      }
    }
    if (applied) {
      registry.GetCounter("wal.replay.records")->Increment();
    } else {
      // Skip, do not abort: one unreadable record must not block
      // recovery of the rest (its CRC was valid, so this means a format
      // from a different engine build or corpus).
      registry.GetCounter("wal.replay.mismatches")->Increment();
      PWS_LOG(kWarning) << "skipping unreplayable WAL record seq "
                        << record.seq;
    }
  }
  replaying_ = false;
  return OkStatus();
}

}  // namespace pws::core
