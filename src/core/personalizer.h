#ifndef PWS_CORE_PERSONALIZER_H_
#define PWS_CORE_PERSONALIZER_H_

#include <string>

#include "click/click_log.h"
#include "geo/gps.h"

namespace pws::core {

struct PersonalizedPage;  // Defined in pws_engine.h.

/// The serve/observe/train contract every personalization method in this
/// repository implements — the paper's engine (PwsEngine) and the
/// comparison baselines (baselines/). The evaluation harness drives any
/// implementation through this interface so comparisons share one
/// protocol.
class Personalizer {
 public:
  virtual ~Personalizer() = default;

  /// Creates per-user state (idempotent).
  virtual void RegisterUser(click::UserId user) = 0;

  /// Supplies a device trace for mobile methods. Default: ignored.
  virtual void AttachGpsTrace(click::UserId user,
                              const geo::GpsTrace& trace) {
    (void)user;
    (void)trace;
  }

  /// Serves a (possibly re-ranked) page for (user, query).
  virtual PersonalizedPage Serve(click::UserId user,
                                 const std::string& query) = 0;

  /// Feeds back the interactions on a page this personalizer served.
  virtual void Observe(click::UserId user, const PersonalizedPage& page,
                       const click::ClickRecord& record) = 0;

  /// Runs whatever (re)training the method performs. Default: none.
  virtual void TrainAllUsers() {}

  /// Day-boundary bookkeeping (decay etc). Default: none.
  virtual void AdvanceDay() {}
};

}  // namespace pws::core

#endif  // PWS_CORE_PERSONALIZER_H_
