#ifndef PWS_CORE_PWS_ENGINE_H_
#define PWS_CORE_PWS_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/search_backend.h"
#include "click/click_log.h"
#include "core/personalizer.h"
#include "concepts/content_extractor.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/gps.h"
#include "geo/location_extractor.h"
#include "geo/location_ontology.h"
#include "profile/entropy.h"
#include "profile/gps_augment.h"
#include "profile/preference_pairs.h"
#include "profile/user_profile.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "ranking/ranker.h"

namespace pws::core {

/// All engine knobs in one place; the defaults are the configuration the
/// reconstructed experiments run with.
struct EngineOptions {
  ranking::Strategy strategy = ranking::Strategy::kCombined;
  concepts::ContentExtractorOptions content_extractor;
  concepts::LocationConceptOptions location_concepts;
  geo::LocationExtractorOptions query_location_extractor;
  profile::ProfileUpdateOptions profile_update;
  profile::PairMiningOptions pair_mining;
  profile::GpsAugmentOptions gps_augment;
  ranking::RankSvmOptions rank_svm;
  /// Fixed location blend weight α (see ranking::RankerOptions).
  double alpha = 0.5;
  /// How the two preference blocks are combined (score blend or
  /// reciprocal-rank fusion).
  ranking::BlendMode blend_mode = ranking::BlendMode::kScoreBlend;
  /// Backend-order prior weight (see ranking::RankerOptions).
  double rank_prior_weight = 1.0;
  /// Prior on the query-location-match feature: matching a city the
  /// query names is relevance, not personalization, so new models boost
  /// it before any training. L2 regularizes toward this prior.
  double query_location_match_prior = 1.0;
  /// Prior on the profile-location-affinity and GPS-proximity features:
  /// lets a cold model act on a GPS-seeded profile before any
  /// clickthrough exists (the mobile cold-start story). Training refines
  /// it.
  double location_affinity_prior = 0.6;
  /// Adapt α per query from click location entropy instead of fixing it.
  bool entropy_adaptive_alpha = false;
  double min_alpha = 0.1;
  double max_alpha = 0.75;
  /// GPS proximity feature distance scale.
  double gps_decay_scale_km = 150.0;
  /// Cap on accumulated training pairs per user (oldest dropped).
  int max_training_pairs_per_user = 20000;
};

/// What Serve returns: the backend page plus the personalized
/// permutation and everything Observe needs to learn from feedback.
struct PersonalizedPage {
  /// The untouched backend page (results in backend rank order).
  backend::ResultPage backend_page;
  /// Personalized permutation: shown position j holds backend index
  /// order[j].
  std::vector<int> order;
  /// Feature vectors in backend order, already strategy-masked.
  ranking::FeatureMatrix features;
  /// Per-result concepts in backend order.
  profile::ImpressionConcepts impression;
  /// The α used for this page (fixed or entropy-adaptive).
  double alpha_used = 0.5;

  /// The page in shown (personalized) order, with ranks rewritten —
  /// exactly what the user (or the click simulator) sees.
  backend::ResultPage ShownPage() const;
};

/// The personalized web search engine with location preferences — the
/// paper's primary contribution. It wraps a black-box search backend and
/// runs the loop:
///
///   Serve:    query -> backend top-k -> content/location concept
///             extraction -> profile-aware features -> RankSVM scores ->
///             content/location blended re-rank.
///   Observe:  clickthrough -> dwell grading -> profile update (with
///             ontology spreading) -> preference-pair mining -> entropy
///             bookkeeping.
///   TrainUser: RankSVM SGD over the user's accumulated pairs.
///
/// One RankSVM and one UserProfile per user; concept extraction per query
/// is cached (it is profile-independent).
class PwsEngine : public Personalizer {
 public:
  /// `search_backend` and `ontology` must outlive the engine.
  PwsEngine(const backend::SearchBackend* search_backend,
            const geo::LocationOntology* ontology, EngineOptions options);

  PwsEngine(const PwsEngine&) = delete;
  PwsEngine& operator=(const PwsEngine&) = delete;

  /// Creates an empty profile/model for `user` (idempotent).
  void RegisterUser(click::UserId user) override;

  /// Folds a GPS trace into the user's location profile and remembers
  /// the last fix as the user's current position (mobile scenario).
  void AttachGpsTrace(click::UserId user,
                      const geo::GpsTrace& trace) override;

  /// Serves a personalized page for (user, query).
  PersonalizedPage Serve(click::UserId user,
                         const std::string& query) override;

  /// Feeds back the interactions on a page previously returned by Serve
  /// for the same user. `record.interactions[j]` must describe shown
  /// position j of `page`.
  void Observe(click::UserId user, const PersonalizedPage& page,
               const click::ClickRecord& record) override;

  /// Retrains the user's RankSVM on all accumulated pairs. Returns the
  /// final epoch's average hinge loss.
  double TrainUser(click::UserId user);

  /// Retrains every registered user.
  void TrainAllUsers() override;

  /// Applies one day's profile decay to every user.
  void AdvanceDay() override;

  const profile::UserProfile& user_profile(click::UserId user) const;
  const ranking::RankSvm& user_model(click::UserId user) const;
  const profile::ClickEntropyTracker& entropy_tracker() const {
    return entropy_tracker_;
  }
  const EngineOptions& options() const { return options_; }
  int registered_user_count() const {
    return static_cast<int>(users_.size());
  }
  /// Pairs accumulated for a user so far.
  int training_pair_count(click::UserId user) const;

  /// Replaces a user's learned state with externally supplied profile and
  /// model (e.g. loaded via io::LoadUserState after a restart). The
  /// profile must be bound to the same ontology; the model dimension
  /// must match. Accumulated training pairs are cleared.
  void ImportUserState(click::UserId user, profile::UserProfile profile,
                       ranking::RankSvm model);

 private:
  /// Cached, profile-independent analysis of one query's page.
  struct QueryAnalysis {
    backend::ResultPage page;
    std::vector<concepts::ContentConcept> content_concepts;
    concepts::ContentOntology content_ontology;
    concepts::QueryLocationConcepts locations;
    std::vector<geo::LocationId> query_mentioned_locations;
    profile::ImpressionConcepts impression;
  };

  /// A mined preference stored symbolically (query + backend indices).
  /// Features are recomputed against the *current* profile at training
  /// time so train and serve see the same feature distribution (pairs
  /// recorded while the profile was young would otherwise train the
  /// model on all-zero profile features).
  struct StoredPair {
    std::string query;
    int preferred_backend_index = -1;
    int other_backend_index = -1;
    double weight = 1.0;
  };

  struct UserState {
    std::unique_ptr<profile::UserProfile> profile;
    std::unique_ptr<ranking::RankSvm> model;
    std::vector<StoredPair> pairs;
    std::optional<geo::GeoPoint> position;
  };

  const QueryAnalysis& AnalyzeQuery(const std::string& query);

  /// Strategy-masked feature matrix of a query's page under the user's
  /// current profile.
  ranking::FeatureMatrix ComputeFeatures(const QueryAnalysis& analysis,
                                         const UserState& state) const;
  UserState& StateOf(click::UserId user);
  const UserState& StateOf(click::UserId user) const;
  int InternQuery(const std::string& query);

  const backend::SearchBackend* backend_;
  const geo::LocationOntology* ontology_;
  EngineOptions options_;
  concepts::ContentConceptExtractor content_extractor_;
  concepts::LocationConceptExtractor location_extractor_;
  geo::LocationExtractor query_location_extractor_;
  std::unordered_map<std::string, QueryAnalysis> query_cache_;
  std::unordered_map<click::UserId, UserState> users_;
  profile::ClickEntropyTracker entropy_tracker_;
  std::unordered_map<std::string, int> query_ids_;
};

}  // namespace pws::core

#endif  // PWS_CORE_PWS_ENGINE_H_
