#ifndef PWS_CORE_PWS_ENGINE_H_
#define PWS_CORE_PWS_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "backend/search_backend.h"
#include "click/click_log.h"
#include "core/personalizer.h"
#include "core/user_state_store.h"
#include "concepts/content_extractor.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/gps.h"
#include "geo/location_extractor.h"
#include "geo/location_ontology.h"
#include "profile/entropy.h"
#include "profile/gps_augment.h"
#include "profile/preference_pairs.h"
#include "profile/session_model.h"
#include "profile/user_profile.h"
#include "ranking/bandit.h"
#include "ranking/feature_slab.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "ranking/ranker.h"
#include "util/ring_buffer.h"
#include "util/sharded_lru.h"
#include "util/status.h"

namespace pws::io {
class WriteAheadLog;
}  // namespace pws::io

namespace pws::core {

/// All engine knobs in one place; the defaults are the configuration the
/// reconstructed experiments run with.
struct EngineOptions {
  ranking::Strategy strategy = ranking::Strategy::kCombined;
  concepts::ContentExtractorOptions content_extractor;
  concepts::LocationConceptOptions location_concepts;
  geo::LocationExtractorOptions query_location_extractor;
  profile::ProfileUpdateOptions profile_update;
  profile::PairMiningOptions pair_mining;
  profile::GpsAugmentOptions gps_augment;
  ranking::RankSvmOptions rank_svm;
  /// Fixed location blend weight α (see ranking::RankerOptions).
  double alpha = 0.5;
  /// How the two preference blocks are combined (score blend or
  /// reciprocal-rank fusion).
  ranking::BlendMode blend_mode = ranking::BlendMode::kScoreBlend;
  /// Backend-order prior weight (see ranking::RankerOptions).
  double rank_prior_weight = 1.0;
  /// Prior on the query-location-match feature: matching a city the
  /// query names is relevance, not personalization, so new models boost
  /// it before any training. L2 regularizes toward this prior.
  double query_location_match_prior = 1.0;
  /// Prior on the profile-location-affinity and GPS-proximity features:
  /// lets a cold model act on a GPS-seeded profile before any
  /// clickthrough exists (the mobile cold-start story). Training refines
  /// it.
  double location_affinity_prior = 0.6;
  /// Adapt α per query from click location entropy instead of fixing it.
  bool entropy_adaptive_alpha = false;
  double min_alpha = 0.1;
  double max_alpha = 0.75;
  /// GPS proximity feature distance scale.
  double gps_decay_scale_km = 150.0;
  /// Session window (Strategy::kSession; DESIGN.md §17): bound, gap
  /// threshold, and age decay of the per-user in-session click window.
  profile::SessionModelOptions session;
  /// Scale of the serve-time session boost added to each result's score
  /// (the per-result affinity is already saturated to [0, 1)).
  double session_boost_weight = 0.5;
  /// Contextual-bandit blend controller: when enabled, α is chosen per
  /// query by a per-user bandit over discretized arms instead of the
  /// fixed/entropy rule (bandit.enabled wins over
  /// entropy_adaptive_alpha).
  ranking::BanditOptions bandit;
  /// Fold each observation's freshly mined pairs into the user's model
  /// immediately (one in-order SGD pass continuing from the current
  /// weights — see RankSvm::TrainIncremental) instead of waiting for the
  /// next full retrain sweep. Pairs still accumulate for full retrains.
  bool incremental_training = false;
  /// Passes TrainIncremental makes over one observation's pairs.
  int incremental_epochs = 1;
  /// Cap on accumulated training pairs per user (oldest dropped).
  int max_training_pairs_per_user = 20000;
  /// Threads for TrainAllUsers (0 = all hardware threads, 1 = serial).
  /// Per-user training runs are independent, so any thread count yields
  /// bit-identical weights.
  int train_threads = 1;
  /// Total entries the bounded query-analysis cache keeps (LRU eviction;
  /// evicted queries are simply re-analyzed on the next Serve, which is
  /// deterministic, so eviction never changes results — only memory and
  /// latency).
  int query_cache_capacity = 4096;
  /// Shards of the query-analysis cache; each shard has its own mutex,
  /// so concurrent Serve calls rarely contend.
  int query_cache_shards = 16;
  /// Shards of the user-state store (rounded up to a power of two).
  /// Mutating calls on different shards never contend.
  int user_store_shards = 16;
  /// Write-ahead logs to spread appends over (capped at the store shard
  /// count): WAL k takes the records of store shards congruent to k, so
  /// clicks on different WAL shards fsync independently. All shards draw
  /// sequence numbers from one shared counter, so recovery merge-replays
  /// them in total order.
  int wal_shards = 4;
  /// Group commit for the WAL shards (see io::WriteAheadLog::Options):
  /// concurrent appends share fsyncs instead of serializing on them.
  /// Off by default — identical durability either way; group commit
  /// trades a bounded ack latency for much higher append throughput.
  bool wal_group_commit = false;
  int wal_group_max_batch = 64;
  int wal_group_wait_us = 200;
};

/// The cached, profile-independent analysis of one query's page: the
/// backend results plus every concept structure derived from them.
/// Produced once per query by PwsEngine::AnalyzeQuery (bounded LRU),
/// shared by shared_ptr — Serve hands the same immutable analysis to
/// every PersonalizedPage of that query instead of deep-copying the page
/// and impression into each one, and LRU eviction never invalidates an
/// analysis a page or a training pass still holds.
struct QueryAnalysis {
  backend::ResultPage page;
  std::vector<concepts::ContentConcept> content_concepts;
  std::shared_ptr<const concepts::ContentOntology> content_ontology;
  concepts::QueryLocationConcepts locations;
  std::vector<geo::LocationId> query_mentioned_locations;
  /// Per-result interned concept ids in backend rank order (flat pool).
  profile::ImpressionConcepts impression;
};

/// What Serve returns: a handle on the query's shared analysis plus the
/// personalized permutation and the user-specific feature rows — the only
/// per-Serve allocations left are the permutation and one flat feature
/// array.
struct PersonalizedPage {
  /// The query's shared analysis (never null for engine/baseline-served
  /// pages; see FromBackendPage).
  std::shared_ptr<const QueryAnalysis> analysis;
  /// Personalized permutation: shown position j holds backend index
  /// order[j].
  std::vector<int> order;
  /// Feature rows in backend order, already strategy-masked.
  ranking::FeatureBlock features;
  /// The α used for this page (fixed, entropy-adaptive, or a bandit
  /// arm's value).
  double alpha_used = 0.5;
  /// The bandit arm that chose alpha_used (-1 when the bandit is off).
  /// Observe credits this arm with the page's click reward.
  int bandit_arm = -1;

  /// The untouched backend page (results in backend rank order).
  const backend::ResultPage& backend_page() const { return analysis->page; }
  /// Per-result concepts in backend order.
  const profile::ImpressionConcepts& impression() const {
    return analysis->impression;
  }
  /// The query's content ontology, carried with the page so Observe's
  /// similarity spreading never depends on the query still being
  /// resident in the engine's bounded analysis cache. Null for
  /// personalizers that do not extract content concepts (baselines).
  const concepts::ContentOntology* content_ontology() const {
    return analysis->content_ontology.get();
  }

  /// Wraps a bare backend page in a minimal analysis (no concepts) —
  /// the baselines' Serve path.
  static PersonalizedPage FromBackendPage(backend::ResultPage page);

  /// The page in shown (personalized) order, with ranks rewritten —
  /// exactly what the user (or the click simulator) sees.
  backend::ResultPage ShownPage() const;
};

/// The personalized web search engine with location preferences — the
/// paper's primary contribution. It wraps a black-box search backend and
/// runs the loop:
///
///   Serve:    query -> backend top-k -> content/location concept
///             extraction -> profile-aware features -> RankSVM scores ->
///             content/location blended re-rank.
///   Observe:  clickthrough -> dwell grading -> profile update (with
///             ontology spreading) -> preference-pair mining -> entropy
///             bookkeeping.
///   TrainUser: RankSVM SGD over the user's accumulated pairs.
///
/// One RankSVM and one UserProfile per user, held in an N-way sharded
/// UserStateStore; concept extraction per query is cached (it is
/// profile-independent) in a bounded, sharded LRU cache
/// (EngineOptions::query_cache_capacity/query_cache_shards). With
/// EnableTiering the store keeps only the most recently used users in
/// memory and spills the rest to an on-disk cold tier, so engine memory
/// is O(resident users), not O(total users) — a cold user's next
/// Serve/Observe faults its state back in bit-identically.
///
/// Thread-safety: one engine instance may be driven from many threads.
/// Serve, RegisterUser, AttachGpsTrace and the const accessors are safe
/// to call concurrently with each other for any mix of users. Calls
/// that *mutate a user's learned state* (Observe, TrainUser,
/// ImportUserState) are safe concurrently across *different* users;
/// callers must serialize mutating calls targeting the same user, and
/// must not run TrainAllUsers / AdvanceDay concurrently with any
/// mutating call (both iterate every user). TrainAllUsers itself fans
/// out over EngineOptions::train_threads — it is the one sanctioned way
/// to train many users concurrently, and it may run concurrently with
/// Serve/const accessors (training publishes into per-user models only).
class PwsEngine : public Personalizer {
 public:
  /// `search_backend` and `ontology` must outlive the engine.
  PwsEngine(const backend::SearchBackend* search_backend,
            const geo::LocationOntology* ontology, EngineOptions options);
  ~PwsEngine();

  PwsEngine(const PwsEngine&) = delete;
  PwsEngine& operator=(const PwsEngine&) = delete;

  /// Creates an empty profile/model for `user` (idempotent).
  void RegisterUser(click::UserId user) override;

  /// Folds a GPS trace into the user's location profile and remembers
  /// the last fix as the user's current position (mobile scenario).
  void AttachGpsTrace(click::UserId user,
                      const geo::GpsTrace& trace) override;

  /// Serves a personalized page for (user, query).
  PersonalizedPage Serve(click::UserId user,
                         const std::string& query) override;

  /// Feeds back the interactions on a page previously returned by Serve
  /// for the same user. `record.interactions[j]` must describe shown
  /// position j of `page`.
  void Observe(click::UserId user, const PersonalizedPage& page,
               const click::ClickRecord& record) override;

  /// Retrains the user's RankSVM on all accumulated pairs. Returns the
  /// final epoch's average hinge loss.
  double TrainUser(click::UserId user);

  /// Retrains every registered user, fanning out over
  /// EngineOptions::train_threads. Per-user runs are independent, so the
  /// resulting weights are bit-identical for every thread count. Cold
  /// users are faulted in (training needs every user's state).
  void TrainAllUsers() override;

  /// Applies one day's profile decay to every user (faulting in cold
  /// ones — decay is global state, not working-set state).
  void AdvanceDay() override;

  /// Copy of the user's current profile (faulting it in when cold). A
  /// copy, not a reference: with tiering enabled the state can be
  /// evicted — and freed — the moment the internal pin drops, so no
  /// reference could safely outlive the call. For inspection between
  /// runs, not on the hot path.
  profile::UserProfile user_profile(click::UserId user) const;
  /// Copy of the user's current model snapshot (same rationale as
  /// user_profile; also immune to the next TrainUser/ImportUserState
  /// publishing a successor). For inspection between training rounds.
  ranking::RankSvm user_model(click::UserId user) const;
  /// Copy of the click-entropy state, taken under the same lock Observe
  /// writes with — safe to call concurrently with traffic (the same
  /// copy-out contract as user_profile/user_model; a reference would
  /// hand out state a concurrent Observe mutates).
  profile::ClickEntropyTracker entropy_tracker() const {
    std::lock_guard<std::mutex> lock(entropy_mutex_);
    return entropy_tracker_;
  }
  const EngineOptions& options() const { return options_; }
  /// Adjusts the TrainAllUsers fan-out after construction (benchmarks
  /// sweep thread counts on one warmed engine). Not thread-safe: call
  /// only while no TrainAllUsers is in flight.
  void set_train_threads(int threads) { options_.train_threads = threads; }
  /// Hit/miss/eviction counters of the query-analysis cache.
  CacheStats query_cache_stats() const { return query_cache_.stats(); }
  int registered_user_count() const {
    return static_cast<int>(store_.total_users());
  }
  /// Pairs accumulated for a user so far.
  int training_pair_count(click::UserId user) const;

  /// Replaces a user's learned state with externally supplied profile and
  /// model (e.g. loaded via io::LoadUserState after a restart). The
  /// profile must be bound to the same ontology; the model dimension
  /// must match. Accumulated training pairs are cleared.
  void ImportUserState(click::UserId user, profile::UserProfile profile,
                       ranking::RankSvm model);

  // ---------- Capacity (see DESIGN.md §16) ----------

  /// Turns on hot/cold user tiering: at most ~`resident_users` stay in
  /// memory, the rest spill to segment files under `cold_dir` and fault
  /// back in on their next Serve/Observe, bit-identically. Call once,
  /// before serving traffic. The cold tier is process-transient spill
  /// space — durability is still EnableWal + SaveState.
  Status EnableTiering(const std::string& cold_dir, int64_t resident_users);

  /// Shard layout of the user-state store, for callers (the server)
  /// that align their own per-user locking with store shards.
  int store_shard_count() const { return store_.shard_count(); }
  int StoreShardOf(click::UserId user) const {
    return store_.shard_of(user);
  }
  UserStateStore::Stats store_stats() const { return store_.stats(); }

  // ---------- Durability (see DESIGN.md §12) ----------
  //
  // The restart story: EnableWal() makes every state-mutating event
  // (Observe, TrainUser, TrainAllUsers) append a framed record to an
  // on-disk log; SaveState() writes an atomic, checksummed snapshot of
  // every user and truncates the log; after a crash, a fresh engine
  // calls EnableWal() then RestoreState(), which loads the last good
  // snapshot and replays the log tail — re-serving each logged query
  // and re-observing the logged interactions, which is deterministic,
  // so the recovered engine serves bit-identical rankings and carries
  // bit-identical model weights. GPS traces are not logged: attach them
  // before traffic and snapshot afterwards (the last position is part
  // of the snapshot).

  /// Opens (creating if absent) EngineOptions::wal_shards write-ahead
  /// logs and starts logging mutating events: shard 0 lives at
  /// `wal_path` itself (so a single-WAL log from an older run is picked
  /// up as shard 0), shard k at `wal_path + ".s<k>"`. A log left by a
  /// crashed process is picked up where it ended (torn tail repaired).
  /// All shards share one sequence space. Call once before serving
  /// traffic; not thread-safe against in-flight calls.
  Status EnableWal(const std::string& wal_path);
  bool wal_enabled() const { return !wals_.empty(); }

  /// Paths of the open WAL shard files, in shard order (empty when the
  /// WAL is off). Anything that copies, inspects, or deletes "the WAL"
  /// must cover every path here, not just the one passed to EnableWal.
  std::vector<std::string> wal_paths() const;

  /// Writes an atomic, checksummed, versioned snapshot of every
  /// registered user (profile, model, GPS position, training pairs) to
  /// `snapshot_path`, then truncates the WAL shards — their records are
  /// now folded into the snapshot (a crash between the two is harmless:
  /// the snapshot stores the WAL high-water mark and recovery skips
  /// already-applied records). Cold users are spliced in from their
  /// spill records without faulting them in. Safe to call concurrently
  /// with Serve and TrainAllUsers (models are read via their published
  /// snapshots); the caller must not run Observe/AdvanceDay/
  /// ImportUserState concurrently — the same contract as TrainAllUsers.
  Status SaveState(const std::string& snapshot_path);

  /// Restores from `snapshot_path` (a missing file is an empty snapshot,
  /// supporting crash-before-first-snapshot) and, when WALs are enabled,
  /// replays their tails: records already covered by the snapshot are
  /// skipped by sequence number; the rest are merged across shards into
  /// total sequence order and re-applied. Intended for a freshly
  /// constructed engine; persisted users replace any same-id in-memory
  /// state. Not thread-safe.
  Status RestoreState(const std::string& snapshot_path);

 private:
  /// Fetches (or computes and caches) the analysis of `query`. The
  /// returned pointer stays valid after eviction.
  std::shared_ptr<const QueryAnalysis> AnalyzeQuery(const std::string& query);

  /// Profile weight normalizers, precomputed once per retrain so the
  /// per-query feature refresh skips the profile scan (the profile does
  /// not change while one TrainUser runs).
  struct ProfileNorms {
    double content = 1.0;
    double location = 1.0;
  };

  /// Strategy-masked feature rows of a query's page under the user's
  /// current profile, into `out` (storage reused). `norms`, when
  /// non-null, supplies the profile normalizers instead of scanning.
  void ComputeFeaturesInto(const QueryAnalysis& analysis,
                           const UserState& state, ranking::FeatureBlock& out,
                           const ProfileNorms* norms = nullptr) const;

  /// Per-result session-affinity boosts (backend order) for one page
  /// under the user's current window, scaled by session_boost_weight;
  /// empty when the window is empty. Caller holds state.session_mutex.
  std::vector<double> ComputeSessionBoost(
      const QueryAnalysis& analysis,
      const profile::SessionWindow& window) const;

  /// Pinned handle on a registered user's state (faulting it in from
  /// the cold tier if needed). PWS_CHECK-fails for unknown users.
  UserStateHandle StateOf(click::UserId user) const;

  /// A fresh empty state for `user`: empty profile, prior-seeded model,
  /// empty pair ring. Shared by RegisterUser and the store's
  /// unreadable-cold-record fallback.
  std::shared_ptr<UserState> BuildFreshState(click::UserId user) const;

  /// The WAL shard taking this user's records (null when WAL disabled).
  io::WriteAheadLog* WalForUser(click::UserId user);

  /// Stable, stateless query id (64-bit FNV-1a folded to a non-negative
  /// int). Replaces the old unbounded intern map: ids are identical
  /// across runs, engines, and threads, and cost no memory.
  static int QueryIdOf(const std::string& query);

  const backend::SearchBackend* backend_;
  const geo::LocationOntology* ontology_;
  EngineOptions options_;
  concepts::ContentConceptExtractor content_extractor_;
  concepts::LocationConceptExtractor location_extractor_;
  geo::LocationExtractor query_location_extractor_;
  /// Bounded per-query analysis cache (mutex per shard).
  mutable ShardedLruCache<std::string, std::shared_ptr<const QueryAnalysis>>
      query_cache_;
  /// Sharded user-state table (mutable: Acquire refreshes LRU order and
  /// may fault states in even on logically-const reads).
  mutable UserStateStore store_;
  /// Guards entropy_tracker_ (written by Observe, read by Serve when
  /// entropy_adaptive_alpha is on).
  mutable std::mutex entropy_mutex_;
  profile::ClickEntropyTracker entropy_tracker_;

  /// Durability (empty until EnableWal): one log per WAL shard, all
  /// drawing sequence numbers from wal_seq_ so their records merge into
  /// a total order on recovery. Each WAL serializes its own appends;
  /// the flags below are only flipped in single-threaded phases
  /// (before/after ParallelFor fan-out, inside RestoreState).
  std::vector<std::unique_ptr<io::WriteAheadLog>> wals_;
  std::atomic<uint64_t> wal_seq_{0};
  /// Suppresses WAL appends while RestoreState re-applies logged events.
  bool replaying_ = false;
  /// Suppresses per-user TRAIN records while TrainAllUsers logs one
  /// TRAINALL record for the whole sweep.
  bool in_train_all_ = false;
};

}  // namespace pws::core

#endif  // PWS_CORE_PWS_ENGINE_H_
