#ifndef PWS_CORE_PWS_ENGINE_H_
#define PWS_CORE_PWS_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/search_backend.h"
#include "click/click_log.h"
#include "core/personalizer.h"
#include "concepts/content_extractor.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/gps.h"
#include "geo/location_extractor.h"
#include "geo/location_ontology.h"
#include "profile/entropy.h"
#include "profile/gps_augment.h"
#include "profile/preference_pairs.h"
#include "profile/user_profile.h"
#include "ranking/feature_slab.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "ranking/ranker.h"
#include "util/ring_buffer.h"
#include "util/sharded_lru.h"
#include "util/status.h"

namespace pws::io {
class WriteAheadLog;
}  // namespace pws::io

namespace pws::core {

/// All engine knobs in one place; the defaults are the configuration the
/// reconstructed experiments run with.
struct EngineOptions {
  ranking::Strategy strategy = ranking::Strategy::kCombined;
  concepts::ContentExtractorOptions content_extractor;
  concepts::LocationConceptOptions location_concepts;
  geo::LocationExtractorOptions query_location_extractor;
  profile::ProfileUpdateOptions profile_update;
  profile::PairMiningOptions pair_mining;
  profile::GpsAugmentOptions gps_augment;
  ranking::RankSvmOptions rank_svm;
  /// Fixed location blend weight α (see ranking::RankerOptions).
  double alpha = 0.5;
  /// How the two preference blocks are combined (score blend or
  /// reciprocal-rank fusion).
  ranking::BlendMode blend_mode = ranking::BlendMode::kScoreBlend;
  /// Backend-order prior weight (see ranking::RankerOptions).
  double rank_prior_weight = 1.0;
  /// Prior on the query-location-match feature: matching a city the
  /// query names is relevance, not personalization, so new models boost
  /// it before any training. L2 regularizes toward this prior.
  double query_location_match_prior = 1.0;
  /// Prior on the profile-location-affinity and GPS-proximity features:
  /// lets a cold model act on a GPS-seeded profile before any
  /// clickthrough exists (the mobile cold-start story). Training refines
  /// it.
  double location_affinity_prior = 0.6;
  /// Adapt α per query from click location entropy instead of fixing it.
  bool entropy_adaptive_alpha = false;
  double min_alpha = 0.1;
  double max_alpha = 0.75;
  /// GPS proximity feature distance scale.
  double gps_decay_scale_km = 150.0;
  /// Cap on accumulated training pairs per user (oldest dropped).
  int max_training_pairs_per_user = 20000;
  /// Threads for TrainAllUsers (0 = all hardware threads, 1 = serial).
  /// Per-user training runs are independent, so any thread count yields
  /// bit-identical weights.
  int train_threads = 1;
  /// Total entries the bounded query-analysis cache keeps (LRU eviction;
  /// evicted queries are simply re-analyzed on the next Serve, which is
  /// deterministic, so eviction never changes results — only memory and
  /// latency).
  int query_cache_capacity = 4096;
  /// Shards of the query-analysis cache; each shard has its own mutex,
  /// so concurrent Serve calls rarely contend.
  int query_cache_shards = 16;
};

/// The cached, profile-independent analysis of one query's page: the
/// backend results plus every concept structure derived from them.
/// Produced once per query by PwsEngine::AnalyzeQuery (bounded LRU),
/// shared by shared_ptr — Serve hands the same immutable analysis to
/// every PersonalizedPage of that query instead of deep-copying the page
/// and impression into each one, and LRU eviction never invalidates an
/// analysis a page or a training pass still holds.
struct QueryAnalysis {
  backend::ResultPage page;
  std::vector<concepts::ContentConcept> content_concepts;
  std::shared_ptr<const concepts::ContentOntology> content_ontology;
  concepts::QueryLocationConcepts locations;
  std::vector<geo::LocationId> query_mentioned_locations;
  /// Per-result interned concept ids in backend rank order (flat pool).
  profile::ImpressionConcepts impression;
};

/// What Serve returns: a handle on the query's shared analysis plus the
/// personalized permutation and the user-specific feature rows — the only
/// per-Serve allocations left are the permutation and one flat feature
/// array.
struct PersonalizedPage {
  /// The query's shared analysis (never null for engine/baseline-served
  /// pages; see FromBackendPage).
  std::shared_ptr<const QueryAnalysis> analysis;
  /// Personalized permutation: shown position j holds backend index
  /// order[j].
  std::vector<int> order;
  /// Feature rows in backend order, already strategy-masked.
  ranking::FeatureBlock features;
  /// The α used for this page (fixed or entropy-adaptive).
  double alpha_used = 0.5;

  /// The untouched backend page (results in backend rank order).
  const backend::ResultPage& backend_page() const { return analysis->page; }
  /// Per-result concepts in backend order.
  const profile::ImpressionConcepts& impression() const {
    return analysis->impression;
  }
  /// The query's content ontology, carried with the page so Observe's
  /// similarity spreading never depends on the query still being
  /// resident in the engine's bounded analysis cache. Null for
  /// personalizers that do not extract content concepts (baselines).
  const concepts::ContentOntology* content_ontology() const {
    return analysis->content_ontology.get();
  }

  /// Wraps a bare backend page in a minimal analysis (no concepts) —
  /// the baselines' Serve path.
  static PersonalizedPage FromBackendPage(backend::ResultPage page);

  /// The page in shown (personalized) order, with ranks rewritten —
  /// exactly what the user (or the click simulator) sees.
  backend::ResultPage ShownPage() const;
};

/// The personalized web search engine with location preferences — the
/// paper's primary contribution. It wraps a black-box search backend and
/// runs the loop:
///
///   Serve:    query -> backend top-k -> content/location concept
///             extraction -> profile-aware features -> RankSVM scores ->
///             content/location blended re-rank.
///   Observe:  clickthrough -> dwell grading -> profile update (with
///             ontology spreading) -> preference-pair mining -> entropy
///             bookkeeping.
///   TrainUser: RankSVM SGD over the user's accumulated pairs.
///
/// One RankSVM and one UserProfile per user; concept extraction per query
/// is cached (it is profile-independent) in a bounded, sharded LRU cache
/// (EngineOptions::query_cache_capacity/query_cache_shards).
///
/// Thread-safety: one engine instance may be driven from many threads.
/// Serve, RegisterUser, AttachGpsTrace and the const accessors are safe
/// to call concurrently with each other for any mix of users. Calls
/// that *mutate a user's learned state* (Observe, TrainUser,
/// ImportUserState) are safe concurrently across *different* users;
/// callers must serialize mutating calls targeting the same user, and
/// must not run TrainAllUsers / AdvanceDay concurrently with any
/// mutating call (both iterate every user). TrainAllUsers itself fans
/// out over EngineOptions::train_threads — it is the one sanctioned way
/// to train many users concurrently, and it may run concurrently with
/// Serve/const accessors (training publishes into per-user models only).
class PwsEngine : public Personalizer {
 public:
  /// `search_backend` and `ontology` must outlive the engine.
  PwsEngine(const backend::SearchBackend* search_backend,
            const geo::LocationOntology* ontology, EngineOptions options);
  ~PwsEngine();

  PwsEngine(const PwsEngine&) = delete;
  PwsEngine& operator=(const PwsEngine&) = delete;

  /// Creates an empty profile/model for `user` (idempotent).
  void RegisterUser(click::UserId user) override;

  /// Folds a GPS trace into the user's location profile and remembers
  /// the last fix as the user's current position (mobile scenario).
  void AttachGpsTrace(click::UserId user,
                      const geo::GpsTrace& trace) override;

  /// Serves a personalized page for (user, query).
  PersonalizedPage Serve(click::UserId user,
                         const std::string& query) override;

  /// Feeds back the interactions on a page previously returned by Serve
  /// for the same user. `record.interactions[j]` must describe shown
  /// position j of `page`.
  void Observe(click::UserId user, const PersonalizedPage& page,
               const click::ClickRecord& record) override;

  /// Retrains the user's RankSVM on all accumulated pairs. Returns the
  /// final epoch's average hinge loss.
  double TrainUser(click::UserId user);

  /// Retrains every registered user, fanning out over
  /// EngineOptions::train_threads. Per-user runs are independent, so the
  /// resulting weights are bit-identical for every thread count.
  void TrainAllUsers() override;

  /// Applies one day's profile decay to every user.
  void AdvanceDay() override;

  const profile::UserProfile& user_profile(click::UserId user) const;
  /// Reference to the user's current model snapshot. Valid until the
  /// next TrainUser/ImportUserState for this user publishes a successor;
  /// for inspection between training rounds, not during them.
  const ranking::RankSvm& user_model(click::UserId user) const;
  /// For inspection only; do not call while another thread Observes.
  const profile::ClickEntropyTracker& entropy_tracker() const {
    return entropy_tracker_;
  }
  const EngineOptions& options() const { return options_; }
  /// Adjusts the TrainAllUsers fan-out after construction (benchmarks
  /// sweep thread counts on one warmed engine). Not thread-safe: call
  /// only while no TrainAllUsers is in flight.
  void set_train_threads(int threads) { options_.train_threads = threads; }
  /// Hit/miss/eviction counters of the query-analysis cache.
  CacheStats query_cache_stats() const { return query_cache_.stats(); }
  int registered_user_count() const {
    std::shared_lock<std::shared_mutex> lock(users_mutex_);
    return static_cast<int>(users_.size());
  }
  /// Pairs accumulated for a user so far.
  int training_pair_count(click::UserId user) const;

  /// Replaces a user's learned state with externally supplied profile and
  /// model (e.g. loaded via io::LoadUserState after a restart). The
  /// profile must be bound to the same ontology; the model dimension
  /// must match. Accumulated training pairs are cleared.
  void ImportUserState(click::UserId user, profile::UserProfile profile,
                       ranking::RankSvm model);

  // ---------- Durability (see DESIGN.md §12) ----------
  //
  // The restart story: EnableWal() makes every state-mutating event
  // (Observe, TrainUser, TrainAllUsers) append a framed record to an
  // on-disk log; SaveState() writes an atomic, checksummed snapshot of
  // every user and truncates the log; after a crash, a fresh engine
  // calls EnableWal() then RestoreState(), which loads the last good
  // snapshot and replays the log tail — re-serving each logged query
  // and re-observing the logged interactions, which is deterministic,
  // so the recovered engine serves bit-identical rankings and carries
  // bit-identical model weights. GPS traces are not logged: attach them
  // before traffic and snapshot afterwards (the last position is part
  // of the snapshot).

  /// Opens (creating if absent) the write-ahead log at `wal_path` and
  /// starts logging mutating events to it. A log left by a crashed
  /// process is picked up where it ended (torn tail repaired). Call once
  /// before serving traffic; not thread-safe against in-flight calls.
  Status EnableWal(const std::string& wal_path);
  bool wal_enabled() const { return wal_ != nullptr; }

  /// Writes an atomic, checksummed, versioned snapshot of every
  /// registered user (profile, model, GPS position, training pairs) to
  /// `snapshot_path`, then truncates the WAL — its records are now
  /// folded into the snapshot (a crash between the two is harmless: the
  /// snapshot stores the WAL high-water mark and recovery skips
  /// already-applied records). Safe to call concurrently with Serve and
  /// TrainAllUsers (models are read via their published snapshots); the
  /// caller must not run Observe/AdvanceDay/ImportUserState concurrently
  /// — the same contract as TrainAllUsers.
  Status SaveState(const std::string& snapshot_path);

  /// Restores from `snapshot_path` (a missing file is an empty snapshot,
  /// supporting crash-before-first-snapshot) and, when a WAL is enabled,
  /// replays its tail: records already covered by the snapshot are
  /// skipped by sequence number, the rest are re-applied in order.
  /// Intended for a freshly constructed engine; persisted users replace
  /// any same-id in-memory state. Not thread-safe.
  Status RestoreState(const std::string& snapshot_path);

 private:
  /// A mined preference stored symbolically: indices into the user's
  /// query dictionary and the query's backend page. Features are
  /// recomputed against the *current* profile at training time so train
  /// and serve see the same feature distribution (pairs recorded while
  /// the profile was young would otherwise train the model on all-zero
  /// profile features). 16 bytes per pair — the query string lives once
  /// in UserState::pair_queries, not in every pair.
  struct StoredPair {
    int32_t query_index = -1;
    int32_t preferred_backend_index = -1;
    int32_t other_backend_index = -1;
    double weight = 1.0;
  };

  struct UserState {
    std::unique_ptr<profile::UserProfile> profile;
    /// The user's current model, published as an immutable snapshot:
    /// Serve copies the pointer under model_mutex and scores against the
    /// snapshot while TrainUser trains a successor off to the side and
    /// swaps it in. This pointer swap is the entire synchronization
    /// between training and serving — it is what makes TrainAllUsers
    /// safe to run concurrently with Serve.
    std::shared_ptr<const ranking::RankSvm> model;
    mutable std::mutex model_mutex;

    std::shared_ptr<const ranking::RankSvm> ModelSnapshot() const {
      std::lock_guard<std::mutex> lock(model_mutex);
      return model;
    }
    void PublishModel(std::shared_ptr<const ranking::RankSvm> next) {
      std::lock_guard<std::mutex> lock(model_mutex);
      model = std::move(next);
    }

    /// Bounded pair store: pushing past the cap overwrites the oldest
    /// pair in O(1) (the old vector erase-from-front was O(n) per
    /// Observe once full).
    std::unique_ptr<RingBuffer<StoredPair>> pairs;
    /// Distinct queries pairs refer to; StoredPair::query_index points
    /// here. Entries whose pairs have all aged out stay (bounded by the
    /// user's distinct-query count) — they cost one string, not one
    /// feature refresh.
    std::vector<std::string> pair_queries;
    std::unordered_map<std::string, int32_t> pair_query_index;
    /// Training-time feature row arena, reused across training rounds.
    ranking::FeatureSlab slab;
    std::optional<geo::GeoPoint> position;
  };

  /// Fetches (or computes and caches) the analysis of `query`. The
  /// returned pointer stays valid after eviction.
  std::shared_ptr<const QueryAnalysis> AnalyzeQuery(const std::string& query);

  /// Profile weight normalizers, precomputed once per retrain so the
  /// per-query feature refresh skips the profile scan (the profile does
  /// not change while one TrainUser runs).
  struct ProfileNorms {
    double content = 1.0;
    double location = 1.0;
  };

  /// Strategy-masked feature rows of a query's page under the user's
  /// current profile, into `out` (storage reused). `norms`, when
  /// non-null, supplies the profile normalizers instead of scanning.
  void ComputeFeaturesInto(const QueryAnalysis& analysis,
                           const UserState& state, ranking::FeatureBlock& out,
                           const ProfileNorms* norms = nullptr) const;
  UserState& StateOf(click::UserId user);
  const UserState& StateOf(click::UserId user) const;

  /// Stable, stateless query id (64-bit FNV-1a folded to a non-negative
  /// int). Replaces the old unbounded intern map: ids are identical
  /// across runs, engines, and threads, and cost no memory.
  static int QueryIdOf(const std::string& query);

  const backend::SearchBackend* backend_;
  const geo::LocationOntology* ontology_;
  EngineOptions options_;
  concepts::ContentConceptExtractor content_extractor_;
  concepts::LocationConceptExtractor location_extractor_;
  geo::LocationExtractor query_location_extractor_;
  /// Bounded per-query analysis cache (mutex per shard).
  mutable ShardedLruCache<std::string, std::shared_ptr<const QueryAnalysis>>
      query_cache_;
  /// Guards the users_ map structure (insertion/lookup). The per-user
  /// payloads behind the unique_ptrs follow the class-level contract.
  mutable std::shared_mutex users_mutex_;
  std::unordered_map<click::UserId, UserState> users_;
  /// Guards entropy_tracker_ (written by Observe, read by Serve when
  /// entropy_adaptive_alpha is on).
  mutable std::mutex entropy_mutex_;
  profile::ClickEntropyTracker entropy_tracker_;

  /// Durability (null until EnableWal). The WAL serializes its own
  /// appends; these flags are only flipped in single-threaded phases
  /// (before/after ParallelFor fan-out, inside RestoreState).
  std::unique_ptr<io::WriteAheadLog> wal_;
  /// Suppresses WAL appends while RestoreState re-applies logged events.
  bool replaying_ = false;
  /// Suppresses per-user TRAIN records while TrainAllUsers logs one
  /// TRAINALL record for the whole sweep.
  bool in_train_all_ = false;
};

}  // namespace pws::core

#endif  // PWS_CORE_PWS_ENGINE_H_
