#ifndef PWS_CORE_PWS_ENGINE_H_
#define PWS_CORE_PWS_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/search_backend.h"
#include "click/click_log.h"
#include "core/personalizer.h"
#include "concepts/content_extractor.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/gps.h"
#include "geo/location_extractor.h"
#include "geo/location_ontology.h"
#include "profile/entropy.h"
#include "profile/gps_augment.h"
#include "profile/preference_pairs.h"
#include "profile/user_profile.h"
#include "ranking/features.h"
#include "ranking/rank_svm.h"
#include "ranking/ranker.h"
#include "util/sharded_lru.h"

namespace pws::core {

/// All engine knobs in one place; the defaults are the configuration the
/// reconstructed experiments run with.
struct EngineOptions {
  ranking::Strategy strategy = ranking::Strategy::kCombined;
  concepts::ContentExtractorOptions content_extractor;
  concepts::LocationConceptOptions location_concepts;
  geo::LocationExtractorOptions query_location_extractor;
  profile::ProfileUpdateOptions profile_update;
  profile::PairMiningOptions pair_mining;
  profile::GpsAugmentOptions gps_augment;
  ranking::RankSvmOptions rank_svm;
  /// Fixed location blend weight α (see ranking::RankerOptions).
  double alpha = 0.5;
  /// How the two preference blocks are combined (score blend or
  /// reciprocal-rank fusion).
  ranking::BlendMode blend_mode = ranking::BlendMode::kScoreBlend;
  /// Backend-order prior weight (see ranking::RankerOptions).
  double rank_prior_weight = 1.0;
  /// Prior on the query-location-match feature: matching a city the
  /// query names is relevance, not personalization, so new models boost
  /// it before any training. L2 regularizes toward this prior.
  double query_location_match_prior = 1.0;
  /// Prior on the profile-location-affinity and GPS-proximity features:
  /// lets a cold model act on a GPS-seeded profile before any
  /// clickthrough exists (the mobile cold-start story). Training refines
  /// it.
  double location_affinity_prior = 0.6;
  /// Adapt α per query from click location entropy instead of fixing it.
  bool entropy_adaptive_alpha = false;
  double min_alpha = 0.1;
  double max_alpha = 0.75;
  /// GPS proximity feature distance scale.
  double gps_decay_scale_km = 150.0;
  /// Cap on accumulated training pairs per user (oldest dropped).
  int max_training_pairs_per_user = 20000;
  /// Total entries the bounded query-analysis cache keeps (LRU eviction;
  /// evicted queries are simply re-analyzed on the next Serve, which is
  /// deterministic, so eviction never changes results — only memory and
  /// latency).
  int query_cache_capacity = 4096;
  /// Shards of the query-analysis cache; each shard has its own mutex,
  /// so concurrent Serve calls rarely contend.
  int query_cache_shards = 16;
};

/// What Serve returns: the backend page plus the personalized
/// permutation and everything Observe needs to learn from feedback.
struct PersonalizedPage {
  /// The untouched backend page (results in backend rank order).
  backend::ResultPage backend_page;
  /// Personalized permutation: shown position j holds backend index
  /// order[j].
  std::vector<int> order;
  /// Feature vectors in backend order, already strategy-masked.
  ranking::FeatureMatrix features;
  /// Per-result concepts in backend order.
  profile::ImpressionConcepts impression;
  /// The query's content ontology, carried with the page so Observe's
  /// similarity spreading never depends on the query still being
  /// resident in the engine's bounded analysis cache. Null for
  /// personalizers that do not extract content concepts (baselines).
  std::shared_ptr<const concepts::ContentOntology> content_ontology;
  /// The α used for this page (fixed or entropy-adaptive).
  double alpha_used = 0.5;

  /// The page in shown (personalized) order, with ranks rewritten —
  /// exactly what the user (or the click simulator) sees.
  backend::ResultPage ShownPage() const;
};

/// The personalized web search engine with location preferences — the
/// paper's primary contribution. It wraps a black-box search backend and
/// runs the loop:
///
///   Serve:    query -> backend top-k -> content/location concept
///             extraction -> profile-aware features -> RankSVM scores ->
///             content/location blended re-rank.
///   Observe:  clickthrough -> dwell grading -> profile update (with
///             ontology spreading) -> preference-pair mining -> entropy
///             bookkeeping.
///   TrainUser: RankSVM SGD over the user's accumulated pairs.
///
/// One RankSVM and one UserProfile per user; concept extraction per query
/// is cached (it is profile-independent) in a bounded, sharded LRU cache
/// (EngineOptions::query_cache_capacity/query_cache_shards).
///
/// Thread-safety: one engine instance may be driven from many threads.
/// Serve, RegisterUser, AttachGpsTrace and the const accessors are safe
/// to call concurrently with each other for any mix of users. Calls
/// that *mutate a user's learned state* (Observe, TrainUser,
/// ImportUserState) are safe concurrently across *different* users;
/// callers must serialize mutating calls targeting the same user, and
/// must not run TrainAllUsers / AdvanceDay concurrently with any
/// mutating call (both iterate every user).
class PwsEngine : public Personalizer {
 public:
  /// `search_backend` and `ontology` must outlive the engine.
  PwsEngine(const backend::SearchBackend* search_backend,
            const geo::LocationOntology* ontology, EngineOptions options);

  PwsEngine(const PwsEngine&) = delete;
  PwsEngine& operator=(const PwsEngine&) = delete;

  /// Creates an empty profile/model for `user` (idempotent).
  void RegisterUser(click::UserId user) override;

  /// Folds a GPS trace into the user's location profile and remembers
  /// the last fix as the user's current position (mobile scenario).
  void AttachGpsTrace(click::UserId user,
                      const geo::GpsTrace& trace) override;

  /// Serves a personalized page for (user, query).
  PersonalizedPage Serve(click::UserId user,
                         const std::string& query) override;

  /// Feeds back the interactions on a page previously returned by Serve
  /// for the same user. `record.interactions[j]` must describe shown
  /// position j of `page`.
  void Observe(click::UserId user, const PersonalizedPage& page,
               const click::ClickRecord& record) override;

  /// Retrains the user's RankSVM on all accumulated pairs. Returns the
  /// final epoch's average hinge loss.
  double TrainUser(click::UserId user);

  /// Retrains every registered user.
  void TrainAllUsers() override;

  /// Applies one day's profile decay to every user.
  void AdvanceDay() override;

  const profile::UserProfile& user_profile(click::UserId user) const;
  const ranking::RankSvm& user_model(click::UserId user) const;
  /// For inspection only; do not call while another thread Observes.
  const profile::ClickEntropyTracker& entropy_tracker() const {
    return entropy_tracker_;
  }
  const EngineOptions& options() const { return options_; }
  /// Hit/miss/eviction counters of the query-analysis cache.
  CacheStats query_cache_stats() const { return query_cache_.stats(); }
  int registered_user_count() const {
    std::shared_lock<std::shared_mutex> lock(users_mutex_);
    return static_cast<int>(users_.size());
  }
  /// Pairs accumulated for a user so far.
  int training_pair_count(click::UserId user) const;

  /// Replaces a user's learned state with externally supplied profile and
  /// model (e.g. loaded via io::LoadUserState after a restart). The
  /// profile must be bound to the same ontology; the model dimension
  /// must match. Accumulated training pairs are cleared.
  void ImportUserState(click::UserId user, profile::UserProfile profile,
                       ranking::RankSvm model);

 private:
  /// Cached, profile-independent analysis of one query's page. Shared
  /// out of the cache by shared_ptr so LRU eviction never invalidates an
  /// analysis a Serve or TrainUser call is still using, and so the
  /// content ontology can ride along on PersonalizedPage.
  struct QueryAnalysis {
    backend::ResultPage page;
    std::vector<concepts::ContentConcept> content_concepts;
    std::shared_ptr<const concepts::ContentOntology> content_ontology;
    concepts::QueryLocationConcepts locations;
    std::vector<geo::LocationId> query_mentioned_locations;
    profile::ImpressionConcepts impression;
  };

  /// A mined preference stored symbolically (query + backend indices).
  /// Features are recomputed against the *current* profile at training
  /// time so train and serve see the same feature distribution (pairs
  /// recorded while the profile was young would otherwise train the
  /// model on all-zero profile features).
  struct StoredPair {
    std::string query;
    int preferred_backend_index = -1;
    int other_backend_index = -1;
    double weight = 1.0;
  };

  struct UserState {
    std::unique_ptr<profile::UserProfile> profile;
    std::unique_ptr<ranking::RankSvm> model;
    std::vector<StoredPair> pairs;
    std::optional<geo::GeoPoint> position;
  };

  /// Fetches (or computes and caches) the analysis of `query`. The
  /// returned pointer stays valid after eviction.
  std::shared_ptr<const QueryAnalysis> AnalyzeQuery(const std::string& query);

  /// Strategy-masked feature matrix of a query's page under the user's
  /// current profile.
  ranking::FeatureMatrix ComputeFeatures(const QueryAnalysis& analysis,
                                         const UserState& state) const;
  UserState& StateOf(click::UserId user);
  const UserState& StateOf(click::UserId user) const;

  /// Stable, stateless query id (64-bit FNV-1a folded to a non-negative
  /// int). Replaces the old unbounded intern map: ids are identical
  /// across runs, engines, and threads, and cost no memory.
  static int QueryIdOf(const std::string& query);

  const backend::SearchBackend* backend_;
  const geo::LocationOntology* ontology_;
  EngineOptions options_;
  concepts::ContentConceptExtractor content_extractor_;
  concepts::LocationConceptExtractor location_extractor_;
  geo::LocationExtractor query_location_extractor_;
  /// Bounded per-query analysis cache (mutex per shard).
  mutable ShardedLruCache<std::string, std::shared_ptr<const QueryAnalysis>>
      query_cache_;
  /// Guards the users_ map structure (insertion/lookup). The per-user
  /// payloads behind the unique_ptrs follow the class-level contract.
  mutable std::shared_mutex users_mutex_;
  std::unordered_map<click::UserId, UserState> users_;
  /// Guards entropy_tracker_ (written by Observe, read by Serve when
  /// entropy_adaptive_alpha is on).
  mutable std::mutex entropy_mutex_;
  profile::ClickEntropyTracker entropy_tracker_;
};

}  // namespace pws::core

#endif  // PWS_CORE_PWS_ENGINE_H_
