#include "corpus/topic_model.h"

#include <iterator>

#include "util/check.h"

namespace pws::corpus {
namespace {

// Curated catalogue of search verticals. Core terms are deliberately
// plain English so example output is readable; location_sensitive marks
// verticals whose queries usually carry a "where" aspect.
struct CatalogueEntry {
  const char* name;
  bool location_sensitive;
  std::vector<const char*> core_terms;
};

const std::vector<CatalogueEntry>& Catalogue() {
  static const auto& entries = *new std::vector<CatalogueEntry>{
      {"hotel", true,
       {"hotel", "booking", "rooms", "suite", "resort", "stay", "lodge",
        "accommodation"}},
      {"programming", false,
       {"programming", "compiler", "debugging", "software", "algorithm",
        "tutorial", "framework", "library"}},
      {"restaurant", true,
       {"restaurant", "menu", "dinner", "cuisine", "chef", "reservation",
        "bistro", "seafood"}},
      {"camera", false,
       {"camera", "lens", "photography", "aperture", "tripod", "mirrorless",
        "sensor", "zoom"}},
      {"museum", true,
       {"museum", "exhibit", "gallery", "collection", "art", "history",
        "tickets", "tour"}},
      {"recipe", false,
       {"recipe", "baking", "ingredients", "oven", "dough", "dessert",
        "cooking", "sauce"}},
      {"ski", true,
       {"ski", "snowboard", "slopes", "lift", "powder", "alpine", "resort",
        "trail"}},
      {"movie", false,
       {"movie", "film", "trailer", "director", "cast", "review", "cinema",
        "streaming"}},
      {"beach", true,
       {"beach", "surf", "sand", "coast", "swimming", "snorkel", "bay",
        "waves"}},
      {"finance", false,
       {"finance", "investment", "stocks", "portfolio", "dividend", "broker",
        "savings", "etf"}},
      {"flight", true,
       {"flight", "airline", "airport", "fares", "departure", "nonstop",
        "airways", "boarding"}},
      {"fitness", false,
       {"fitness", "workout", "gym", "yoga", "cardio", "strength", "routine",
        "training"}},
      {"concert", true,
       {"concert", "tickets", "venue", "band", "festival", "stage", "live",
        "orchestra"}},
      {"gardening", false,
       {"gardening", "seeds", "compost", "pruning", "perennial", "soil",
        "greenhouse", "bloom"}},
      {"apartment", true,
       {"apartment", "rent", "lease", "studio", "bedroom", "landlord",
        "listing", "tenants"}},
      {"chess", false,
       {"chess", "opening", "endgame", "gambit", "tactics", "grandmaster",
        "tournament", "puzzle"}},
      {"doctor", true,
       {"doctor", "clinic", "appointment", "physician", "pediatric",
        "dentist", "hospital", "specialist"}},
      {"coffee", true,
       {"coffee", "espresso", "cafe", "roastery", "latte", "barista", "brew",
        "beans"}},
      {"hiking", true,
       {"hiking", "trail", "summit", "trek", "backpack", "wilderness",
        "outdoor", "ridge"}},
      {"car_rental", true,
       {"car", "rental", "hire", "sedan", "suv", "mileage", "pickup",
        "dropoff"}},
      {"university", true,
       {"university", "campus", "admission", "degree", "faculty", "tuition",
        "college", "research"}},
      {"football", true,
       {"football", "match", "league", "stadium", "score", "team", "season",
        "playoffs"}},
      {"weather", true,
       {"weather", "forecast", "temperature", "rain", "snow", "humidity",
        "storm", "sunny"}},
      {"shopping", true,
       {"shopping", "mall", "outlet", "discount", "boutique", "store",
        "deals", "brands"}},
  };
  return entries;
}

const char* const kFillerOnsets[] = {"bra", "cle", "dru", "fla", "gri", "klo",
                                     "ple", "sna", "tru", "vle", "wra", "zem"};
const char* const kFillerNuclei[] = {"ba", "de", "ki", "lo", "mu", "ne",
                                     "pa", "ri", "so", "tu"};
const char* const kFillerCodas[] = {"x", "n", "sk", "m", "th", "p", "ld", "rg"};

std::string InventWord(Random& rng) {
  std::string w = kFillerOnsets[rng.UniformUint64(std::size(kFillerOnsets))];
  w += kFillerNuclei[rng.UniformUint64(std::size(kFillerNuclei))];
  w += kFillerCodas[rng.UniformUint64(std::size(kFillerCodas))];
  return w;
}

const std::vector<std::string>& BackgroundWords() {
  static const auto& words = *new std::vector<std::string>{
      "guide",   "best",    "top",     "review",  "online", "free",
      "near",    "open",    "hours",   "price",   "cheap",  "official",
      "website", "service", "local",   "popular", "new",    "find",
      "compare", "info",    "details", "list",    "page",   "directory",
  };
  return words;
}

}  // namespace

TopicModel TopicModel::Create(int num_topics, int filler_terms_per_topic,
                              Random& rng) {
  PWS_CHECK_GT(num_topics, 0);
  PWS_CHECK_GE(filler_terms_per_topic, 0);
  const auto& catalogue = Catalogue();
  PWS_CHECK_LE(num_topics, static_cast<int>(catalogue.size()))
      << "topic catalogue has only " << catalogue.size() << " verticals";
  TopicModel model;
  for (int t = 0; t < num_topics; ++t) {
    TopicSpec spec;
    spec.name = catalogue[t].name;
    spec.location_sensitive = catalogue[t].location_sensitive;
    for (const char* term : catalogue[t].core_terms) {
      spec.core_terms.emplace_back(term);
    }
    for (int f = 0; f < filler_terms_per_topic; ++f) {
      // Prefix with the topic index so filler vocabularies never collide
      // across topics.
      spec.filler_terms.push_back(spec.name.substr(0, 2) + InventWord(rng));
    }
    model.topics_.push_back(std::move(spec));
  }
  model.background_terms_ = BackgroundWords();
  return model;
}

const TopicSpec& TopicModel::topic(int index) const {
  PWS_CHECK_GE(index, 0);
  PWS_CHECK_LT(index, num_topics());
  return topics_[index];
}

const std::string& TopicModel::SampleTerm(int topic, Random& rng) const {
  const TopicSpec& spec = this->topic(topic);
  if (spec.filler_terms.empty() || rng.Bernoulli(core_prob_)) {
    return spec.core_terms[rng.Zipf(
        static_cast<int>(spec.core_terms.size()), 1.0)];
  }
  return spec.filler_terms[rng.Zipf(
      static_cast<int>(spec.filler_terms.size()), 1.0)];
}

const std::string& TopicModel::SampleCoreTerm(int topic, Random& rng) const {
  const TopicSpec& spec = this->topic(topic);
  return spec.core_terms[rng.Zipf(static_cast<int>(spec.core_terms.size()),
                                  1.0)];
}

const std::string& TopicModel::SampleBackgroundTerm(Random& rng) const {
  return background_terms_[rng.Zipf(
      static_cast<int>(background_terms_.size()), 0.8)];
}

int TopicModel::FindTopic(const std::string& name) const {
  for (int t = 0; t < num_topics(); ++t) {
    if (topics_[t].name == name) return t;
  }
  return -1;
}

}  // namespace pws::corpus
