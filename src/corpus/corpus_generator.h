#ifndef PWS_CORPUS_CORPUS_GENERATOR_H_
#define PWS_CORPUS_CORPUS_GENERATOR_H_

#include <functional>

#include "corpus/corpus.h"
#include "corpus/topic_model.h"
#include "geo/location_ontology.h"
#include "util/random.h"

namespace pws::corpus {

/// Knobs for the synthetic web corpus (the stand-in for the paper's real
/// web corpus; see DESIGN.md §2).
struct CorpusGeneratorOptions {
  int num_documents = 20000;
  /// Mean body length in tokens (Gaussian, stddev = mean/4, floor 30).
  int mean_body_tokens = 120;
  /// Probability that a document is about a specific city.
  double location_doc_fraction = 0.55;
  /// How many times a located document mentions its city (min..max).
  int min_location_mentions = 2;
  int max_location_mentions = 4;
  /// Probability of additionally mentioning the city's region / country.
  double region_mention_probability = 0.35;
  double country_mention_probability = 0.2;
  /// Probability of a stray mention of an unrelated city (noise).
  double noise_location_probability = 0.08;
  /// Weight of the primary topic in a document's mixture.
  double primary_topic_weight = 0.75;
  /// Fraction of body tokens drawn from the background vocabulary.
  double background_token_fraction = 0.25;
};

/// Generates a corpus over `topics` and `ontology`. Cities are chosen
/// with probability proportional to log(1+population), so big cities have
/// more documents (as on the real web). Deterministic given the RNG seed.
class CorpusGenerator {
 public:
  /// `topics` and `ontology` must outlive the generator.
  CorpusGenerator(const TopicModel* topics,
                  const geo::LocationOntology* ontology,
                  CorpusGeneratorOptions options);

  /// Generates the full corpus (streams into the returned Corpus; peak
  /// memory is the corpus itself plus one document under assembly).
  Corpus Generate(Random& rng) const;

  /// Streams the same document sequence Generate would produce into
  /// `sink`, one document at a time, without materializing a Corpus.
  /// This is the bounded-memory path for very large `num_documents`:
  /// the sink decides what to keep (counts, sizes, an index shard)
  /// while the generator itself holds O(1) documents.
  void GenerateStream(Random& rng,
                      const std::function<void(Document&&)>& sink) const;

  /// Generates a single document with the given id (exposed for tests).
  Document GenerateDocument(DocId id, Random& rng) const;

 private:
  const TopicModel* topics_;
  const geo::LocationOntology* ontology_;
  CorpusGeneratorOptions options_;
  std::vector<geo::LocationId> cities_;
  std::vector<double> city_weights_;
};

}  // namespace pws::corpus

#endif  // PWS_CORPUS_CORPUS_GENERATOR_H_
