#include "corpus/corpus.h"

#include "util/check.h"

namespace pws::corpus {

void Corpus::Add(Document doc) {
  PWS_CHECK_EQ(doc.id, size()) << "documents must be added in id order";
  documents_.push_back(std::move(doc));
}

const Document& Corpus::doc(DocId id) const {
  PWS_CHECK_GE(id, 0);
  PWS_CHECK_LT(id, size());
  return documents_[id];
}

int Corpus::CountByTopic(int topic) const {
  int count = 0;
  for (const auto& d : documents_) {
    if (d.primary_topic_truth == topic) ++count;
  }
  return count;
}

int Corpus::CountByLocationSubtree(const geo::LocationOntology& ontology,
                                   geo::LocationId ancestor) const {
  int count = 0;
  for (const auto& d : documents_) {
    if (d.primary_location_truth == geo::kInvalidLocation) continue;
    if (ontology.IsAncestorOf(ancestor, d.primary_location_truth)) ++count;
  }
  return count;
}

int Corpus::CountLocationFree() const {
  int count = 0;
  for (const auto& d : documents_) {
    if (d.primary_location_truth == geo::kInvalidLocation) ++count;
  }
  return count;
}

}  // namespace pws::corpus
