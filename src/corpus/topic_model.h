#ifndef PWS_CORPUS_TOPIC_MODEL_H_
#define PWS_CORPUS_TOPIC_MODEL_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace pws::corpus {

/// One generative topic: a name (used to build query strings), a set of
/// core terms that identify the topic, and filler terms that pad document
/// bodies. Terms are sampled with Zipfian frequencies so snippet
/// co-occurrence statistics look like real text.
struct TopicSpec {
  std::string name;
  /// High-salience terms; queries and titles draw from these.
  std::vector<std::string> core_terms;
  /// Lower-salience topical vocabulary.
  std::vector<std::string> filler_terms;
  /// True when the topic is location-sensitive (hotels yes, compilers no).
  bool location_sensitive = false;
};

/// A fixed catalogue of topics used by the corpus generator, the query
/// generator, and the simulated users. The first `num_topics` entries of a
/// curated catalogue of web-search verticals are used; each topic then
/// receives `filler_terms_per_topic` invented words unique to it.
class TopicModel {
 public:
  /// Builds a model with `num_topics` topics (capped at the catalogue
  /// size, currently 24) and the given filler vocabulary per topic.
  static TopicModel Create(int num_topics, int filler_terms_per_topic,
                           Random& rng);

  int num_topics() const { return static_cast<int>(topics_.size()); }
  const TopicSpec& topic(int index) const;

  /// Samples a term from the topic: core terms with probability
  /// `core_prob`, Zipf-ranked within each pool.
  const std::string& SampleTerm(int topic, Random& rng) const;

  /// Samples a core term only (used for queries and titles).
  const std::string& SampleCoreTerm(int topic, Random& rng) const;

  /// Samples a background (non-topical) word shared by all topics.
  const std::string& SampleBackgroundTerm(Random& rng) const;

  /// Index of the topic with the given name, or -1.
  int FindTopic(const std::string& name) const;

 private:
  TopicModel() = default;

  std::vector<TopicSpec> topics_;
  std::vector<std::string> background_terms_;
  double core_prob_ = 0.45;
};

}  // namespace pws::corpus

#endif  // PWS_CORPUS_TOPIC_MODEL_H_
