#ifndef PWS_CORPUS_CORPUS_H_
#define PWS_CORPUS_CORPUS_H_

#include <vector>

#include "corpus/document.h"
#include "util/status.h"

namespace pws::corpus {

/// An in-memory document collection with ground-truth accessors. The
/// backend indexes it; the evaluation harness reads the truth fields.
class Corpus {
 public:
  Corpus() = default;

  /// Appends a document; its id must equal the current size.
  void Add(Document doc);

  /// Pre-sizes the backing store (one growth for a known corpus size).
  void Reserve(int num_documents) { documents_.reserve(num_documents); }

  int size() const { return static_cast<int>(documents_.size()); }
  const Document& doc(DocId id) const;
  const std::vector<Document>& documents() const { return documents_; }

  /// Number of documents whose primary topic is `topic`.
  int CountByTopic(int topic) const;

  /// Number of documents whose primary location is under `ancestor`
  /// (inclusive) in the given ontology.
  int CountByLocationSubtree(const geo::LocationOntology& ontology,
                             geo::LocationId ancestor) const;

  /// Documents with no planted location at all.
  int CountLocationFree() const;

 private:
  std::vector<Document> documents_;
};

}  // namespace pws::corpus

#endif  // PWS_CORPUS_CORPUS_H_
