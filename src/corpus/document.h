#ifndef PWS_CORPUS_DOCUMENT_H_
#define PWS_CORPUS_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/location_ontology.h"

namespace pws::corpus {

/// Dense document id within a Corpus.
using DocId = int32_t;
inline constexpr DocId kInvalidDoc = -1;

/// One synthetic web document. The `*_truth` fields record the generative
/// ground truth (which topic/location the document is really about); the
/// retrieval and personalization pipeline never reads them — they exist so
/// the evaluation harness can compute exact relevance.
struct Document {
  DocId id = kInvalidDoc;
  std::string url;
  std::string domain;
  std::string title;
  std::string body;

  /// Ground truth: mixture over topics (sums to 1).
  std::vector<double> topic_mixture_truth;
  /// Ground truth: argmax of the mixture.
  int primary_topic_truth = -1;
  /// Ground truth: the city this document is about, or kInvalidLocation
  /// for location-free documents.
  geo::LocationId primary_location_truth = geo::kInvalidLocation;
  /// Ground truth: every location planted in the body (city plus
  /// occasional region/country mentions).
  std::vector<geo::LocationId> planted_locations_truth;
};

}  // namespace pws::corpus

#endif  // PWS_CORPUS_DOCUMENT_H_
