#include "corpus/corpus_generator.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/string_util.h"

namespace pws::corpus {

CorpusGenerator::CorpusGenerator(const TopicModel* topics,
                                 const geo::LocationOntology* ontology,
                                 CorpusGeneratorOptions options)
    : topics_(topics), ontology_(ontology), options_(options) {
  PWS_CHECK(topics_ != nullptr);
  PWS_CHECK(ontology_ != nullptr);
  PWS_CHECK_GT(options_.num_documents, 0);
  PWS_CHECK_GE(options_.min_location_mentions, 1);
  PWS_CHECK_GE(options_.max_location_mentions,
               options_.min_location_mentions);
  cities_ = ontology_->CitiesUnder(ontology_->root());
  PWS_CHECK(!cities_.empty()) << "ontology has no cities";
  city_weights_.reserve(cities_.size());
  // sqrt(population): big cities have many more pages about them, as on
  // the real web, without a handful of megacities dominating the corpus.
  // The concentration gives location personalization its headroom (users
  // cluster in the same big cities, see GenerateUserPopulation).
  for (geo::LocationId city : cities_) {
    city_weights_.push_back(std::sqrt(ontology_->node(city).population + 1000.0));
  }
}

Document CorpusGenerator::GenerateDocument(DocId id, Random& rng) const {
  Document doc;
  doc.id = id;

  // Topic mixture: one primary topic, one secondary.
  const int num_topics = topics_->num_topics();
  const int primary = static_cast<int>(rng.UniformUint64(num_topics));
  int secondary = static_cast<int>(rng.UniformUint64(num_topics));
  doc.topic_mixture_truth.assign(num_topics, 0.0);
  if (secondary == primary) {
    doc.topic_mixture_truth[primary] = 1.0;
  } else {
    doc.topic_mixture_truth[primary] = options_.primary_topic_weight;
    doc.topic_mixture_truth[secondary] = 1.0 - options_.primary_topic_weight;
  }
  doc.primary_topic_truth = primary;

  // Location: location-sensitive topics are about a city more often.
  const bool topic_is_geo = topics_->topic(primary).location_sensitive;
  const double p_loc =
      topic_is_geo ? options_.location_doc_fraction
                   : options_.location_doc_fraction * 0.25;
  if (rng.Bernoulli(p_loc)) {
    doc.primary_location_truth = cities_[rng.Categorical(city_weights_)];
  }

  // Body assembly.
  const int length = std::max(
      30, static_cast<int>(rng.Gaussian(options_.mean_body_tokens,
                                        options_.mean_body_tokens / 4.0)));
  std::vector<std::string> tokens;
  tokens.reserve(length + 16);
  for (int i = 0; i < length; ++i) {
    if (rng.Bernoulli(options_.background_token_fraction)) {
      tokens.push_back(topics_->SampleBackgroundTerm(rng));
    } else {
      const int topic = rng.Bernoulli(doc.topic_mixture_truth[primary])
                            ? primary
                            : secondary;
      tokens.push_back(topics_->SampleTerm(topic, rng));
    }
  }

  // Plant location mentions at random offsets.
  auto plant = [&](geo::LocationId loc, int copies) {
    doc.planted_locations_truth.push_back(loc);
    const std::string& name = ontology_->node(loc).name;
    for (int c = 0; c < copies; ++c) {
      const size_t pos = rng.UniformUint64(tokens.size() + 1);
      tokens.insert(tokens.begin() + pos, name);
    }
  };
  if (doc.primary_location_truth != geo::kInvalidLocation) {
    const int mentions = static_cast<int>(
        rng.UniformInt(options_.min_location_mentions,
                       options_.max_location_mentions));
    plant(doc.primary_location_truth, mentions);
    const auto& city_node = ontology_->node(doc.primary_location_truth);
    if (rng.Bernoulli(options_.region_mention_probability)) {
      plant(city_node.parent, 1);
    }
    if (rng.Bernoulli(options_.country_mention_probability)) {
      plant(ontology_->node(city_node.parent).parent, 1);
    }
  }
  if (rng.Bernoulli(options_.noise_location_probability)) {
    plant(cities_[rng.Categorical(city_weights_)], 1);
  }
  doc.body = StrJoin(tokens, " ");

  // Title: a couple of core terms plus the city name when located.
  std::vector<std::string> title_tokens;
  title_tokens.push_back(topics_->SampleCoreTerm(primary, rng));
  title_tokens.push_back(topics_->SampleCoreTerm(primary, rng));
  if (doc.primary_location_truth != geo::kInvalidLocation) {
    title_tokens.push_back(ontology_->node(doc.primary_location_truth).name);
  }
  doc.title = StrJoin(title_tokens, " ");

  // URL / domain derived from the title.
  std::string slug;
  for (char c : doc.title) {
    slug.push_back(c == ' ' ? '-' : c);
  }
  doc.domain = "www." + topics_->topic(primary).name + "-site-" +
               std::to_string(id % 997) + ".example";
  doc.url = "http://" + doc.domain + "/" + slug + "/" + std::to_string(id);
  return doc;
}

Corpus CorpusGenerator::Generate(Random& rng) const {
  Corpus corpus;
  corpus.Reserve(options_.num_documents);
  GenerateStream(rng, [&corpus](Document&& doc) { corpus.Add(std::move(doc)); });
  return corpus;
}

void CorpusGenerator::GenerateStream(
    Random& rng, const std::function<void(Document&&)>& sink) const {
  for (DocId id = 0; id < options_.num_documents; ++id) {
    sink(GenerateDocument(id, rng));
  }
}

}  // namespace pws::corpus
