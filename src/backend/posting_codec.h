#ifndef PWS_BACKEND_POSTING_CODEC_H_
#define PWS_BACKEND_POSTING_CODEC_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"

namespace pws::backend {

/// One posting: a document and the term's frequency in it.
struct Posting {
  corpus::DocId doc = corpus::kInvalidDoc;
  int32_t term_frequency = 0;
};

/// Postings are stored in fixed-size blocks of up to this many documents.
/// 128 keeps a decoded block (ids + tfs) inside 1KB of stack and makes
/// per-block metadata overhead ~0.2 bytes/posting.
inline constexpr int kPostingBlockSize = 128;

/// Decode reads the packed bit stream in unaligned 64-bit words, so it
/// may touch up to 7 bytes past the end of a block's encoded payload
/// (the values themselves never include those bits). Every encoded
/// region passed to DecodePostingBlock* must therefore be followed by
/// at least this many readable bytes. The index pads its arena; tests
/// and tools that decode from their own buffers must append the pad
/// after encoding.
inline constexpr size_t kDecodeOverreadPad = 8;

/// Stored term frequencies are clamped here at encode time. BM25's tf
/// saturation makes contributions beyond this indistinguishable, and the
/// clamp bounds tf_bits so a single pathological document cannot blow up
/// a block's width.
inline constexpr uint32_t kMaxStoredTermFrequency = (1u << 24) - 1;

/// Per-block encoding, chosen per block by a cheap size heuristic.
enum class BlockFormat : uint8_t {
  /// Fixed-width bit-packing: all doc gaps at `doc_bits` each (LSB-first
  /// little-endian bit stream), byte-aligned, then all (tf-1) values at
  /// `tf_bits` each. Decode is a branch-free shift/mask loop.
  kPacked = 0,
  /// LEB128 varints: all doc gaps, then all (tf-1) values. Wins when one
  /// outlier gap would force a wide fixed width on the whole block.
  kVarint = 1,
};

/// Metadata for one encoded block: everything skip/seek and block-max
/// pruning need without touching the encoded bytes.
struct BlockMeta {
  /// Doc id of the last posting in the block (skip/seek key).
  corpus::DocId last_doc = 0;
  /// Byte offset of the block inside the term's encoded region.
  uint32_t offset = 0;
  /// Upper bound on the BM25 contribution of any posting in this block,
  /// computed at build time against the index's precomputed IDF and
  /// doc-norm tables. A true (per-posting exact) maximum, so block-max
  /// pruning is safe for exact top-k.
  double block_max = 0.0;
  /// Postings in the block (1..kPostingBlockSize).
  uint16_t count = 0;
  uint8_t format = 0;  // BlockFormat
  uint8_t doc_bits = 0;
  uint8_t tf_bits = 0;
};

/// Encodes `count` postings (sorted by strictly increasing doc, all ids
/// >= `base`) as one block appended to `*out`. Doc ids are delta-encoded
/// against `base` (gap_0 = doc_0 - base, gap_i = doc_i - doc_{i-1} - 1);
/// term frequencies are stored as tf-1, clamped to
/// kMaxStoredTermFrequency. Returns the block's metadata with
/// `offset` relative to the start of `*out` as of this call's append and
/// `block_max` left 0 (the index fills it in once its scoring tables
/// exist). `count` must be in [1, kPostingBlockSize].
BlockMeta EncodePostingBlock(const Posting* postings, int count,
                             corpus::DocId base, std::vector<uint8_t>* out);

/// Decodes the block at `data` (the term region base plus meta.offset is
/// resolved by the caller) into `docs[0..meta.count)` and
/// `tfs[0..meta.count)`. `base` must be the same value passed at encode
/// time: 0 for a term's first block, previous block's last_doc + 1
/// afterwards. Buffers must hold kPostingBlockSize entries, and `data`
/// must be followed by kDecodeOverreadPad readable bytes.
void DecodePostingBlock(const BlockMeta& meta, const uint8_t* data,
                        corpus::DocId base, uint32_t* docs, uint32_t* tfs);

/// Same as DecodePostingBlock but leaves term frequencies in stored form
/// (tf - 1, clamped). The block-max merge keeps stored tfs so they index
/// its per-tf bound tables directly and the +1 folds into the batched
/// scoring pass; everything else wants real tfs and should call
/// DecodePostingBlock.
void DecodePostingBlockStoredTf(const BlockMeta& meta, const uint8_t* data,
                                corpus::DocId base, uint32_t* docs,
                                uint32_t* tfs);

/// A lightweight read-only view of one term's block-encoded posting
/// list: the encoded bytes plus the block metadata array. This is what
/// InvertedIndex::PostingsFor returns — callers iterate with a
/// PostingCursor (or materialize with Materialize for tests/tools)
/// instead of touching a std::vector<Posting>.
class PostingListView {
 public:
  PostingListView() = default;
  PostingListView(const uint8_t* data, const BlockMeta* blocks,
                  uint32_t num_blocks, uint32_t doc_count, double term_max)
      : data_(data),
        blocks_(blocks),
        num_blocks_(num_blocks),
        doc_count_(doc_count),
        term_max_(term_max) {}

  /// Number of postings (the term's document frequency).
  uint32_t size() const { return doc_count_; }
  bool empty() const { return doc_count_ == 0; }
  uint32_t num_blocks() const { return num_blocks_; }
  const BlockMeta& block(uint32_t i) const { return blocks_[i]; }
  /// Encoded bytes of block i (term region base + block offset).
  const uint8_t* block_data(uint32_t i) const {
    return data_ + blocks_[i].offset;
  }
  /// Decode base for block i (see DecodePostingBlock).
  corpus::DocId block_base(uint32_t i) const {
    return i == 0 ? 0 : blocks_[i - 1].last_doc + 1;
  }
  /// Max BM25 contribution across all blocks (the WAND term bound).
  double term_max() const { return term_max_; }
  corpus::DocId last_doc() const {
    return num_blocks_ == 0 ? corpus::kInvalidDoc
                            : blocks_[num_blocks_ - 1].last_doc;
  }

  /// First block whose last_doc >= target, starting the scan at
  /// `from_block` (callers pass their current block so seeks only move
  /// forward). Returns num_blocks() when every block ends before target.
  uint32_t FindBlock(corpus::DocId target, uint32_t from_block) const;

  /// Decodes the whole list (tests, stats tools, reference scorers).
  std::vector<Posting> Materialize() const;

 private:
  const uint8_t* data_ = nullptr;
  const BlockMeta* blocks_ = nullptr;
  uint32_t num_blocks_ = 0;
  uint32_t doc_count_ = 0;
  double term_max_ = 0.0;
};

/// Forward-only cursor over a PostingListView: sequential Next(),
/// skip-capable SeekTo() (NextGEQ), and shallow block-level accessors
/// for Block-Max WAND. One decoded block (ids + tfs) lives inline, so a
/// cursor is ~1KB and safely stack- or scratch-allocated; it never
/// allocates.
///
/// Lazy decode: SeekTo and a Next() that crosses a block boundary move
/// the cursor *shallowly* — they position the block via metadata but do
/// not decode it. In that state doc() returns a lower bound on the real
/// current doc (the seek target or the block's decode base); the real
/// posting becomes visible after EnsureLoaded(). This is what lets
/// block-max pruning skip whole blocks without ever paying their decode
/// cost: WAND sorts and pivots on lower bounds, and only decodes the
/// blocks it actually evaluates.
///
/// Invariants outside AtEnd(): loaded() => positioned on a real posting
/// (doc()/tf() exact); !loaded() => current block's last_doc >= doc(),
/// so EnsureLoaded() always lands inside the current block. tf() and
/// Next() require loaded().
class PostingCursor {
 public:
  PostingCursor() = default;
  explicit PostingCursor(const PostingListView& view) { Reset(view); }

  /// (Re)binds the cursor to `view` positioned (loaded) on the first
  /// posting.
  void Reset(const PostingListView& view);

  bool AtEnd() const { return block_ >= num_blocks_; }
  bool loaded() const { return loaded_; }
  /// Exact current doc when loaded(); otherwise a lower bound on it.
  corpus::DocId doc() const {
    return loaded_ ? static_cast<corpus::DocId>(docs_[pos_]) : bound_;
  }
  /// Requires loaded().
  uint32_t tf() const { return tfs_[pos_]; }

  /// Advances past the current posting. Requires loaded(); leaves the
  /// cursor shallow when it crosses into the next block.
  void Next();

  /// Moves to the first posting with doc >= target (no-op when already
  /// there). Shallow: skipped-over blocks are never decoded, and the
  /// destination block is not decoded either until EnsureLoaded().
  void SeekTo(corpus::DocId target);

  /// Decodes the current block and positions on the first posting
  /// >= doc() (no-op when already loaded or AtEnd()).
  void EnsureLoaded();

  /// Block max of the block containing the first posting >= target
  /// (shallow: reads metadata only, moves nothing). Sets *block_last to
  /// that block's last_doc. Returns false when the list ends before
  /// target.
  bool ShallowBound(corpus::DocId target, double* block_max,
                    corpus::DocId* block_last) const;

  /// Blocks decoded by this cursor so far (observability).
  uint64_t blocks_decoded() const { return blocks_decoded_; }

 private:
  void DecodeBlock(uint32_t block);

  PostingListView view_;
  uint32_t num_blocks_ = 0;
  uint32_t block_ = 0;  // current block; >= num_blocks_ means AtEnd
  bool loaded_ = false;
  corpus::DocId bound_ = 0;  // valid when !loaded_: lower bound on doc()
  int pos_ = 0;              // position inside the decoded block
  int count_ = 0;            // postings in the decoded block
  uint64_t blocks_decoded_ = 0;
  uint32_t docs_[kPostingBlockSize];
  uint32_t tfs_[kPostingBlockSize];
};

}  // namespace pws::backend

#endif  // PWS_BACKEND_POSTING_CODEC_H_
