#ifndef PWS_BACKEND_SEARCH_BACKEND_H_
#define PWS_BACKEND_SEARCH_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "backend/inverted_index.h"
#include "backend/snippet.h"
#include "corpus/corpus.h"

namespace pws::backend {

/// One entry of a result page, as the personalization layer sees it:
/// rank, score, and display text. `doc` links back to the corpus so the
/// evaluation harness can consult ground truth; the personalizer itself
/// only reads the text fields.
struct SearchResult {
  corpus::DocId doc = corpus::kInvalidDoc;
  int rank = 0;  // 0-based position in the backend ranking.
  double score = 0.0;
  std::string url;
  std::string title;
  std::string snippet;
};

/// A full result page for one query.
struct ResultPage {
  std::string query;
  std::vector<SearchResult> results;
};

/// Configuration of the simulated commercial backend.
struct SearchBackendOptions {
  Bm25Params bm25;
  SnippetOptions snippet;
  int page_size = 10;
};

/// The "commercial search engine" substitute: BM25 retrieval over the
/// synthetic corpus plus query-biased snippets. The personalized engine
/// treats this component as a black box, exactly as the paper treats the
/// backend it re-ranks.
///
/// The hot path is term-id based: Analyze tokenizes and interns the
/// query exactly once, and Search(const AnalyzedQuery&, ...) reuses that
/// analysis for retrieval (precomputed BM25 tables), result scores (the
/// accumulated retrieval scores — no per-result rescoring), and
/// snippets. The string overloads analyze internally and delegate.
class SearchBackend {
 public:
  /// `corpus` must outlive the backend. Builds the index (and its BM25
  /// scoring tables for options.bm25) eagerly.
  SearchBackend(const corpus::Corpus* corpus, SearchBackendOptions options);

  /// Tokenizes and interns `query` against the index vocabulary.
  AnalyzedQuery Analyze(const std::string& query) const;

  /// Runs `query` and returns up to options.page_size results.
  ResultPage Search(const std::string& query) const;

  /// Same, with an explicit result count (clamped to >= 1).
  ResultPage Search(const std::string& query, int k) const;

  /// Runs a pre-analyzed query (page_size results).
  ResultPage Search(const AnalyzedQuery& analyzed) const;

  /// Runs a pre-analyzed query with an explicit result count.
  ResultPage Search(const AnalyzedQuery& analyzed, int k) const;

  const InvertedIndex& index() const { return index_; }
  const corpus::Corpus& corpus() const { return *corpus_; }
  int page_size() const { return options_.page_size; }

 private:
  const corpus::Corpus* corpus_;
  SearchBackendOptions options_;
  InvertedIndex index_;
};

}  // namespace pws::backend

#endif  // PWS_BACKEND_SEARCH_BACKEND_H_
