#include "backend/snippet.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace pws::backend {
namespace {

/// Per-thread scratch so steady-state snippet generation reuses its
/// buffers across calls.
struct SnippetScratch {
  std::vector<std::string> tokens;
  /// tokens[i] -> index into the distinct query-token list, or -1.
  std::vector<int> query_match;
  /// Distinct query tokens (pointers into the caller's vector).
  std::vector<const std::string*> distinct_query;
  /// Occurrences of each distinct query token inside the active window.
  std::vector<int> window_counts;
};

SnippetScratch& LocalScratch() {
  thread_local SnippetScratch scratch;
  return scratch;
}

std::string JoinTokens(const std::vector<std::string>& tokens, size_t begin,
                       size_t end) {
  size_t total = 0;
  for (size_t i = begin; i < end; ++i) total += tokens[i].size() + 1;
  std::string out;
  if (total > 0) out.reserve(total - 1);
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

}  // namespace

std::string MakeSnippet(const std::string& body,
                        const std::vector<std::string>& query_tokens,
                        const SnippetOptions& options) {
  SnippetScratch& scratch = LocalScratch();
  std::vector<std::string>& tokens = scratch.tokens;
  tokens.clear();
  text::TokenizeAppend(body, text::TokenizerOptions{}, &tokens);
  if (tokens.empty()) return "";
  const int window = std::max(1, options.window_tokens);
  const int n = static_cast<int>(tokens.size());
  if (n <= window) return JoinTokens(tokens, 0, tokens.size());

  // Distinct query tokens; queries hold a handful, so linear dedup wins.
  scratch.distinct_query.clear();
  for (const std::string& q : query_tokens) {
    const auto same = [&q](const std::string* p) { return *p == q; };
    if (std::none_of(scratch.distinct_query.begin(),
                     scratch.distinct_query.end(), same)) {
      scratch.distinct_query.push_back(&q);
    }
  }

  // Map each body token to its query token (or -1) once, then slide a
  // window keeping per-query-token occurrence counts; `hits` counts the
  // distinct query tokens present.
  scratch.query_match.assign(n, -1);
  for (int i = 0; i < n; ++i) {
    for (size_t q = 0; q < scratch.distinct_query.size(); ++q) {
      if (tokens[i] == *scratch.distinct_query[q]) {
        scratch.query_match[i] = static_cast<int>(q);
        break;
      }
    }
  }
  scratch.window_counts.assign(scratch.distinct_query.size(), 0);
  int hits = 0;
  auto add = [&](int i) {
    const int q = scratch.query_match[i];
    if (q >= 0 && scratch.window_counts[q]++ == 0) ++hits;
  };
  auto remove = [&](int i) {
    const int q = scratch.query_match[i];
    if (q >= 0 && --scratch.window_counts[q] == 0) --hits;
  };
  for (int i = 0; i < window; ++i) add(i);
  int best_start = 0;
  int best_hits = hits;
  for (int start = 1; start + window <= n; ++start) {
    remove(start - 1);
    add(start + window - 1);
    if (hits > best_hits) {  // Strict: earlier windows win ties.
      best_hits = hits;
      best_start = start;
    }
  }
  return JoinTokens(tokens, best_start, best_start + window);
}

}  // namespace pws::backend
