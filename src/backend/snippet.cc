#include "backend/snippet.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace pws::backend {

std::string MakeSnippet(const std::string& body,
                        const std::vector<std::string>& query_tokens,
                        const SnippetOptions& options) {
  const std::vector<std::string> tokens = text::Tokenize(body);
  if (tokens.empty()) return "";
  const int window = std::max(1, options.window_tokens);
  const int n = static_cast<int>(tokens.size());
  if (n <= window) return StrJoin(tokens, " ");

  std::unordered_set<std::string> query_set(query_tokens.begin(),
                                            query_tokens.end());
  // Score each window start by the number of distinct query tokens inside.
  int best_start = 0;
  int best_hits = -1;
  for (int start = 0; start + window <= n; ++start) {
    std::unordered_set<std::string> seen;
    int hits = 0;
    for (int i = start; i < start + window; ++i) {
      if (query_set.count(tokens[i]) > 0 && seen.insert(tokens[i]).second) {
        ++hits;
      }
    }
    if (hits > best_hits) {
      best_hits = hits;
      best_start = start;
    }
  }
  std::vector<std::string> slice(tokens.begin() + best_start,
                                 tokens.begin() + best_start + window);
  return StrJoin(slice, " ");
}

}  // namespace pws::backend
