#include "backend/posting_codec.h"

#include <algorithm>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/check.h"

namespace pws::backend {
namespace {

/// Bits needed to represent `value` (0 -> 0 bits).
int BitsFor(uint32_t value) {
  int bits = 0;
  while (value != 0) {
    ++bits;
    value >>= 1;
  }
  return bits;
}

int VarintLength(uint32_t value) {
  int len = 1;
  while (value >= 0x80) {
    ++len;
    value >>= 7;
  }
  return len;
}

void AppendVarint(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

const uint8_t* ReadVarint(const uint8_t* p, uint32_t* value) {
  uint32_t result = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = *p++;
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *value = result;
  return p;
}

/// Appends `count` values bit-packed at `bits` each, LSB-first into a
/// little-endian stream, padded to a byte boundary. `bits` == 0 appends
/// nothing (all values are 0).
void AppendPacked(const uint32_t* values, int count, int bits,
                  std::vector<uint8_t>* out) {
  if (bits == 0) return;
  uint64_t buffer = 0;
  int buffered = 0;
  for (int i = 0; i < count; ++i) {
    buffer |= static_cast<uint64_t>(values[i]) << buffered;
    buffered += bits;
    while (buffered >= 8) {
      out->push_back(static_cast<uint8_t>(buffer));
      buffer >>= 8;
      buffered -= 8;
    }
  }
  if (buffered > 0) out->push_back(static_cast<uint8_t>(buffer));
}

/// Reads `count` values bit-packed at `bits` each; returns the pointer
/// past the (byte-aligned) packed run. Each step loads one unaligned
/// 64-bit word at the current bit offset and slices 4 values out of it
/// when bits <= 14 (4*14 + 7 alignment bits fit in 64), 2 when
/// bits <= 28, else 1 — this is why decode may read up to 7 bytes past
/// the payload (kDecodeOverreadPad).
const uint8_t* ReadPacked(const uint8_t* p, int count, int bits,
                          uint32_t* values) {
  if (bits == 0) {
    std::fill(values, values + count, 0u);
    return p;
  }
  const uint64_t mask =
      bits >= 32 ? 0xFFFFFFFFull : ((1ull << bits) - 1);
  size_t bit = 0;
  int i = 0;
  if (bits <= 14) {
    for (; i + 3 < count; i += 4) {
      uint64_t w;
      std::memcpy(&w, p + (bit >> 3), 8);
      w >>= (bit & 7);
      values[i] = static_cast<uint32_t>(w & mask);
      values[i + 1] = static_cast<uint32_t>((w >> bits) & mask);
      values[i + 2] = static_cast<uint32_t>((w >> (2 * bits)) & mask);
      values[i + 3] = static_cast<uint32_t>((w >> (3 * bits)) & mask);
      bit += static_cast<size_t>(bits) * 4;
    }
  } else if (bits <= 28) {
    for (; i + 1 < count; i += 2) {
      uint64_t w;
      std::memcpy(&w, p + (bit >> 3), 8);
      w >>= (bit & 7);
      values[i] = static_cast<uint32_t>(w & mask);
      values[i + 1] = static_cast<uint32_t>((w >> bits) & mask);
      bit += static_cast<size_t>(bits) * 2;
    }
  }
  for (; i < count; ++i) {
    uint64_t w;
    std::memcpy(&w, p + (bit >> 3), 8);
    values[i] = static_cast<uint32_t>((w >> (bit & 7)) & mask);
    bit += bits;
  }
  return p + (static_cast<size_t>(count) * bits + 7) / 8;
}

int PackedBytes(int count, int bits) { return (count * bits + 7) / 8; }

/// In-place gap -> doc-id transform: docs[i] holds gap_i on entry
/// (gap_0 = doc_0 - base, gap_i = doc_i - doc_{i-1} - 1) and the
/// absolute doc id on exit. The running sum adds gap + 1 per element,
/// seeded at base - 1.
void PrefixSumDocs(uint32_t* docs, int count, uint32_t base) {
  int i = 0;
#if defined(__SSE2__)
  const __m128i ones = _mm_set1_epi32(1);
  __m128i prev = _mm_set1_epi32(static_cast<int>(base - 1));
  for (; i + 3 < count; i += 4) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<__m128i*>(docs + i));
    v = _mm_add_epi32(v, ones);
    v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
    v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
    v = _mm_add_epi32(v, prev);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(docs + i), v);
    prev = _mm_shuffle_epi32(v, 0xFF);
  }
#endif
  uint32_t running = i > 0 ? docs[i - 1] : base - 1;
  for (; i < count; ++i) {
    running += docs[i] + 1;
    docs[i] = running;
  }
}

}  // namespace

BlockMeta EncodePostingBlock(const Posting* postings, int count,
                             corpus::DocId base, std::vector<uint8_t>* out) {
  PWS_CHECK_GT(count, 0);
  PWS_CHECK_LE(count, kPostingBlockSize);
  PWS_CHECK_GE(postings[0].doc, base);

  // Delta-encode doc ids and shift tfs to tf-1 (clamped).
  uint32_t gaps[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  corpus::DocId prev = base - 1;
  for (int i = 0; i < count; ++i) {
    PWS_CHECK_GT(postings[i].doc, prev);
    gaps[i] = static_cast<uint32_t>(postings[i].doc - prev - 1);
    prev = postings[i].doc;
    const uint32_t tf = postings[i].term_frequency <= 0
                            ? 1u
                            : static_cast<uint32_t>(postings[i].term_frequency);
    tfs[i] = std::min(tf, kMaxStoredTermFrequency) - 1;
  }

  // Width heuristic: fixed width costs max-bits for every value; varint
  // costs per-value length. Compute both exactly (both are O(count) and
  // cheap) and keep the smaller, preferring packed on ties because its
  // decode loop is branch-free.
  uint32_t max_gap = 0, max_tf = 0;
  int varint_bytes = 0;
  for (int i = 0; i < count; ++i) {
    max_gap = std::max(max_gap, gaps[i]);
    max_tf = std::max(max_tf, tfs[i]);
    varint_bytes += VarintLength(gaps[i]) + VarintLength(tfs[i]);
  }
  const int doc_bits = BitsFor(max_gap);
  const int tf_bits = BitsFor(max_tf);
  const int packed_bytes =
      PackedBytes(count, doc_bits) + PackedBytes(count, tf_bits);

  BlockMeta meta;
  meta.last_doc = prev;
  meta.offset = static_cast<uint32_t>(out->size());
  meta.count = static_cast<uint16_t>(count);
  if (packed_bytes <= varint_bytes) {
    meta.format = static_cast<uint8_t>(BlockFormat::kPacked);
    meta.doc_bits = static_cast<uint8_t>(doc_bits);
    meta.tf_bits = static_cast<uint8_t>(tf_bits);
    AppendPacked(gaps, count, doc_bits, out);
    AppendPacked(tfs, count, tf_bits, out);
  } else {
    meta.format = static_cast<uint8_t>(BlockFormat::kVarint);
    for (int i = 0; i < count; ++i) AppendVarint(gaps[i], out);
    for (int i = 0; i < count; ++i) AppendVarint(tfs[i], out);
  }
  return meta;
}

void DecodePostingBlockStoredTf(const BlockMeta& meta, const uint8_t* data,
                                corpus::DocId base, uint32_t* docs,
                                uint32_t* tfs) {
  const int count = meta.count;
  if (meta.format == static_cast<uint8_t>(BlockFormat::kPacked)) {
    const uint8_t* p = ReadPacked(data, count, meta.doc_bits, docs);
    ReadPacked(p, count, meta.tf_bits, tfs);
  } else {
    const uint8_t* p = data;
    for (int i = 0; i < count; ++i) p = ReadVarint(p, &docs[i]);
    for (int i = 0; i < count; ++i) p = ReadVarint(p, &tfs[i]);
  }
  PrefixSumDocs(docs, count, static_cast<uint32_t>(base));
}

void DecodePostingBlock(const BlockMeta& meta, const uint8_t* data,
                        corpus::DocId base, uint32_t* docs, uint32_t* tfs) {
  DecodePostingBlockStoredTf(meta, data, base, docs, tfs);
  for (int i = 0; i < meta.count; ++i) tfs[i] += 1;
}

uint32_t PostingListView::FindBlock(corpus::DocId target,
                                    uint32_t from_block) const {
  // Galloping would help for huge lists; queries here hold a handful of
  // terms and seeks move monotonically, so a lower_bound over the
  // remaining metadata is already cheap.
  const BlockMeta* begin = blocks_ + from_block;
  const BlockMeta* end = blocks_ + num_blocks_;
  const BlockMeta* it = std::lower_bound(
      begin, end, target,
      [](const BlockMeta& b, corpus::DocId t) { return b.last_doc < t; });
  return static_cast<uint32_t>(it - blocks_);
}

std::vector<Posting> PostingListView::Materialize() const {
  std::vector<Posting> out;
  out.reserve(doc_count_);
  uint32_t docs[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  for (uint32_t b = 0; b < num_blocks_; ++b) {
    DecodePostingBlock(blocks_[b], block_data(b), block_base(b), docs, tfs);
    for (int i = 0; i < blocks_[b].count; ++i) {
      out.push_back({static_cast<corpus::DocId>(docs[i]),
                     static_cast<int32_t>(tfs[i])});
    }
  }
  return out;
}

void PostingCursor::Reset(const PostingListView& view) {
  view_ = view;
  num_blocks_ = view.num_blocks();
  block_ = 0;
  loaded_ = false;
  bound_ = 0;
  pos_ = 0;
  count_ = 0;
  blocks_decoded_ = 0;
  if (num_blocks_ > 0) DecodeBlock(0);
}

void PostingCursor::DecodeBlock(uint32_t block) {
  const BlockMeta& meta = view_.block(block);
  DecodePostingBlock(meta, view_.block_data(block), view_.block_base(block),
                     docs_, tfs_);
  count_ = meta.count;
  pos_ = 0;
  loaded_ = true;
  ++blocks_decoded_;
}

void PostingCursor::Next() {
  if (++pos_ < count_) return;
  // Crossed a block boundary: go shallow. The next block's decode base
  // (previous last_doc + 1) is a valid lower bound on its first doc.
  loaded_ = false;
  if (++block_ >= num_blocks_) return;  // AtEnd
  bound_ = view_.block_base(block_);
}

void PostingCursor::SeekTo(corpus::DocId target) {
  if (AtEnd() || doc() >= target) return;
  if (view_.block(block_).last_doc < target) {
    // Shallow-skip whole blocks via last_doc metadata; the destination
    // block stays encoded until EnsureLoaded().
    block_ = view_.FindBlock(target, block_ + 1);
    loaded_ = false;
    if (AtEnd()) return;
    bound_ = std::max(target, view_.block_base(block_));
  } else if (loaded_) {
    // Within the decoded block: linear scan (blocks are small and the
    // common in-block skip distance is short). last_doc >= target
    // guarantees a hit before the end of the block.
    while (pos_ < count_ && static_cast<corpus::DocId>(docs_[pos_]) < target) {
      ++pos_;
    }
  } else {
    // Same still-encoded block: just raise the bound.
    bound_ = target;
  }
}

void PostingCursor::EnsureLoaded() {
  if (loaded_ || AtEnd()) return;
  const corpus::DocId target = bound_;
  DecodeBlock(block_);
  // The shallow invariant (block last_doc >= bound_) guarantees a hit.
  while (pos_ < count_ && static_cast<corpus::DocId>(docs_[pos_]) < target) {
    ++pos_;
  }
}

bool PostingCursor::ShallowBound(corpus::DocId target, double* block_max,
                                 corpus::DocId* block_last) const {
  if (AtEnd()) return false;
  uint32_t b = block_;
  if (view_.block(b).last_doc < target) {
    b = view_.FindBlock(target, b + 1);
    if (b >= num_blocks_) return false;
  }
  *block_max = view_.block(b).block_max;
  *block_last = view_.block(b).last_doc;
  return true;
}

}  // namespace pws::backend
