#include "backend/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::backend {
namespace {

// Title tokens are indexed twice: a cheap stand-in for field weighting.
constexpr int kTitleBoost = 2;

}  // namespace

InvertedIndex::InvertedIndex(const corpus::Corpus* corpus) : corpus_(corpus) {
  PWS_CHECK(corpus_ != nullptr);
  num_documents_ = corpus_->size();
  doc_lengths_.resize(num_documents_, 0);
  int64_t total_length = 0;
  for (corpus::DocId id = 0; id < num_documents_; ++id) {
    const corpus::Document& doc = corpus_->doc(id);
    std::unordered_map<text::TermId, int> counts;
    const auto title_tokens = text::Tokenize(doc.title);
    const auto body_tokens = text::Tokenize(doc.body);
    for (const auto& tok : title_tokens) {
      counts[vocabulary_.GetOrAdd(tok)] += kTitleBoost;
    }
    for (const auto& tok : body_tokens) {
      counts[vocabulary_.GetOrAdd(tok)] += 1;
    }
    int length = 0;
    for (const auto& [term, count] : counts) {
      if (term >= static_cast<text::TermId>(postings_.size())) {
        postings_.resize(term + 1);
      }
      postings_[term].push_back({id, count});
      length += count;
    }
    doc_lengths_[id] = length;
    total_length += length;
  }
  avg_doc_length_ =
      num_documents_ > 0
          ? static_cast<double>(total_length) / num_documents_
          : 0.0;
}

int InvertedIndex::DocumentLength(corpus::DocId doc) const {
  PWS_CHECK_GE(doc, 0);
  PWS_CHECK_LT(doc, num_documents_);
  return doc_lengths_[doc];
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    const std::string& term) const {
  const text::TermId id = vocabulary_.Get(term);
  if (id == text::kUnknownTerm) return empty_postings_;
  return postings_[id];
}

double InvertedIndex::Idf(const std::vector<Posting>& postings) const {
  const double df = static_cast<double>(postings.size());
  return std::log(1.0 + (num_documents_ - df + 0.5) / (df + 0.5));
}

double InvertedIndex::Score(const std::vector<std::string>& query_tokens,
                            corpus::DocId doc, const Bm25Params& params) const {
  double score = 0.0;
  for (const auto& token : query_tokens) {
    const auto& postings = PostingsFor(token);
    if (postings.empty()) continue;
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), doc,
        [](const Posting& p, corpus::DocId d) { return p.doc < d; });
    if (it == postings.end() || it->doc != doc) continue;
    const double tf = it->term_frequency;
    const double norm = params.k1 * (1.0 - params.b +
                                     params.b * DocumentLength(doc) /
                                         avg_doc_length_);
    score += Idf(postings) * tf * (params.k1 + 1.0) / (tf + norm);
  }
  return score;
}

std::vector<corpus::DocId> InvertedIndex::TopK(
    const std::vector<std::string>& query_tokens, int k,
    const Bm25Params& params) const {
  PWS_CHECK_GT(k, 0);
  // Accumulate scores document-at-a-time over the union of postings.
  std::unordered_map<corpus::DocId, double> scores;
  for (const auto& token : query_tokens) {
    const auto& postings = PostingsFor(token);
    if (postings.empty()) continue;
    const double idf = Idf(postings);
    for (const Posting& p : postings) {
      const double tf = p.term_frequency;
      const double norm = params.k1 * (1.0 - params.b +
                                       params.b * DocumentLength(p.doc) /
                                           avg_doc_length_);
      scores[p.doc] += idf * tf * (params.k1 + 1.0) / (tf + norm);
    }
  }
  std::vector<std::pair<corpus::DocId, double>> ranked(scores.begin(),
                                                       scores.end());
  const auto better = [](const std::pair<corpus::DocId, double>& a,
                         const std::pair<corpus::DocId, double>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (static_cast<int>(ranked.size()) > k) {
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      better);
    ranked.resize(k);
  } else {
    std::sort(ranked.begin(), ranked.end(), better);
  }
  std::vector<corpus::DocId> out;
  out.reserve(ranked.size());
  for (const auto& [doc, score] : ranked) out.push_back(doc);
  return out;
}

}  // namespace pws::backend
