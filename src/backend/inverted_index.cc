#include "backend/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_map>

#include "obs/metrics.h"
#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::backend {
namespace {

// Title tokens are indexed twice: a cheap stand-in for field weighting.
constexpr int kTitleBoost = 2;

// TopKScored uses the block-max path only when the heap threshold has a
// chance to prune: k * kBlockMaxSelectivity <= candidate postings.
// Larger k relative to the candidate pool means nearly every candidate
// lands in the heap anyway, and the exhaustive batched loop is cheaper
// than cursor bookkeeping.
constexpr uint64_t kBlockMaxSelectivity = 8;

/// Inflates an upper-bound sum so it dominates every floating-point
/// evaluation order of the true (smaller) sum. Per-term contributions
/// are exact upper bounds; only the *summation* of bounds vs actuals
/// can disagree by rounding, which n-term summation bounds by a
/// (1+n*eps)^2 factor. 1e-12 relative covers n up to ~2000 terms, far
/// beyond any query, and costs no measurable pruning power. Pruning
/// with the inflated bound is therefore safe for exact top-k; see
/// DESIGN.md §15.
double SafeUpperBound(double bound_sum) { return bound_sum * (1.0 + 1e-12); }

/// Per-thread retrieval scratch. The flat score array is epoch-stamped:
/// scores[doc] is live only when epochs[doc] == epoch, so consecutive
/// TopK calls (even against *different* indexes sharing the thread)
/// never pay a O(num_documents) clear and never read stale sums.
struct TopKScratch {
  std::vector<double> scores;
  std::vector<uint32_t> epochs;
  uint32_t epoch = 0;
  std::vector<corpus::DocId> touched;
  std::vector<text::TermId> distinct_terms;
  std::vector<ScoredDoc> heap;

  /// Starts a fresh accumulation covering at least `num_documents` docs.
  void Begin(int num_documents) {
    if (static_cast<int>(scores.size()) < num_documents) {
      scores.resize(num_documents, 0.0);
      epochs.resize(num_documents, 0);
    }
    ++epoch;
    if (epoch == 0) {  // uint32 wraparound: stale stamps could collide.
      std::fill(epochs.begin(), epochs.end(), 0u);
      epoch = 1;
    }
    touched.clear();
  }
};

TopKScratch& LocalScratch() {
  thread_local TopKScratch scratch;
  return scratch;
}

/// The deterministic retrieval order: higher score first, doc id
/// ascending on exact score ties.
bool Better(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

/// Bounded top-k insertion: a size-k heap whose root is the *worst*
/// retained hit under the deterministic order.
void HeapOffer(std::vector<ScoredDoc>& heap, size_t cap,
               const ScoredDoc& candidate) {
  if (heap.size() < cap) {
    heap.push_back(candidate);
    std::push_heap(heap.begin(), heap.end(), Better);
  } else if (Better(candidate, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), Better);
    heap.back() = candidate;
    std::push_heap(heap.begin(), heap.end(), Better);
  }
}

std::vector<ScoredDoc> HeapToSorted(std::vector<ScoredDoc>& heap) {
  std::vector<ScoredDoc> out(heap.begin(), heap.end());
  std::sort(out.begin(), out.end(), Better);
  return out;
}

void BumpBlockCounters(const RetrievalStats& stats) {
  static obs::Counter* scored =
      obs::MetricsRegistry::Global().GetCounter("backend.search.blocks_scored");
  static obs::Counter* skipped = obs::MetricsRegistry::Global().GetCounter(
      "backend.search.blocks_skipped");
  if (stats.blocks_scored > 0) scored->Increment(stats.blocks_scored);
  if (stats.blocks_skipped > 0) skipped->Increment(stats.blocks_skipped);
}

// ---------------------------------------------------------------------
// Block-max segment merge (TopKScoredBlockMax). See DESIGN.md §15.
//
// The doc space is walked left to right in *segments*: [m, seg_end]
// where seg_end is the smallest current-block last_doc across the
// active lists, so within a segment no list crosses a block boundary.
// Per segment the block maxima prune three ways — the whole segment
// when the summed maxima cannot beat the heap threshold, a lone
// non-essential list, and (inside the kernels) individual candidates
// via per-tf contribution bounds — and the survivors are merged with
// batched kernels chosen by how many lists overlap the segment.
// ---------------------------------------------------------------------

/// Stored-tf ceiling for the per-term contribution bound tables: tfs at
/// or above the cap fall back to the term's global max. BM25 saturates
/// in tf, so one table entry per small tf captures nearly all of the
/// filtering power.
constexpr int kBoundTfCap = 64;

/// Widest segment (in doc ids) the scatter/probe and bitmap kernels
/// accept; wider segments — rare, only very sparse blocks — take the
/// scalar merge. 16K keeps the tag array (32KB) L1-resident and the
/// accumulator (128KB) comfortably in L2.
constexpr uint32_t kMergeRange = 16384;

/// Cursor capacity of the merge scratch. Queries beyond this many
/// distinct known terms (none exist in this workload) fall back to
/// exhaustive scoring.
constexpr size_t kMaxMergeTerms = 8;

/// Branch-free double selects. The obvious ternary compiles to a
/// branch (gcc won't speculate FP moves here), which mispredicts badly
/// on ~30% hit-density probe streams — so select via integer masking.
/// `m` must be all-ones or all-zero.
inline double SelectDouble(uint64_t m, double x, double y) {
  uint64_t xi, yi;
  std::memcpy(&xi, &x, 8);
  std::memcpy(&yi, &y, 8);
  const uint64_t r = (xi & m) | (yi & ~m);
  double d;
  std::memcpy(&d, &r, 8);
  return d;
}
inline double MaskDouble(uint64_t m, double x) {
  uint64_t xi;
  std::memcpy(&xi, &x, 8);
  xi &= m;
  double d;
  std::memcpy(&d, &xi, 8);
  return d;
}

/// The retrieval order as a *functor*: handing std::push_heap a
/// function pointer makes every comparison an indirect call in the
/// hottest loop of the merge.
struct WorseOrder {
  inline bool operator()(const ScoredDoc& a, const ScoredDoc& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }
};

/// Bounded top-k heap whose root is the worst retained hit. Offer
/// inlines the full tie-break (score desc, doc asc), which together
/// with `>=` candidate gates makes the merge order-independent: a
/// later exact tie with a larger doc id never displaces the incumbent.
struct BoundedTopK {
  std::vector<ScoredDoc>& h;
  const size_t cap;
  inline bool Full() const { return h.size() >= cap; }
  inline double Threshold() const {
    return Full() ? h.front().score : -std::numeric_limits<double>::infinity();
  }
  inline void Offer(double score, corpus::DocId doc) {
    if (h.size() < cap) {
      h.push_back({doc, score});
      std::push_heap(h.begin(), h.end(), WorseOrder{});
    } else if (score > h.front().score ||
               (score == h.front().score && doc < h.front().doc)) {
      std::pop_heap(h.begin(), h.end(), WorseOrder{});
      h.back() = {doc, score};
      std::push_heap(h.begin(), h.end(), WorseOrder{});
    }
  }
};

/// One term's merge cursor: current block index, the decoded block
/// (docs + stored tfs), lazily the batched exact contributions, and
/// the per-tf upper-bound table. ~6KB each, lives in the per-thread
/// merge scratch.
struct MergeCursor {
  PostingListView view;
  const double* norms = nullptr;  // bm25_norm_ of the owning index
  double idf = 0.0;
  double k1p1 = 0.0;  // k1 + 1
  uint32_t block = 0;
  uint32_t num_blocks = 0;
  int count = 0;
  int pos = 0;
  bool loaded = false;
  bool contrib_loaded = false;
  uint64_t blocks_decoded = 0;
  /// Scatter positions the probe pass already folded into a two-list
  /// candidate (so the lone-docs sweep skips them). One bit per block
  /// position.
  uint64_t probed[2];
  /// bound_tbl[stored_tf] >= any contribution this term can make with
  /// that tf (norm floored at the corpus minimum, inflated 1e-12 for
  /// summation-order slack); [kBoundTfCap] holds the term-wide bound.
  double bound_tbl[kBoundTfCap + 1];
  /// +4: doc sentinels (0xffffffff) let the kernels run without end
  /// checks.
  alignas(64) uint32_t docs[kPostingBlockSize + 4];
  /// 2x: the branchless probe speculatively reads tfs[tag & 0xff]
  /// before testing the tag's epoch, so stale tags (values up to 255)
  /// must still land in-bounds. Bind() zeroes the array once.
  alignas(64) uint32_t tfs[2 * kPostingBlockSize];
  alignas(64) double tf_real[kPostingBlockSize];
  alignas(64) double denom[kPostingBlockSize];
  alignas(64) double contrib[kPostingBlockSize + 4];

  void Bind(const PostingListView& v, double idf_in, const double* norms_in,
            double k1, double norm_min) {
    view = v;
    norms = norms_in;
    idf = idf_in;
    k1p1 = k1 + 1.0;
    block = 0;
    num_blocks = v.num_blocks();
    count = pos = 0;
    loaded = contrib_loaded = false;
    blocks_decoded = 0;
    std::memset(tfs, 0, sizeof(tfs));
    for (int tf = 0; tf < kBoundTfCap; ++tf) {
      const double t = static_cast<double>(tf) + 1.0;  // stored -> real tf
      bound_tbl[tf] = idf * t * k1p1 / (t + norm_min) * (1.0 + 1e-12);
    }
    bound_tbl[kBoundTfCap] = v.term_max() * (1.0 + 1e-12);
  }

  void Load() {
    const BlockMeta& meta = view.block(block);
    DecodePostingBlockStoredTf(meta, view.block_data(block),
                               view.block_base(block), docs, tfs);
    const int n = meta.count;
    docs[n] = docs[n + 1] = docs[n + 2] = docs[n + 3] = 0xffffffffu;
    tfs[n] = tfs[n + 1] = tfs[n + 2] = tfs[n + 3] = 0;
    count = n;
    pos = 0;
    loaded = true;
    contrib_loaded = false;
    probed[0] = probed[1] = 0;
    ++blocks_decoded;
  }

  /// Batch-computes the exact contribution of every posting in the
  /// loaded block. Three flat passes so the compiler vectorizes the
  /// divide; elementwise, so each value is bit-identical to the scalar
  /// expression below.
  void EnsureContrib() {
    if (contrib_loaded) return;
    const int n = count;
    for (int i = 0; i < n; ++i) tf_real[i] = static_cast<double>(tfs[i]) + 1.0;
    for (int i = 0; i < n; ++i) denom[i] = tf_real[i] + norms[docs[i]];
    for (int i = 0; i < n; ++i) contrib[i] = idf * tf_real[i] * k1p1 / denom[i];
    contrib[n] = contrib[n + 1] = contrib[n + 2] = contrib[n + 3] = 0.0;
    contrib_loaded = true;
  }

  /// Exact contribution of posting i — the expression every scoring
  /// path in this file evaluates, same order, same doubles.
  inline double Exact(int i) const {
    if (contrib_loaded) return contrib[i];
    const double tf = static_cast<double>(tfs[i]) + 1.0;
    return idf * tf * k1p1 / (tf + norms[docs[i]]);
  }
};

/// Per-thread merge scratch (~210KB): allocated once per thread, no
/// per-query clears except the candidate structures' own epochs.
struct MergeScratchArena {
  /// Docs-present bitmap for the 3+-list accumulation kernel (cleared
  /// per segment, words actually spanned only).
  uint64_t bitmap[kMergeRange / 64];
  /// Score accumulator addressed doc - segment_base; valid where the
  /// bitmap bit is set.
  double acc[kMergeRange];
  /// Scatter tags for the two-list kernel: (epoch << 8) | position.
  /// Epoch-tagged so segments don't pay a clear; a full memset every
  /// 256 epochs amortizes to nothing.
  uint16_t tag[kMergeRange];
  uint32_t tag_epoch = 0;
  /// Probe survivors: (hit << 63) | (scatter_pos << 32) | probe_pos.
  uint64_t cand[kPostingBlockSize + 8];
  MergeCursor cursors[kMaxMergeTerms];
};

MergeScratchArena& MergeScratch() {
  // Heap-allocated: ~210KB is too big for TLS proper, and lazily built
  // so threads that never retrieve pay nothing.
  thread_local std::unique_ptr<MergeScratchArena> arena;
  if (!arena) arena = std::make_unique<MergeScratchArena>();
  return *arena;
}

}  // namespace

InvertedIndex::InvertedIndex(const corpus::Corpus* corpus,
                             Bm25Params table_params)
    : corpus_(corpus), table_params_(table_params) {
  PWS_CHECK(corpus_ != nullptr);
  num_documents_ = corpus_->size();
  doc_lengths_.resize(num_documents_, 0);

  // Build-time staging, per term: a pending buffer of at most one
  // block's postings plus the already-encoded bytes and block metadata.
  // Blocks are encoded as soon as they fill, so peak memory is the
  // compressed index plus one partial block per term — never the full
  // uncompressed posting lists.
  struct TermBuild {
    std::vector<Posting> pending;
    std::vector<uint8_t> bytes;
    std::vector<BlockMeta> metas;
    corpus::DocId base = 0;  // decode base of the next block
    uint32_t doc_count = 0;
  };
  std::vector<TermBuild> builds;
  const auto flush = [](TermBuild& tb) {
    if (tb.pending.empty()) return;
    const BlockMeta meta =
        EncodePostingBlock(tb.pending.data(),
                           static_cast<int>(tb.pending.size()), tb.base,
                           &tb.bytes);
    tb.base = meta.last_doc + 1;
    tb.doc_count += meta.count;
    tb.metas.push_back(meta);
    tb.pending.clear();
  };

  int64_t total_length = 0;
  std::vector<std::string> tokens;
  for (corpus::DocId id = 0; id < num_documents_; ++id) {
    const corpus::Document& doc = corpus_->doc(id);
    std::unordered_map<text::TermId, int> counts;
    tokens.clear();
    text::TokenizeAppend(doc.title, text::TokenizerOptions{}, &tokens);
    const size_t title_end = tokens.size();
    text::TokenizeAppend(doc.body, text::TokenizerOptions{}, &tokens);
    for (size_t t = 0; t < tokens.size(); ++t) {
      counts[vocabulary_.GetOrAdd(tokens[t])] += t < title_end ? kTitleBoost : 1;
    }
    int length = 0;
    for (const auto& [term, count] : counts) {
      if (term >= static_cast<text::TermId>(builds.size())) {
        builds.resize(term + 1);
      }
      TermBuild& tb = builds[term];
      tb.pending.push_back({id, count});
      if (tb.pending.size() == static_cast<size_t>(kPostingBlockSize)) {
        flush(tb);
      }
      length += count;
    }
    doc_lengths_[id] = length;
    total_length += length;
  }
  avg_doc_length_ =
      num_documents_ > 0
          ? static_cast<double>(total_length) / num_documents_
          : 0.0;

  // Consolidate the per-term chunks into one shared arena + one flat
  // block-metadata array, freeing each term's staging as it lands.
  uint64_t total_bytes = 0, total_blocks = 0;
  for (TermBuild& tb : builds) {
    flush(tb);
    total_bytes += tb.bytes.size();
    total_blocks += tb.metas.size();
  }
  // +pad: decode reads the bit stream in unaligned 64-bit words and may
  // touch up to 7 bytes past a block's payload (kDecodeOverreadPad).
  encoded_.reserve(total_bytes + kDecodeOverreadPad);
  blocks_.reserve(total_blocks);
  terms_.resize(builds.size());
  for (size_t t = 0; t < builds.size(); ++t) {
    TermBuild& tb = builds[t];
    TermPostings& tp = terms_[t];
    tp.data_begin = encoded_.size();
    tp.block_begin = static_cast<uint32_t>(blocks_.size());
    tp.block_count = static_cast<uint32_t>(tb.metas.size());
    tp.doc_count = tb.doc_count;
    encoded_.insert(encoded_.end(), tb.bytes.begin(), tb.bytes.end());
    blocks_.insert(blocks_.end(), tb.metas.begin(), tb.metas.end());
    TermBuild().pending.swap(tb.pending);
    std::vector<uint8_t>().swap(tb.bytes);
    std::vector<BlockMeta>().swap(tb.metas);
  }
  encoded_.insert(encoded_.end(), kDecodeOverreadPad, 0);

  BuildScoringTables();
  ComputeBlockMaxima();
}

void InvertedIndex::BuildScoringTables() {
  idf_.resize(terms_.size());
  for (size_t term = 0; term < terms_.size(); ++term) {
    idf_[term] = Idf(terms_[term].doc_count);
  }
  bm25_norm_.resize(num_documents_);
  bm25_norm_min_ = std::numeric_limits<double>::infinity();
  for (corpus::DocId doc = 0; doc < num_documents_; ++doc) {
    // The exact expression the untabled path evaluates, so tabled and
    // untabled scores are bit-identical.
    bm25_norm_[doc] =
        table_params_.k1 * (1.0 - table_params_.b +
                            table_params_.b * doc_lengths_[doc] /
                                avg_doc_length_);
    bm25_norm_min_ = std::min(bm25_norm_min_, bm25_norm_[doc]);
  }
}

void InvertedIndex::ComputeBlockMaxima() {
  uint32_t docs[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  for (size_t t = 0; t < terms_.size(); ++t) {
    TermPostings& tp = terms_[t];
    const PostingListView view = ViewOf(tp);
    const double idf = idf_[t];
    double term_max = 0.0;
    for (uint32_t b = 0; b < view.num_blocks(); ++b) {
      const BlockMeta& meta = view.block(b);
      DecodePostingBlock(meta, view.block_data(b), view.block_base(b), docs,
                         tfs);
      // The exact per-posting expression the scoring loops evaluate, so
      // every block_max is a true (achieved) maximum, not an estimate.
      double block_max = 0.0;
      for (int i = 0; i < meta.count; ++i) {
        const double tf = tfs[i];
        const double contribution = idf * tf * (table_params_.k1 + 1.0) /
                                    (tf + bm25_norm_[docs[i]]);
        block_max = std::max(block_max, contribution);
      }
      blocks_[tp.block_begin + b].block_max = block_max;
      term_max = std::max(term_max, block_max);
    }
    tp.term_max = term_max;
  }
}

int InvertedIndex::DocumentLength(corpus::DocId doc) const {
  PWS_CHECK_GE(doc, 0);
  PWS_CHECK_LT(doc, num_documents_);
  return doc_lengths_[doc];
}

AnalyzedQuery InvertedIndex::Analyze(std::string_view query) const {
  AnalyzedQuery analyzed;
  analyzed.query.assign(query);
  text::TokenizeAppend(query, text::TokenizerOptions{}, &analyzed.tokens);
  analyzed.term_ids.reserve(analyzed.tokens.size());
  for (const auto& token : analyzed.tokens) {
    analyzed.term_ids.push_back(vocabulary_.Get(token));
  }
  return analyzed;
}

PostingListView InvertedIndex::PostingsFor(std::string_view term) const {
  return PostingsFor(vocabulary_.Get(term));
}

PostingListView InvertedIndex::PostingsFor(text::TermId term) const {
  if (term < 0 || term >= static_cast<text::TermId>(terms_.size())) {
    return PostingListView();
  }
  return ViewOf(terms_[term]);
}

double InvertedIndex::Idf(double document_frequency) const {
  return std::log(1.0 + (num_documents_ - document_frequency + 0.5) /
                            (document_frequency + 0.5));
}

void InvertedIndex::DistinctKnownTerms(
    const std::vector<text::TermId>& term_ids,
    std::vector<text::TermId>* out) const {
  out->clear();
  for (const text::TermId id : term_ids) {
    if (id < 0 || id >= static_cast<text::TermId>(terms_.size())) continue;
    // Queries hold a handful of terms; a linear scan beats hashing.
    if (std::find(out->begin(), out->end(), id) == out->end()) {
      out->push_back(id);
    }
  }
}

double InvertedIndex::Score(const std::vector<text::TermId>& term_ids,
                            corpus::DocId doc,
                            const Bm25Params& params) const {
  const bool tabled = ParamsMatchTables(params);
  TopKScratch& scratch = LocalScratch();
  DistinctKnownTerms(term_ids, &scratch.distinct_terms);
  uint32_t docs[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  double score = 0.0;
  for (const text::TermId id : scratch.distinct_terms) {
    const PostingListView view = ViewOf(terms_[id]);
    if (view.empty()) continue;
    // One block decode per term: the skip metadata finds the only block
    // that can contain `doc`.
    const uint32_t b = view.FindBlock(doc, 0);
    if (b == view.num_blocks()) continue;
    const BlockMeta& meta = view.block(b);
    DecodePostingBlock(meta, view.block_data(b), view.block_base(b), docs,
                       tfs);
    const uint32_t* begin = docs;
    const uint32_t* end = docs + meta.count;
    const uint32_t* it =
        std::lower_bound(begin, end, static_cast<uint32_t>(doc));
    if (it == end || static_cast<corpus::DocId>(*it) != doc) continue;
    const double tf = tfs[it - docs];
    const double norm =
        tabled ? bm25_norm_[doc]
               : params.k1 * (1.0 - params.b +
                              params.b * DocumentLength(doc) /
                                  avg_doc_length_);
    const double idf = tabled ? idf_[id] : Idf(view.size());
    score += idf * tf * (params.k1 + 1.0) / (tf + norm);
  }
  return score;
}

double InvertedIndex::Score(const std::vector<std::string>& query_tokens,
                            corpus::DocId doc, const Bm25Params& params) const {
  std::vector<text::TermId> ids;
  ids.reserve(query_tokens.size());
  for (const auto& token : query_tokens) {
    ids.push_back(vocabulary_.Get(token));
  }
  return Score(ids, doc, params);
}

std::vector<ScoredDoc> InvertedIndex::TopKScored(
    const std::vector<text::TermId>& term_ids, int k, const Bm25Params& params,
    RetrievalStats* stats) const {
  if (k <= 0 || num_documents_ == 0) return {};
  if (ParamsMatchTables(params)) {
    // Candidate pool size decides whether pruning can pay (see
    // kBlockMaxSelectivity).
    TopKScratch& scratch = LocalScratch();
    DistinctKnownTerms(term_ids, &scratch.distinct_terms);
    uint64_t candidates = 0;
    for (const text::TermId id : scratch.distinct_terms) {
      candidates += terms_[id].doc_count;
    }
    if (static_cast<uint64_t>(k) * kBlockMaxSelectivity <= candidates) {
      return TopKScoredBlockMax(term_ids, k, params, stats);
    }
  }
  return TopKScoredExhaustive(term_ids, k, params, stats);
}

std::vector<ScoredDoc> InvertedIndex::TopKScoredExhaustive(
    const std::vector<text::TermId>& term_ids, int k,
    const Bm25Params& params, RetrievalStats* stats) const {
  if (k <= 0 || num_documents_ == 0) return {};
  const bool tabled = ParamsMatchTables(params);
  TopKScratch& scratch = LocalScratch();
  scratch.Begin(num_documents_);
  DistinctKnownTerms(term_ids, &scratch.distinct_terms);
  RetrievalStats local;

  // Block-batched accumulation term-at-a-time over the union of
  // postings: decode one block into the stack buffers, then score its
  // postings in a tight loop against the epoch-stamped flat array. The
  // accumulation order (term order, then doc order) matches the
  // pre-block implementation, so scores are bit-identical.
  uint32_t docs[kPostingBlockSize];
  uint32_t tfs[kPostingBlockSize];
  for (const text::TermId id : scratch.distinct_terms) {
    const PostingListView view = ViewOf(terms_[id]);
    if (view.empty()) continue;
    const double idf = tabled ? idf_[id] : Idf(view.size());
    for (uint32_t b = 0; b < view.num_blocks(); ++b) {
      const BlockMeta& meta = view.block(b);
      DecodePostingBlock(meta, view.block_data(b), view.block_base(b), docs,
                         tfs);
      ++local.blocks_scored;
      for (int i = 0; i < meta.count; ++i) {
        const corpus::DocId doc = static_cast<corpus::DocId>(docs[i]);
        const double tf = tfs[i];
        const double norm =
            tabled ? bm25_norm_[doc]
                   : params.k1 * (1.0 - params.b +
                                  params.b * DocumentLength(doc) /
                                      avg_doc_length_);
        const double contribution =
            idf * tf * (params.k1 + 1.0) / (tf + norm);
        if (scratch.epochs[doc] != scratch.epoch) {
          scratch.epochs[doc] = scratch.epoch;
          scratch.scores[doc] = contribution;
          scratch.touched.push_back(doc);
        } else {
          scratch.scores[doc] += contribution;
        }
      }
    }
  }
  local.docs_evaluated = scratch.touched.size();

  std::vector<ScoredDoc>& heap = scratch.heap;
  heap.clear();
  const size_t cap = static_cast<size_t>(k);
  for (const corpus::DocId doc : scratch.touched) {
    HeapOffer(heap, cap, ScoredDoc{doc, scratch.scores[doc]});
  }
  BumpBlockCounters(local);
  if (stats != nullptr) *stats = local;
  return HeapToSorted(heap);
}

std::vector<ScoredDoc> InvertedIndex::TopKScoredBlockMax(
    const std::vector<text::TermId>& term_ids, int k,
    const Bm25Params& params, RetrievalStats* stats) const {
  if (k <= 0 || num_documents_ == 0) return {};
  if (!ParamsMatchTables(params)) {
    // Block maxima were precomputed for table_params_; with foreign
    // params they are not bounds, so pruning would be unsound.
    return TopKScoredExhaustive(term_ids, k, params, stats);
  }
  TopKScratch& scratch = LocalScratch();
  DistinctKnownTerms(term_ids, &scratch.distinct_terms);
  const size_t num_terms = scratch.distinct_terms.size();
  if (num_terms == 0) {
    if (stats != nullptr) *stats = RetrievalStats{};
    return {};
  }
  if (num_terms > kMaxMergeTerms) {
    return TopKScoredExhaustive(term_ids, k, params, stats);
  }

  // One cursor per distinct term, in term order (cursor index ==
  // position in distinct_terms). Every kernel below folds a doc's
  // contributions in term order, so surviving scores are bit-identical
  // to the exhaustive accumulator's.
  MergeScratchArena& ms = MergeScratch();
  uint64_t total_blocks = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    MergeCursor& cur = ms.cursors[t];
    cur.Bind(ViewOf(terms_[scratch.distinct_terms[t]]),
             idf_[scratch.distinct_terms[t]], bm25_norm_.data(), params.k1,
             bm25_norm_min_);
    total_blocks += cur.num_blocks;
  }

  scratch.heap.clear();
  BoundedTopK heap{scratch.heap, static_cast<size_t>(k)};
  RetrievalStats local;
  uint64_t evals = 0;

  constexpr uint32_t kInfDoc = 0xffffffffu;
  uint32_t m = 0;  // next doc id the merge has not covered yet
  while (true) {
    // Advance every list to its block containing docs >= m, sum the
    // current block maxima, and find the segment end: the closest
    // block boundary, so no list crosses a block inside [m, seg_end].
    double ub = 0.0;
    uint32_t seg_end = kInfDoc;
    size_t active = 0;
    for (size_t t = 0; t < num_terms; ++t) {
      MergeCursor& cur = ms.cursors[t];
      while (cur.block < cur.num_blocks &&
             static_cast<uint32_t>(cur.view.block(cur.block).last_doc) < m) {
        ++cur.block;
        cur.loaded = false;
      }
      if (cur.block == cur.num_blocks) continue;
      ++active;
      const BlockMeta& meta = cur.view.block(cur.block);
      ub += meta.block_max;
      seg_end = std::min(seg_end, static_cast<uint32_t>(meta.last_doc));
    }
    if (active == 0) break;
    const double threshold = heap.Threshold();
    // Whole-segment skip: even a doc carrying every list's block max
    // cannot enter the heap. (Never-decoded blocks count as skipped via
    // the total - decoded accounting at the end.)
    if (heap.Full() && SafeUpperBound(ub) <= threshold) {
      m = seg_end + 1;
      continue;
    }

    // Collect the lists whose current block overlaps the segment, and
    // mark each *essential* (its block alone could beat the
    // threshold). Docs present only in non-essential lists cannot
    // enter the heap — tie-safe because the bound inflation makes a
    // pruned candidate's score strictly below the threshold.
    MergeCursor* seg[kMaxMergeTerms];
    bool ess[kMaxMergeTerms];
    size_t ns = 0;
    for (size_t t = 0; t < num_terms; ++t) {
      MergeCursor& cur = ms.cursors[t];
      if (cur.block == cur.num_blocks) continue;
      if (static_cast<uint32_t>(cur.view.block_base(cur.block)) > seg_end) {
        continue;
      }
      ess[ns] = !heap.Full() ||
                SafeUpperBound(cur.view.block(cur.block).block_max) >
                    threshold;
      seg[ns++] = &cur;
    }
    if (ns == 1 && !ess[0]) {  // lone non-essential list: skip undecoded
      m = seg_end + 1;
      continue;
    }
    for (size_t i = 0; i < ns; ++i) {
      MergeCursor& cur = *seg[i];
      if (!cur.loaded) cur.Load();
      while (cur.docs[cur.pos] < m) ++cur.pos;  // sentinel-terminated
    }
    const uint32_t base = m;

    if (ns == 2 && seg_end - m < kMergeRange) {
      // Two lists: scatter the (globally) larger one into the tag
      // array, probe with the smaller. The probe is branchless — per
      // probe doc it builds an upper bound on the doc's total score
      // from the per-tf bound tables and appends the doc to a
      // candidate buffer only when the bound reaches the (frozen)
      // threshold; candidates then get exact scores. swap keeps term
      // order in the exact sum.
      const bool swap = seg[1]->view.size() > seg[0]->view.size();
      MergeCursor& a = swap ? *seg[1] : *seg[0];  // scatter side
      MergeCursor& b = swap ? *seg[0] : *seg[1];  // probe side
      const bool ess_a = swap ? ess[1] : ess[0];
      const bool ess_b = swap ? ess[0] : ess[1];
      if (ess_a) a.EnsureContrib();
      if (ess_b) b.EnsureContrib();
      double theta = heap.Threshold();
      // Frozen for the probe filter: theta only rises, so filtering
      // against theta0 keeps a superset of the survivors.
      const double theta0 = theta;
      const uint32_t* da = a.docs;
      const uint32_t* db = b.docs;
      const uint32_t* ta = a.tfs;
      const uint32_t* tb = b.tfs;
      const double* cb = b.contrib;
      const double* bta = a.bound_tbl;
      const double* btb = b.bound_tbl;
      ms.tag_epoch = (ms.tag_epoch + 1) & 0xff;
      if (ms.tag_epoch == 0) {
        std::memset(ms.tag, 0, sizeof(ms.tag));
        ms.tag_epoch = 1;
      }
      const uint16_t tag = static_cast<uint16_t>(ms.tag_epoch << 8);
      int pa = a.pos;
      for (; da[pa] <= seg_end; ++pa) {
        ms.tag[da[pa] - base] = tag | static_cast<uint16_t>(pa);
      }
      int pb = b.pos;
      int nc = 0;
      if (ess_b) {
        for (; db[pb] <= seg_end; ++pb) {
          const uint32_t v = ms.tag[db[pb] - base];
          const uint64_t hit = (v >> 8) == ms.tag_epoch;
          const uint32_t ia = v & 0xff;  // stale when !hit; masked below
          const uint32_t tfa = ta[ia], tfb = tb[pb];
          const double bnd_a = bta[tfa < kBoundTfCap ? tfa : kBoundTfCap];
          const double bnd_b = btb[tfb < kBoundTfCap ? tfb : kBoundTfCap];
          // B essential: a B-only doc can still qualify on b's exact
          // contribution alone.
          const double cand = SelectDouble(0ull - hit, bnd_a + bnd_b, cb[pb]);
          ms.cand[nc] = (hit << 63) | (static_cast<uint64_t>(ia) << 32) |
                        static_cast<uint32_t>(pb);
          nc += (cand >= theta0);
        }
      } else {
        for (; db[pb] <= seg_end; ++pb) {
          const uint32_t v = ms.tag[db[pb] - base];
          const uint64_t hit = (v >> 8) == ms.tag_epoch;
          const uint32_t ia = v & 0xff;
          const uint32_t tfa = ta[ia], tfb = tb[pb];
          const double bnd_a = bta[tfa < kBoundTfCap ? tfa : kBoundTfCap];
          const double bnd_b = btb[tfb < kBoundTfCap ? tfb : kBoundTfCap];
          // B not essential: only intersection docs can qualify.
          const double cand = MaskDouble(0ull - hit, bnd_a + bnd_b);
          ms.cand[nc] = (hit << 63) | (static_cast<uint64_t>(ia) << 32) |
                        static_cast<uint32_t>(pb);
          nc += (cand >= theta0);
        }
      }
      for (int ci = 0; ci < nc; ++ci) {
        const uint64_t u = ms.cand[ci];
        const int pbx = static_cast<int>(static_cast<uint32_t>(u));
        const int ia = static_cast<int>((u >> 32) & 0xff);
        const uint32_t d = db[pbx];
        double s;
        if (u >> 63) {
          if (ess_a) a.probed[ia >> 6] |= 1ull << (ia & 63);
          s = swap ? b.Exact(pbx) + a.Exact(ia) : a.Exact(ia) + b.Exact(pbx);
        } else {
          s = b.Exact(pbx);
        }
        if (s >= theta) {
          heap.Offer(s, static_cast<corpus::DocId>(d));
          ++evals;
          theta = heap.Threshold();
        }
      }
      if (ess_a) {
        // A-only docs the probe never touched.
        const double* ca = a.contrib;
        for (int p = a.pos; p < pa; ++p) {
          if (((a.probed[p >> 6] >> (p & 63)) & 1) == 0 && ca[p] >= theta) {
            heap.Offer(ca[p], static_cast<corpus::DocId>(da[p]));
            ++evals;
            theta = heap.Threshold();
          }
        }
      }
      a.pos = pa;
      b.pos = pb;
    } else if (ns == 1) {
      // Lone essential list: batched exact contributions, flat scan.
      MergeCursor& cur = *seg[0];
      cur.EnsureContrib();
      double theta = heap.Threshold();
      int p = cur.pos;
      while (cur.docs[p] <= seg_end) {
        if (cur.contrib[p] >= theta) {
          heap.Offer(cur.contrib[p], static_cast<corpus::DocId>(cur.docs[p]));
          ++evals;
          theta = heap.Threshold();
        }
        ++p;
      }
      cur.pos = p;
    } else if (seg_end - m < kMergeRange) {
      // Three+ lists: exact accumulation into the bitmap-backed dense
      // array, in term order per doc (lists are visited in term order
      // and each adds once), then one sweep over the set bits.
      const uint32_t words = ((seg_end - m) >> 6) + 1;
      std::memset(ms.bitmap, 0, words * sizeof(uint64_t));
      for (size_t i = 0; i < ns; ++i) {
        MergeCursor& cur = *seg[i];
        cur.EnsureContrib();
        const uint32_t* dd = cur.docs;
        const double* cc = cur.contrib;
        int p = cur.pos;
        for (; dd[p] <= seg_end; ++p) {
          const uint32_t off = dd[p] - base;
          const uint64_t w = ms.bitmap[off >> 6];
          const uint64_t bit = 1ull << (off & 63);
          // First touch reads garbage; mask it to 0 instead of
          // branching on the bit.
          const double prev =
              MaskDouble(0ull - ((w >> (off & 63)) & 1), ms.acc[off]);
          ms.acc[off] = prev + cc[p];
          ms.bitmap[off >> 6] = w | bit;
        }
        cur.pos = p;
      }
      double theta = heap.Threshold();
      for (uint32_t w = 0; w < words; ++w) {
        uint64_t x = ms.bitmap[w];
        while (x) {
          const int bit = __builtin_ctzll(x);
          x &= x - 1;
          const uint32_t off = w * 64 + static_cast<uint32_t>(bit);
          const double s = ms.acc[off];
          if (s >= theta) {
            heap.Offer(s, static_cast<corpus::DocId>(base + off));
            ++evals;
            theta = heap.Threshold();
          }
        }
      }
    } else {
      // Sparse segment (wider than the dense kernels accept): scalar
      // min-merge. A doc is evaluated when it appears in 2+ lists or
      // any essential one; singletons of non-essential lists are
      // pruned by the same block-max argument as above.
      while (true) {
        uint32_t d = kInfDoc;
        for (size_t i = 0; i < ns; ++i) {
          MergeCursor& cur = *seg[i];
          if (cur.pos < cur.count) d = std::min(d, cur.docs[cur.pos]);
        }
        if (d > seg_end) break;
        int nlists = 0;
        bool any_ess = false;
        for (size_t i = 0; i < ns; ++i) {
          MergeCursor& cur = *seg[i];
          if (cur.pos < cur.count && cur.docs[cur.pos] == d) {
            ++nlists;
            any_ess |= ess[i];
          }
        }
        if (nlists >= 2 || any_ess) {
          double s = 0.0;
          for (size_t i = 0; i < ns; ++i) {
            MergeCursor& cur = *seg[i];
            if (cur.pos < cur.count && cur.docs[cur.pos] == d) {
              s += cur.Exact(cur.pos);
            }
          }
          heap.Offer(s, static_cast<corpus::DocId>(d));
          ++evals;
        }
        for (size_t i = 0; i < ns; ++i) {
          MergeCursor& cur = *seg[i];
          if (cur.pos < cur.count && cur.docs[cur.pos] == d) ++cur.pos;
        }
      }
    }
    m = seg_end + 1;
  }

  uint64_t decoded = 0;
  for (size_t t = 0; t < num_terms; ++t) {
    decoded += ms.cursors[t].blocks_decoded;
  }
  local.blocks_scored = decoded;
  local.blocks_skipped = total_blocks - std::min(total_blocks, decoded);
  local.docs_evaluated = evals;
  BumpBlockCounters(local);
  if (stats != nullptr) *stats = local;
  return HeapToSorted(scratch.heap);
}

std::vector<corpus::DocId> InvertedIndex::TopK(
    const std::vector<text::TermId>& term_ids, int k,
    const Bm25Params& params) const {
  const std::vector<ScoredDoc> scored = TopKScored(term_ids, k, params);
  std::vector<corpus::DocId> out;
  out.reserve(scored.size());
  for (const ScoredDoc& hit : scored) out.push_back(hit.doc);
  return out;
}

std::vector<corpus::DocId> InvertedIndex::TopK(
    const std::vector<std::string>& query_tokens, int k,
    const Bm25Params& params) const {
  std::vector<text::TermId> ids;
  ids.reserve(query_tokens.size());
  for (const auto& token : query_tokens) {
    ids.push_back(vocabulary_.Get(token));
  }
  return TopK(ids, k, params);
}

IndexStats InvertedIndex::Stats() const {
  IndexStats stats;
  stats.documents = static_cast<uint64_t>(num_documents_);
  stats.terms = terms_.size();
  stats.blocks = blocks_.size();
  // The arena ends in kDecodeOverreadPad guard bytes, not payload.
  stats.encoded_bytes = encoded_.size() - kDecodeOverreadPad;
  stats.metadata_bytes = blocks_.size() * sizeof(BlockMeta) +
                         terms_.size() * sizeof(TermPostings);
  for (const TermPostings& term : terms_) {
    stats.postings += term.doc_count;
  }
  for (const BlockMeta& block : blocks_) {
    if (block.format == static_cast<uint8_t>(BlockFormat::kPacked)) {
      ++stats.packed_blocks;
    } else {
      ++stats.varint_blocks;
    }
  }
  return stats;
}

}  // namespace pws::backend
