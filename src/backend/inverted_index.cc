#include "backend/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::backend {
namespace {

// Title tokens are indexed twice: a cheap stand-in for field weighting.
constexpr int kTitleBoost = 2;

/// Per-thread retrieval scratch. The flat score array is epoch-stamped:
/// scores[doc] is live only when epochs[doc] == epoch, so consecutive
/// TopK calls (even against *different* indexes sharing the thread)
/// never pay a O(num_documents) clear and never read stale sums.
struct TopKScratch {
  std::vector<double> scores;
  std::vector<uint32_t> epochs;
  uint32_t epoch = 0;
  std::vector<corpus::DocId> touched;
  std::vector<text::TermId> distinct_terms;
  std::vector<ScoredDoc> heap;

  /// Starts a fresh accumulation covering at least `num_documents` docs.
  void Begin(int num_documents) {
    if (static_cast<int>(scores.size()) < num_documents) {
      scores.resize(num_documents, 0.0);
      epochs.resize(num_documents, 0);
    }
    ++epoch;
    if (epoch == 0) {  // uint32 wraparound: stale stamps could collide.
      std::fill(epochs.begin(), epochs.end(), 0u);
      epoch = 1;
    }
    touched.clear();
  }
};

TopKScratch& LocalScratch() {
  thread_local TopKScratch scratch;
  return scratch;
}

/// The deterministic retrieval order: higher score first, doc id
/// ascending on exact score ties.
bool Better(const ScoredDoc& a, const ScoredDoc& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

}  // namespace

InvertedIndex::InvertedIndex(const corpus::Corpus* corpus,
                             Bm25Params table_params)
    : corpus_(corpus), table_params_(table_params) {
  PWS_CHECK(corpus_ != nullptr);
  num_documents_ = corpus_->size();
  doc_lengths_.resize(num_documents_, 0);
  int64_t total_length = 0;
  std::vector<std::string> tokens;
  for (corpus::DocId id = 0; id < num_documents_; ++id) {
    const corpus::Document& doc = corpus_->doc(id);
    std::unordered_map<text::TermId, int> counts;
    tokens.clear();
    text::TokenizeAppend(doc.title, text::TokenizerOptions{}, &tokens);
    const size_t title_end = tokens.size();
    text::TokenizeAppend(doc.body, text::TokenizerOptions{}, &tokens);
    for (size_t t = 0; t < tokens.size(); ++t) {
      counts[vocabulary_.GetOrAdd(tokens[t])] += t < title_end ? kTitleBoost : 1;
    }
    int length = 0;
    for (const auto& [term, count] : counts) {
      if (term >= static_cast<text::TermId>(postings_.size())) {
        postings_.resize(term + 1);
      }
      postings_[term].push_back({id, count});
      length += count;
    }
    doc_lengths_[id] = length;
    total_length += length;
  }
  avg_doc_length_ =
      num_documents_ > 0
          ? static_cast<double>(total_length) / num_documents_
          : 0.0;
  BuildScoringTables();
}

void InvertedIndex::BuildScoringTables() {
  idf_.resize(postings_.size());
  for (size_t term = 0; term < postings_.size(); ++term) {
    idf_[term] = Idf(postings_[term]);
  }
  bm25_norm_.resize(num_documents_);
  for (corpus::DocId doc = 0; doc < num_documents_; ++doc) {
    // The exact expression the untabled path evaluates, so tabled and
    // untabled scores are bit-identical.
    bm25_norm_[doc] =
        table_params_.k1 * (1.0 - table_params_.b +
                            table_params_.b * doc_lengths_[doc] /
                                avg_doc_length_);
  }
}

int InvertedIndex::DocumentLength(corpus::DocId doc) const {
  PWS_CHECK_GE(doc, 0);
  PWS_CHECK_LT(doc, num_documents_);
  return doc_lengths_[doc];
}

AnalyzedQuery InvertedIndex::Analyze(std::string_view query) const {
  AnalyzedQuery analyzed;
  analyzed.query.assign(query);
  text::TokenizeAppend(query, text::TokenizerOptions{}, &analyzed.tokens);
  analyzed.term_ids.reserve(analyzed.tokens.size());
  for (const auto& token : analyzed.tokens) {
    analyzed.term_ids.push_back(vocabulary_.Get(token));
  }
  return analyzed;
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    std::string_view term) const {
  return PostingsFor(vocabulary_.Get(term));
}

const std::vector<Posting>& InvertedIndex::PostingsFor(
    text::TermId term) const {
  if (term < 0 || term >= static_cast<text::TermId>(postings_.size())) {
    return empty_postings_;
  }
  return postings_[term];
}

double InvertedIndex::Idf(const std::vector<Posting>& postings) const {
  const double df = static_cast<double>(postings.size());
  return std::log(1.0 + (num_documents_ - df + 0.5) / (df + 0.5));
}

void InvertedIndex::DistinctKnownTerms(
    const std::vector<text::TermId>& term_ids,
    std::vector<text::TermId>* out) const {
  out->clear();
  for (const text::TermId id : term_ids) {
    if (id < 0 || id >= static_cast<text::TermId>(postings_.size())) continue;
    // Queries hold a handful of terms; a linear scan beats hashing.
    if (std::find(out->begin(), out->end(), id) == out->end()) {
      out->push_back(id);
    }
  }
}

double InvertedIndex::Score(const std::vector<text::TermId>& term_ids,
                            corpus::DocId doc,
                            const Bm25Params& params) const {
  const bool tabled = ParamsMatchTables(params);
  TopKScratch& scratch = LocalScratch();
  DistinctKnownTerms(term_ids, &scratch.distinct_terms);
  double score = 0.0;
  for (const text::TermId id : scratch.distinct_terms) {
    const auto& postings = postings_[id];
    if (postings.empty()) continue;
    const auto it = std::lower_bound(
        postings.begin(), postings.end(), doc,
        [](const Posting& p, corpus::DocId d) { return p.doc < d; });
    if (it == postings.end() || it->doc != doc) continue;
    const double tf = it->term_frequency;
    const double norm =
        tabled ? bm25_norm_[doc]
               : params.k1 * (1.0 - params.b +
                              params.b * DocumentLength(doc) /
                                  avg_doc_length_);
    const double idf = tabled ? idf_[id] : Idf(postings);
    score += idf * tf * (params.k1 + 1.0) / (tf + norm);
  }
  return score;
}

double InvertedIndex::Score(const std::vector<std::string>& query_tokens,
                            corpus::DocId doc, const Bm25Params& params) const {
  std::vector<text::TermId> ids;
  ids.reserve(query_tokens.size());
  for (const auto& token : query_tokens) {
    ids.push_back(vocabulary_.Get(token));
  }
  return Score(ids, doc, params);
}

std::vector<ScoredDoc> InvertedIndex::TopKScored(
    const std::vector<text::TermId>& term_ids, int k,
    const Bm25Params& params) const {
  if (k <= 0 || num_documents_ == 0) return {};
  const bool tabled = ParamsMatchTables(params);
  TopKScratch& scratch = LocalScratch();
  scratch.Begin(num_documents_);
  DistinctKnownTerms(term_ids, &scratch.distinct_terms);

  // Accumulate scores term-at-a-time over the union of postings into the
  // epoch-stamped flat array.
  for (const text::TermId id : scratch.distinct_terms) {
    const auto& postings = postings_[id];
    if (postings.empty()) continue;
    const double idf = tabled ? idf_[id] : Idf(postings);
    for (const Posting& p : postings) {
      const double tf = p.term_frequency;
      const double norm =
          tabled ? bm25_norm_[p.doc]
                 : params.k1 * (1.0 - params.b +
                                params.b * DocumentLength(p.doc) /
                                    avg_doc_length_);
      const double contribution = idf * tf * (params.k1 + 1.0) / (tf + norm);
      if (scratch.epochs[p.doc] != scratch.epoch) {
        scratch.epochs[p.doc] = scratch.epoch;
        scratch.scores[p.doc] = contribution;
        scratch.touched.push_back(p.doc);
      } else {
        scratch.scores[p.doc] += contribution;
      }
    }
  }

  // Bounded top-k selection: a size-k heap whose root is the *worst*
  // retained hit under the deterministic order (score desc, doc asc).
  std::vector<ScoredDoc>& heap = scratch.heap;
  heap.clear();
  const size_t cap = static_cast<size_t>(k);
  for (const corpus::DocId doc : scratch.touched) {
    const ScoredDoc candidate{doc, scratch.scores[doc]};
    if (heap.size() < cap) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), Better);
    } else if (Better(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }
  std::vector<ScoredDoc> out(heap.begin(), heap.end());
  std::sort(out.begin(), out.end(), Better);
  return out;
}

std::vector<corpus::DocId> InvertedIndex::TopK(
    const std::vector<text::TermId>& term_ids, int k,
    const Bm25Params& params) const {
  const std::vector<ScoredDoc> scored = TopKScored(term_ids, k, params);
  std::vector<corpus::DocId> out;
  out.reserve(scored.size());
  for (const ScoredDoc& hit : scored) out.push_back(hit.doc);
  return out;
}

std::vector<corpus::DocId> InvertedIndex::TopK(
    const std::vector<std::string>& query_tokens, int k,
    const Bm25Params& params) const {
  std::vector<text::TermId> ids;
  ids.reserve(query_tokens.size());
  for (const auto& token : query_tokens) {
    ids.push_back(vocabulary_.Get(token));
  }
  return TopK(ids, k, params);
}

}  // namespace pws::backend
