#ifndef PWS_BACKEND_INVERTED_INDEX_H_
#define PWS_BACKEND_INVERTED_INDEX_H_

#include <vector>

#include "corpus/corpus.h"
#include "text/vocabulary.h"

namespace pws::backend {

/// One posting: a document and the term's frequency in it.
struct Posting {
  corpus::DocId doc = corpus::kInvalidDoc;
  int32_t term_frequency = 0;
};

/// BM25 scoring parameters (standard Robertson defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Disk-free inverted index over a Corpus (title + body, title tokens
/// double-counted to mimic field boosts). Provides BM25 top-k retrieval —
/// the stand-in for the commercial search backend of the paper.
class InvertedIndex {
 public:
  /// Indexes every document in `corpus`. The corpus must outlive the
  /// index (documents are referenced, not copied).
  explicit InvertedIndex(const corpus::Corpus* corpus);

  int num_documents() const { return num_documents_; }
  int vocabulary_size() const { return vocabulary_.size(); }
  double average_document_length() const { return avg_doc_length_; }

  /// Document length in tokens (with the title boost applied).
  int DocumentLength(corpus::DocId doc) const;

  /// Postings for a term string (empty for unknown terms).
  const std::vector<Posting>& PostingsFor(const std::string& term) const;

  /// BM25 score of `doc` for the tokenized query.
  double Score(const std::vector<std::string>& query_tokens,
               corpus::DocId doc, const Bm25Params& params) const;

  /// Returns the ids of the top-k documents by BM25, best first. Ties
  /// break toward lower doc ids so results are deterministic.
  std::vector<corpus::DocId> TopK(const std::vector<std::string>& query_tokens,
                                  int k, const Bm25Params& params) const;

 private:
  double Idf(const std::vector<Posting>& postings) const;

  const corpus::Corpus* corpus_;
  text::Vocabulary vocabulary_;
  std::vector<std::vector<Posting>> postings_;
  std::vector<int> doc_lengths_;
  int num_documents_ = 0;
  double avg_doc_length_ = 0.0;
  std::vector<Posting> empty_postings_;
};

}  // namespace pws::backend

#endif  // PWS_BACKEND_INVERTED_INDEX_H_
