#ifndef PWS_BACKEND_INVERTED_INDEX_H_
#define PWS_BACKEND_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "backend/posting_codec.h"
#include "corpus/corpus.h"
#include "text/vocabulary.h"

namespace pws::backend {

/// BM25 scoring parameters (standard Robertson defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// A query analyzed once against an index's vocabulary: the raw text,
/// the token strings (still needed for snippet generation), and the
/// interned term ids, aligned 1:1 with the tokens (kUnknownTerm for
/// out-of-vocabulary tokens). Build it once per query with
/// InvertedIndex::Analyze / SearchBackend::Analyze and thread it through
/// retrieval, scoring, and snippets — nothing downstream re-tokenizes.
struct AnalyzedQuery {
  std::string query;
  std::vector<std::string> tokens;
  std::vector<text::TermId> term_ids;
};

/// One retrieval hit: a document and its BM25 score.
struct ScoredDoc {
  corpus::DocId doc = corpus::kInvalidDoc;
  double score = 0.0;
};

/// Per-query retrieval work accounting, filled by the TopK* paths when a
/// non-null pointer is passed (tests and benches; the global
/// backend.search.blocks_{scored,skipped} counters are always bumped).
struct RetrievalStats {
  /// Blocks decoded and fed to the scoring loop.
  uint64_t blocks_scored = 0;
  /// Blocks proven irrelevant by block-max pruning and never decoded.
  uint64_t blocks_skipped = 0;
  /// Documents fully evaluated (block-max path; exhaustive scores all).
  uint64_t docs_evaluated = 0;
};

/// Index size accounting (pws_cli --index-stats, bench reports).
struct IndexStats {
  uint64_t documents = 0;
  uint64_t terms = 0;
  uint64_t postings = 0;
  uint64_t blocks = 0;
  uint64_t packed_blocks = 0;
  uint64_t varint_blocks = 0;
  /// Encoded posting payload bytes.
  uint64_t encoded_bytes = 0;
  /// Block + term metadata bytes (skip lists, block maxima).
  uint64_t metadata_bytes = 0;

  uint64_t TotalBytes() const { return encoded_bytes + metadata_bytes; }
  /// The layout this replaced: one 8-byte Posting per entry.
  uint64_t UncompressedBytes() const { return postings * sizeof(Posting); }
  double BytesPerPosting() const {
    return postings == 0 ? 0.0
                         : static_cast<double>(TotalBytes()) / postings;
  }
};

/// Disk-free inverted index over a Corpus (title + body, title tokens
/// double-counted to mimic field boosts). Provides BM25 top-k retrieval —
/// the stand-in for the commercial search backend of the paper.
///
/// Posting storage: block-compressed lists (see posting_codec.h) —
/// 128-document blocks with delta-encoded doc ids and tf-1 values,
/// per-block packed fixed-width or varint (whichever is smaller), plus
/// per-block metadata carrying the skip key (last_doc) and the block's
/// true maximum BM25 contribution under `table_params`.
///
/// Scoring tables: per-term IDF and the per-document BM25 length norm
/// `k1*(1-b+b*len/avg_len)` are precomputed at build time for
/// `table_params`. Calls with other Bm25Params still work (the norm is
/// recomputed per posting) and produce bit-identical scores to the
/// tabled path — both evaluate the exact same expressions.
///
/// Top-k paths: TopKScored dispatches between
///  - TopKScoredExhaustive: block-batched scoring — decode one block
///    into a stack buffer and score all its postings in a tight loop
///    against the epoch-stamped accumulator. Bit-identical to the
///    pre-block implementation (same expressions, same order).
///  - TopKScoredBlockMax: block-max segment merge — the doc space is
///    walked in block-aligned segments; per-block maxima skip whole
///    segments (and non-essential single lists) that cannot beat the
///    current heap threshold, and the surviving lists are merged with
///    batched, mostly branch-free kernels (scatter/probe for two
///    lists, bitmap accumulation for three+). Exact: returns the same
///    top-k set and the same (bit-identical) scores as the exhaustive
///    path; see DESIGN.md §15 for the pruning-safety argument.
///
/// Duplicate-term semantics: Score and TopK both score the *set* of
/// distinct query terms (first occurrence kept), so a duplicated token
/// contributes exactly once and `{a, a}` ranks identically to `{a}`.
///
/// Thread-safety: the index is immutable after construction; Analyze,
/// Score, and TopK* are safe to call concurrently. TopK uses an
/// epoch-stamped per-thread scratch arena (flat score array + touched
/// list + cursors + bounded top-k heap), so steady-state retrieval
/// allocates only the returned vector.
class InvertedIndex {
 public:
  /// Indexes every document in `corpus` and precomputes the scoring
  /// tables for `table_params`. The corpus must outlive the index
  /// (documents are referenced, not copied).
  explicit InvertedIndex(const corpus::Corpus* corpus,
                         Bm25Params table_params = Bm25Params{});

  int num_documents() const { return num_documents_; }
  int vocabulary_size() const { return vocabulary_.size(); }
  double average_document_length() const { return avg_doc_length_; }
  /// The Bm25Params the scoring tables were precomputed for.
  const Bm25Params& table_params() const { return table_params_; }

  /// Document length in tokens (with the title boost applied).
  int DocumentLength(corpus::DocId doc) const;

  /// Tokenizes `query` once (default tokenizer options, matching the
  /// indexer) and interns every token against the index vocabulary.
  AnalyzedQuery Analyze(std::string_view query) const;

  /// Block-postings view for a term string (empty view for unknown
  /// terms). Iterate with PostingCursor; no copies are made.
  PostingListView PostingsFor(std::string_view term) const;

  /// Block-postings view for an interned term id (empty view for
  /// kUnknownTerm or any id outside the vocabulary).
  PostingListView PostingsFor(text::TermId term) const;

  /// BM25 score of `doc` for the analyzed query's distinct term ids.
  double Score(const std::vector<text::TermId>& term_ids, corpus::DocId doc,
               const Bm25Params& params) const;

  /// String-token convenience overload: interns, then scores.
  double Score(const std::vector<std::string>& query_tokens,
               corpus::DocId doc, const Bm25Params& params) const;

  /// Returns the top-k documents by BM25 with their scores, best first.
  /// Ties break toward lower doc ids so results are deterministic.
  /// k <= 0 returns an empty result. Dispatches to the block-max path
  /// when it can prune (tabled params, k small relative to the
  /// candidate pool), the exhaustive path otherwise; both return
  /// identical results.
  std::vector<ScoredDoc> TopKScored(const std::vector<text::TermId>& term_ids,
                                    int k, const Bm25Params& params,
                                    RetrievalStats* stats = nullptr) const;

  /// Exhaustive block-batched scoring over the full candidate union.
  std::vector<ScoredDoc> TopKScoredExhaustive(
      const std::vector<text::TermId>& term_ids, int k,
      const Bm25Params& params, RetrievalStats* stats = nullptr) const;

  /// Block-max early-termination top-k (segment merge). Exact (same
  /// set, same scores as exhaustive). Falls back to exhaustive when
  /// `params` do not match the precomputed tables (block maxima only
  /// bound the tabled contributions) or the query holds more distinct
  /// terms than the merge keeps cursors for.
  std::vector<ScoredDoc> TopKScoredBlockMax(
      const std::vector<text::TermId>& term_ids, int k,
      const Bm25Params& params, RetrievalStats* stats = nullptr) const;

  /// Returns the ids of the top-k documents by BM25, best first. Ties
  /// break toward lower doc ids so results are deterministic. k <= 0
  /// returns an empty result.
  std::vector<corpus::DocId> TopK(const std::vector<text::TermId>& term_ids,
                                  int k, const Bm25Params& params) const;

  /// String-token convenience overload: interns, then retrieves.
  std::vector<corpus::DocId> TopK(const std::vector<std::string>& query_tokens,
                                  int k, const Bm25Params& params) const;

  /// Size accounting for the compressed posting storage.
  IndexStats Stats() const;

 private:
  /// One term's slice of the shared encoded arena + block metadata.
  struct TermPostings {
    uint64_t data_begin = 0;
    uint32_t block_begin = 0;
    uint32_t block_count = 0;
    uint32_t doc_count = 0;  // == document frequency
    /// Max block_max across the term's blocks (the WAND term bound).
    double term_max = 0.0;
  };

  double Idf(double document_frequency) const;
  /// Precomputes idf_ and bm25_norm_ for table_params_.
  void BuildScoringTables();
  /// Second pass over the encoded blocks: fills BlockMeta::block_max and
  /// TermPostings::term_max from the scoring tables.
  void ComputeBlockMaxima();
  /// Copies the distinct known term ids of `term_ids` (first-occurrence
  /// order preserved) into `*out`.
  void DistinctKnownTerms(const std::vector<text::TermId>& term_ids,
                          std::vector<text::TermId>* out) const;
  bool ParamsMatchTables(const Bm25Params& params) const {
    return params.k1 == table_params_.k1 && params.b == table_params_.b;
  }
  PostingListView ViewOf(const TermPostings& term) const {
    return PostingListView(encoded_.data() + term.data_begin,
                           blocks_.data() + term.block_begin,
                           term.block_count, term.doc_count, term.term_max);
  }

  const corpus::Corpus* corpus_;
  text::Vocabulary vocabulary_;
  /// Block-compressed posting storage: one shared byte arena, one flat
  /// block-metadata array, and per-term slices into both.
  std::vector<uint8_t> encoded_;
  std::vector<BlockMeta> blocks_;
  std::vector<TermPostings> terms_;
  std::vector<int> doc_lengths_;
  int num_documents_ = 0;
  double avg_doc_length_ = 0.0;
  /// Precomputed scoring tables (see class comment).
  Bm25Params table_params_;
  std::vector<double> idf_;        // per term id
  std::vector<double> bm25_norm_;  // per doc: k1*(1-b+b*len/avg_len)
  /// min over bm25_norm_: the denominator floor behind the per-tf
  /// contribution bounds the block-max merge filters candidates with.
  double bm25_norm_min_ = 0.0;
};

}  // namespace pws::backend

#endif  // PWS_BACKEND_INVERTED_INDEX_H_
