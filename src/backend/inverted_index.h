#ifndef PWS_BACKEND_INVERTED_INDEX_H_
#define PWS_BACKEND_INVERTED_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "corpus/corpus.h"
#include "text/vocabulary.h"

namespace pws::backend {

/// One posting: a document and the term's frequency in it.
struct Posting {
  corpus::DocId doc = corpus::kInvalidDoc;
  int32_t term_frequency = 0;
};

/// BM25 scoring parameters (standard Robertson defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// A query analyzed once against an index's vocabulary: the raw text,
/// the token strings (still needed for snippet generation), and the
/// interned term ids, aligned 1:1 with the tokens (kUnknownTerm for
/// out-of-vocabulary tokens). Build it once per query with
/// InvertedIndex::Analyze / SearchBackend::Analyze and thread it through
/// retrieval, scoring, and snippets — nothing downstream re-tokenizes.
struct AnalyzedQuery {
  std::string query;
  std::vector<std::string> tokens;
  std::vector<text::TermId> term_ids;
};

/// One retrieval hit: a document and its BM25 score.
struct ScoredDoc {
  corpus::DocId doc = corpus::kInvalidDoc;
  double score = 0.0;
};

/// Disk-free inverted index over a Corpus (title + body, title tokens
/// double-counted to mimic field boosts). Provides BM25 top-k retrieval —
/// the stand-in for the commercial search backend of the paper.
///
/// Scoring tables: per-term IDF and the per-document BM25 length norm
/// `k1*(1-b+b*len/avg_len)` are precomputed at build time for
/// `table_params`, so posting traversal on the term-id fast path is one
/// multiply-add plus one division per posting. Calls with other
/// Bm25Params still work (the norm is recomputed per posting) and
/// produce bit-identical scores to the tabled path — both evaluate the
/// exact same expressions.
///
/// Duplicate-term semantics: Score and TopK both score the *set* of
/// distinct query terms (first occurrence kept), so a duplicated token
/// contributes exactly once and `{a, a}` ranks identically to `{a}`.
///
/// Thread-safety: the index is immutable after construction; Analyze,
/// Score, and TopK* are safe to call concurrently. TopK uses an
/// epoch-stamped per-thread scratch arena (flat score array + touched
/// list + bounded top-k heap), so steady-state retrieval allocates only
/// the returned vector.
class InvertedIndex {
 public:
  /// Indexes every document in `corpus` and precomputes the scoring
  /// tables for `table_params`. The corpus must outlive the index
  /// (documents are referenced, not copied).
  explicit InvertedIndex(const corpus::Corpus* corpus,
                         Bm25Params table_params = Bm25Params{});

  int num_documents() const { return num_documents_; }
  int vocabulary_size() const { return vocabulary_.size(); }
  double average_document_length() const { return avg_doc_length_; }
  /// The Bm25Params the scoring tables were precomputed for.
  const Bm25Params& table_params() const { return table_params_; }

  /// Document length in tokens (with the title boost applied).
  int DocumentLength(corpus::DocId doc) const;

  /// Tokenizes `query` once (default tokenizer options, matching the
  /// indexer) and interns every token against the index vocabulary.
  AnalyzedQuery Analyze(std::string_view query) const;

  /// Postings for a term string (empty for unknown terms).
  const std::vector<Posting>& PostingsFor(std::string_view term) const;

  /// Postings for an interned term id (empty for kUnknownTerm or any id
  /// outside the vocabulary).
  const std::vector<Posting>& PostingsFor(text::TermId term) const;

  /// BM25 score of `doc` for the analyzed query's distinct term ids.
  double Score(const std::vector<text::TermId>& term_ids, corpus::DocId doc,
               const Bm25Params& params) const;

  /// String-token convenience overload: interns, then scores.
  double Score(const std::vector<std::string>& query_tokens,
               corpus::DocId doc, const Bm25Params& params) const;

  /// Returns the top-k documents by BM25 with their scores, best first.
  /// Ties break toward lower doc ids so results are deterministic.
  /// k <= 0 returns an empty result.
  std::vector<ScoredDoc> TopKScored(const std::vector<text::TermId>& term_ids,
                                    int k, const Bm25Params& params) const;

  /// Returns the ids of the top-k documents by BM25, best first. Ties
  /// break toward lower doc ids so results are deterministic. k <= 0
  /// returns an empty result.
  std::vector<corpus::DocId> TopK(const std::vector<text::TermId>& term_ids,
                                  int k, const Bm25Params& params) const;

  /// String-token convenience overload: interns, then retrieves.
  std::vector<corpus::DocId> TopK(const std::vector<std::string>& query_tokens,
                                  int k, const Bm25Params& params) const;

 private:
  double Idf(const std::vector<Posting>& postings) const;
  /// Precomputes idf_ and bm25_norm_ for table_params_.
  void BuildScoringTables();
  /// Copies the distinct known term ids of `term_ids` (first-occurrence
  /// order preserved) into `*out`.
  void DistinctKnownTerms(const std::vector<text::TermId>& term_ids,
                          std::vector<text::TermId>* out) const;
  bool ParamsMatchTables(const Bm25Params& params) const {
    return params.k1 == table_params_.k1 && params.b == table_params_.b;
  }

  const corpus::Corpus* corpus_;
  text::Vocabulary vocabulary_;
  std::vector<std::vector<Posting>> postings_;
  std::vector<int> doc_lengths_;
  int num_documents_ = 0;
  double avg_doc_length_ = 0.0;
  std::vector<Posting> empty_postings_;
  /// Precomputed scoring tables (see class comment).
  Bm25Params table_params_;
  std::vector<double> idf_;        // per term id
  std::vector<double> bm25_norm_;  // per doc: k1*(1-b+b*len/avg_len)
};

}  // namespace pws::backend

#endif  // PWS_BACKEND_INVERTED_INDEX_H_
