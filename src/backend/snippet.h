#ifndef PWS_BACKEND_SNIPPET_H_
#define PWS_BACKEND_SNIPPET_H_

#include <string>
#include <vector>

namespace pws::backend {

/// Snippet extraction knobs.
struct SnippetOptions {
  /// Target snippet length in tokens.
  int window_tokens = 30;
};

/// Returns a query-biased snippet of `body`: the window of
/// `options.window_tokens` tokens that covers the most (distinct) query
/// tokens, preferring earlier windows on ties — the same heuristic
/// commercial engines use for result teasers. Falls back to the document
/// prefix when no query token occurs.
///
/// The window search runs in O(body tokens + query tokens²) via a
/// sliding distinct-hit counter (no per-window hashing), with per-thread
/// scratch buffers, so per-call cost is dominated by tokenizing `body`.
std::string MakeSnippet(const std::string& body,
                        const std::vector<std::string>& query_tokens,
                        const SnippetOptions& options);

}  // namespace pws::backend

#endif  // PWS_BACKEND_SNIPPET_H_
