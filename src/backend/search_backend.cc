#include "backend/search_backend.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace pws::backend {

SearchBackend::SearchBackend(const corpus::Corpus* corpus,
                             SearchBackendOptions options)
    : corpus_(corpus), options_(options), index_(corpus, options.bm25) {
  PWS_CHECK(corpus_ != nullptr);
  PWS_CHECK_GT(options_.page_size, 0);
}

AnalyzedQuery SearchBackend::Analyze(const std::string& query) const {
  return index_.Analyze(query);
}

ResultPage SearchBackend::Search(const std::string& query) const {
  return Search(Analyze(query), options_.page_size);
}

ResultPage SearchBackend::Search(const std::string& query, int k) const {
  return Search(Analyze(query), k);
}

ResultPage SearchBackend::Search(const AnalyzedQuery& analyzed) const {
  return Search(analyzed, options_.page_size);
}

ResultPage SearchBackend::Search(const AnalyzedQuery& analyzed, int k) const {
  k = std::max(1, k);
  ResultPage page;
  page.query = analyzed.query;
  if (analyzed.tokens.empty()) return page;
  std::vector<ScoredDoc> top;
  {
    PWS_SPAN("backend.search.topk");
    top = index_.TopKScored(analyzed.term_ids, k, options_.bm25);
  }
  PWS_SPAN("backend.search.snippets");
  page.results.reserve(top.size());
  for (size_t i = 0; i < top.size(); ++i) {
    const corpus::Document& doc = corpus_->doc(top[i].doc);
    SearchResult result;
    result.doc = doc.id;
    result.rank = static_cast<int>(i);
    result.score = top[i].score;
    result.url = doc.url;
    result.title = doc.title;
    result.snippet = MakeSnippet(doc.body, analyzed.tokens, options_.snippet);
    page.results.push_back(std::move(result));
  }
  return page;
}

}  // namespace pws::backend
