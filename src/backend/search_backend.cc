#include "backend/search_backend.h"

#include <algorithm>

#include "text/tokenizer.h"
#include "util/check.h"

namespace pws::backend {

SearchBackend::SearchBackend(const corpus::Corpus* corpus,
                             SearchBackendOptions options)
    : corpus_(corpus), options_(options), index_(corpus) {
  PWS_CHECK(corpus_ != nullptr);
  PWS_CHECK_GT(options_.page_size, 0);
}

ResultPage SearchBackend::Search(const std::string& query) const {
  return Search(query, options_.page_size);
}

ResultPage SearchBackend::Search(const std::string& query, int k) const {
  k = std::max(1, k);
  ResultPage page;
  page.query = query;
  const std::vector<std::string> tokens = text::Tokenize(query);
  if (tokens.empty()) return page;
  const std::vector<corpus::DocId> top = index_.TopK(tokens, k, options_.bm25);
  page.results.reserve(top.size());
  for (size_t i = 0; i < top.size(); ++i) {
    const corpus::Document& doc = corpus_->doc(top[i]);
    SearchResult result;
    result.doc = doc.id;
    result.rank = static_cast<int>(i);
    result.score = index_.Score(tokens, doc.id, options_.bm25);
    result.url = doc.url;
    result.title = doc.title;
    result.snippet = MakeSnippet(doc.body, tokens, options_.snippet);
    page.results.push_back(std::move(result));
  }
  return page;
}

}  // namespace pws::backend
