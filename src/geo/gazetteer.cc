#include "geo/gazetteer.h"

#include <iterator>
#include <string>
#include <vector>

#include "util/check.h"

namespace pws::geo {
namespace {

// Compact spec rows for the embedded gazetteer. Populations are in
// thousands and approximate; they only serve as disambiguation priors.
struct CitySpec {
  const char* name;
  double lat;
  double lon;
  double pop_thousands;
};

struct RegionSpec {
  const char* name;
  double lat;
  double lon;
  std::vector<CitySpec> cities;
};

struct CountrySpec {
  const char* name;
  double lat;
  double lon;
  std::vector<RegionSpec> regions;
};

const std::vector<CountrySpec>& WorldSpec() {
  static const auto& spec = *new std::vector<CountrySpec>{
      {"united states", 39.8, -98.6, {
        {"new york state", 43.0, -75.0, {
          {"new york", 40.71, -74.01, 8400},
          {"buffalo", 42.89, -78.88, 278},
          {"albany", 42.65, -73.75, 99},
        }},
        {"california", 36.8, -119.4, {
          {"los angeles", 34.05, -118.24, 3900},
          {"san francisco", 37.77, -122.42, 870},
          {"san diego", 32.72, -117.16, 1400},
          {"sacramento", 38.58, -121.49, 525},
        }},
        {"texas", 31.0, -99.0, {
          {"houston", 29.76, -95.37, 2300},
          {"austin", 30.27, -97.74, 965},
          {"dallas", 32.78, -96.80, 1300},
          {"paris", 33.66, -95.56, 25},  // Paris, Texas
        }},
        {"oregon", 43.8, -120.6, {
          {"portland", 45.52, -122.68, 650},
          {"eugene", 44.05, -123.09, 172},
        }},
        {"maine", 45.3, -69.2, {
          {"portland", 43.66, -70.26, 68},  // Portland, Maine
          {"bangor", 44.80, -68.77, 32},
        }},
        {"massachusetts", 42.4, -71.4, {
          {"boston", 42.36, -71.06, 690},
          {"cambridge", 42.37, -71.11, 118},  // Cambridge, MA
          {"springfield", 42.10, -72.59, 155},
        }},
        {"illinois", 40.0, -89.0, {
          {"chicago", 41.88, -87.63, 2700},
          {"springfield", 39.80, -89.64, 114},  // Springfield, IL
        }},
        {"washington state", 47.4, -120.7, {
          {"seattle", 47.61, -122.33, 750},
          {"vancouver", 45.64, -122.66, 190},  // Vancouver, WA
          {"spokane", 47.66, -117.43, 229},
        }},
      }},
      {"canada", 56.1, -106.3, {
        {"british columbia", 53.7, -127.6, {
          {"vancouver", 49.28, -123.12, 675},  // Vancouver, BC
          {"victoria", 48.43, -123.37, 92},
          {"whistler", 50.12, -122.95, 12},
        }},
        {"ontario", 51.3, -85.3, {
          {"toronto", 43.65, -79.38, 2900},
          {"ottawa", 45.42, -75.70, 1000},
          {"london", 42.98, -81.25, 404},  // London, Ontario
        }},
        {"quebec", 52.9, -73.5, {
          {"montreal", 45.50, -73.57, 1780},
          {"quebec city", 46.81, -71.21, 540},
        }},
      }},
      {"united kingdom", 55.4, -3.4, {
        {"england", 52.4, -1.5, {
          {"london", 51.51, -0.13, 8900},
          {"manchester", 53.48, -2.24, 550},
          {"cambridge", 52.21, 0.12, 125},  // Cambridge, UK
          {"birmingham", 52.49, -1.89, 1140},
        }},
        {"scotland", 56.5, -4.2, {
          {"edinburgh", 55.95, -3.19, 525},
          {"glasgow", 55.86, -4.25, 635},
        }},
        {"wales", 52.1, -3.8, {
          {"cardiff", 51.48, -3.18, 365},
          {"swansea", 51.62, -3.94, 246},
        }},
      }},
      {"france", 46.2, 2.2, {
        {"ile de france", 48.8, 2.5, {
          {"paris", 48.86, 2.35, 2140},  // Paris, France
          {"versailles", 48.80, 2.13, 85},
        }},
        {"provence", 43.9, 6.0, {
          {"marseille", 43.30, 5.37, 870},
          {"nice", 43.71, 7.26, 342},
          {"avignon", 43.95, 4.81, 92},
        }},
        {"rhone alpes", 45.4, 4.8, {
          {"lyon", 45.76, 4.84, 515},
          {"grenoble", 45.19, 5.72, 158},
          {"chamonix", 45.92, 6.87, 9},
        }},
      }},
      {"germany", 51.2, 10.5, {
        {"bavaria", 48.8, 11.4, {
          {"munich", 48.14, 11.58, 1470},
          {"nuremberg", 49.45, 11.08, 515},
        }},
        {"berlin region", 52.5, 13.4, {
          {"berlin", 52.52, 13.40, 3640},
          {"potsdam", 52.39, 13.06, 180},
        }},
        {"hesse", 50.6, 9.0, {
          {"frankfurt", 50.11, 8.68, 750},
          {"wiesbaden", 50.08, 8.24, 278},
        }},
      }},
      {"italy", 41.9, 12.6, {
        {"lazio", 41.9, 12.7, {
          {"rome", 41.90, 12.50, 2870},
        }},
        {"tuscany", 43.4, 11.0, {
          {"florence", 43.77, 11.26, 380},
          {"pisa", 43.72, 10.40, 90},
          {"siena", 43.32, 11.33, 54},
        }},
        {"veneto", 45.6, 11.8, {
          {"venice", 45.44, 12.32, 260},
          {"verona", 45.44, 10.99, 258},
        }},
      }},
      {"spain", 40.5, -3.7, {
        {"madrid region", 40.4, -3.7, {
          {"madrid", 40.42, -3.70, 3220},
        }},
        {"catalonia", 41.8, 1.5, {
          {"barcelona", 41.39, 2.17, 1620},
          {"girona", 41.98, 2.82, 100},
        }},
        {"andalusia", 37.5, -4.7, {
          {"seville", 37.39, -5.99, 690},
          {"granada", 37.18, -3.60, 232},
          {"malaga", 36.72, -4.42, 575},
        }},
      }},
      {"japan", 36.2, 138.3, {
        {"kanto", 35.9, 139.8, {
          {"tokyo", 35.68, 139.69, 13960},
          {"yokohama", 35.44, 139.64, 3750},
        }},
        {"kansai", 34.9, 135.6, {
          {"osaka", 34.69, 135.50, 2750},
          {"kyoto", 35.01, 135.77, 1460},
          {"nara", 34.69, 135.80, 355},
        }},
        {"hokkaido", 43.2, 142.8, {
          {"sapporo", 43.06, 141.35, 1970},
          {"hakodate", 41.77, 140.73, 250},
        }},
      }},
      {"australia", -25.3, 133.8, {
        {"new south wales", -32.0, 147.0, {
          {"sydney", -33.87, 151.21, 5300},
          {"newcastle", -32.93, 151.78, 322},
        }},
        {"victoria state", -36.9, 144.3, {
          {"melbourne", -37.81, 144.96, 5080},
          {"geelong", -38.15, 144.36, 253},
        }},
        {"queensland", -22.6, 144.6, {
          {"brisbane", -27.47, 153.03, 2560},
          {"cairns", -16.92, 145.77, 153},
        }},
      }},
      {"china", 35.9, 104.2, {
        {"beijing region", 39.9, 116.4, {
          {"beijing", 39.90, 116.41, 21540},
        }},
        {"guangdong", 23.4, 113.4, {
          {"guangzhou", 23.13, 113.26, 14900},
          {"shenzhen", 22.54, 114.06, 12530},
        }},
        {"shanghai region", 31.2, 121.5, {
          {"shanghai", 31.23, 121.47, 24280},
        }},
      }},
      {"india", 20.6, 79.0, {
        {"maharashtra", 19.8, 75.7, {
          {"mumbai", 19.08, 72.88, 12440},
          {"pune", 18.52, 73.86, 3120},
        }},
        {"karnataka", 15.3, 75.7, {
          {"bangalore", 12.97, 77.59, 8440},
          {"mysore", 12.30, 76.64, 920},
        }},
        {"delhi region", 28.7, 77.1, {
          {"delhi", 28.70, 77.10, 11030},
        }},
      }},
      {"brazil", -14.2, -51.9, {
        {"sao paulo state", -22.0, -48.0, {
          {"sao paulo", -23.55, -46.63, 12330},
          {"campinas", -22.91, -47.06, 1200},
        }},
        {"rio de janeiro state", -22.2, -42.7, {
          {"rio de janeiro", -22.91, -43.17, 6750},
          {"niteroi", -22.88, -43.10, 515},
        }},
      }},
      {"mexico", 23.6, -102.5, {
        {"mexico city region", 19.4, -99.1, {
          {"mexico city", 19.43, -99.13, 9200},
        }},
        {"jalisco", 20.7, -103.3, {
          {"guadalajara", 20.66, -103.35, 1460},
          {"puerto vallarta", 20.65, -105.23, 225},
        }},
      }},
      {"south africa", -30.6, 22.9, {
        {"western cape", -33.2, 20.5, {
          {"cape town", -33.92, 18.42, 4620},
          {"stellenbosch", -33.93, 18.86, 156},
        }},
        {"gauteng", -26.3, 28.2, {
          {"johannesburg", -26.20, 28.05, 5640},
          {"pretoria", -25.75, 28.19, 2470},
        }},
      }},
  };
  return spec;
}

// Syllables used to assemble synthetic place names.
const char* const kOnsets[] = {"ba", "ke", "li", "mo", "nu",  "pra", "sto",
                               "tri", "vel", "zor", "qua", "fen", "gos", "hy"};
const char* const kCodas[] = {"ton", "ville", "berg", "mar",  "dale", "port",
                              "field", "stad", "mire", "holm", "gate", "ford"};

std::string SyntheticName(Random& rng, const char* suffix) {
  const int n_onsets = static_cast<int>(std::size(kOnsets));
  const int n_codas = static_cast<int>(std::size(kCodas));
  std::string name = kOnsets[rng.UniformUint64(n_onsets)];
  name += kOnsets[rng.UniformUint64(n_onsets)];
  name += kCodas[rng.UniformUint64(n_codas)];
  if (suffix[0] != '\0') {
    name += ' ';
    name += suffix;
  }
  return name;
}

}  // namespace

LocationOntology BuildWorldGazetteer() {
  LocationOntology ontology;
  for (const auto& country : WorldSpec()) {
    const LocationId country_id =
        ontology.AddNode(country.name, LocationLevel::kCountry,
                         ontology.root(), {country.lat, country.lon}, 0.0);
    for (const auto& region : country.regions) {
      const LocationId region_id =
          ontology.AddNode(region.name, LocationLevel::kRegion, country_id,
                           {region.lat, region.lon}, 0.0);
      for (const auto& city : region.cities) {
        ontology.AddNode(city.name, LocationLevel::kCity, region_id,
                         {city.lat, city.lon}, city.pop_thousands * 1000.0);
      }
    }
  }
  // Common aliases exercised by the extractor tests and examples.
  auto alias = [&](const char* name, const char* alias_name) {
    const auto ids = ontology.Lookup(name);
    PWS_CHECK(!ids.empty()) << "alias target missing: " << name;
    // Attach to the most populous match.
    LocationId best = ids[0];
    for (LocationId id : ids) {
      if (ontology.node(id).population > ontology.node(best).population) {
        best = id;
      }
    }
    ontology.AddAlias(best, alias_name);
  };
  alias("new york", "nyc");
  alias("new york", "new york city");
  alias("san francisco", "sf");
  alias("los angeles", "la");
  alias("united kingdom", "uk");
  alias("united states", "usa");
  alias("united states", "america");
  return ontology;
}

LocationOntology BuildSyntheticGazetteer(
    const SyntheticGazetteerOptions& options, Random& rng) {
  PWS_CHECK_GT(options.num_countries, 0);
  PWS_CHECK_GT(options.regions_per_country, 0);
  PWS_CHECK_GT(options.cities_per_region, 0);
  LocationOntology ontology;
  std::vector<std::string> city_names;
  for (int c = 0; c < options.num_countries; ++c) {
    const GeoPoint country_center{rng.UniformDouble(-60.0, 70.0),
                                  rng.UniformDouble(-180.0, 180.0)};
    const LocationId country_id =
        ontology.AddNode(SyntheticName(rng, "land"), LocationLevel::kCountry,
                         ontology.root(), country_center, 0.0);
    for (int r = 0; r < options.regions_per_country; ++r) {
      const GeoPoint region_center{
          country_center.lat + rng.Gaussian(0.0, 3.0),
          country_center.lon + rng.Gaussian(0.0, 3.0)};
      const LocationId region_id = ontology.AddNode(
          SyntheticName(rng, "province"), LocationLevel::kRegion, country_id,
          region_center, 0.0);
      for (int k = 0; k < options.cities_per_region; ++k) {
        std::string name;
        if (!city_names.empty() &&
            rng.Bernoulli(options.duplicate_name_fraction)) {
          name = city_names[rng.UniformUint64(city_names.size())];
        } else {
          name = SyntheticName(rng, "");
        }
        city_names.push_back(name);
        const GeoPoint city{region_center.lat + rng.Gaussian(0.0, 0.8),
                            region_center.lon + rng.Gaussian(0.0, 0.8)};
        ontology.AddNode(name, LocationLevel::kCity, region_id, city,
                         rng.UniformDouble(10e3, 5e6));
      }
    }
  }
  return ontology;
}

}  // namespace pws::geo
