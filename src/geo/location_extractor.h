#ifndef PWS_GEO_LOCATION_EXTRACTOR_H_
#define PWS_GEO_LOCATION_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "geo/location_ontology.h"

namespace pws::geo {

/// One resolved place mention in a text.
struct LocationMention {
  LocationId location = kInvalidLocation;
  /// Token offset of the mention start in the tokenized input.
  int token_offset = 0;
  /// Mention length in tokens (multi-word names span several tokens).
  int token_length = 1;
  /// The surface form that matched (normalized).
  std::string surface;
};

/// Extractor configuration.
struct LocationExtractorOptions {
  /// Weight of the population prior (log scale) in candidate scoring.
  double population_weight = 0.5;
  /// Weight of context agreement (ontology similarity to other mentions
  /// already found in the same text). Must dominate the population prior
  /// when context is strong: "dallas ... paris" should pick Paris, Texas
  /// even though Paris, France is far bigger.
  double context_weight = 6.0;
  /// Two disambiguation passes: the second pass re-scores every mention
  /// against the full mention context discovered in the first pass.
  bool second_pass = true;
};

/// Finds gazetteer mentions in text by greedy longest-match over the token
/// stream and resolves ambiguous names (two Portlands, two Cambridges...)
/// with a population prior plus context agreement: candidates close in the
/// ontology to the other places mentioned in the same text win.
///
/// This stands in for the paper's location-concept extraction step that
/// scans result documents against the predefined location ontology.
class LocationExtractor {
 public:
  /// `ontology` must outlive the extractor.
  LocationExtractor(const LocationOntology* ontology,
                    LocationExtractorOptions options);

  /// Extracts mentions from raw text (tokenized internally with stopwords
  /// kept, so "isle of skye"-style names survive).
  std::vector<LocationMention> Extract(std::string_view raw_text) const;

  /// Extracts from a pre-tokenized, lowercased token stream.
  std::vector<LocationMention> ExtractFromTokens(
      const std::vector<std::string>& tokens) const;

 private:
  /// Scores one candidate given already-chosen context locations.
  double ScoreCandidate(LocationId candidate,
                        const std::vector<LocationId>& context) const;

  const LocationOntology* ontology_;
  LocationExtractorOptions options_;
};

}  // namespace pws::geo

#endif  // PWS_GEO_LOCATION_EXTRACTOR_H_
