#include "geo/location_ontology.h"

#include <algorithm>
#include <limits>

#include "text/tokenizer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pws::geo {

const char* LocationLevelToString(LocationLevel level) {
  switch (level) {
    case LocationLevel::kWorld:
      return "world";
    case LocationLevel::kCountry:
      return "country";
    case LocationLevel::kRegion:
      return "region";
    case LocationLevel::kCity:
      return "city";
  }
  return "unknown";
}

LocationOntology::LocationOntology() {
  LocationNode world;
  world.id = 0;
  world.name = "world";
  world.level = LocationLevel::kWorld;
  world.parent = kInvalidLocation;
  nodes_.push_back(std::move(world));
  IndexName("world", 0);
}

std::string LocationOntology::NormalizeName(std::string_view name) {
  return StrJoin(text::Tokenize(name), " ");
}

void LocationOntology::IndexName(const std::string& normalized,
                                 LocationId id) {
  PWS_CHECK(!normalized.empty());
  name_index_[normalized].push_back(id);
  const int tokens =
      1 + static_cast<int>(std::count(normalized.begin(), normalized.end(), ' '));
  max_name_tokens_ = std::max(max_name_tokens_, tokens);
}

LocationId LocationOntology::AddNode(std::string_view name,
                                     LocationLevel level, LocationId parent,
                                     GeoPoint coords, double population) {
  PWS_CHECK_GE(parent, 0);
  PWS_CHECK_LT(parent, size());
  PWS_CHECK(static_cast<int>(level) == static_cast<int>(nodes_[parent].level) + 1)
      << "node level must be exactly one below its parent ("
      << LocationLevelToString(level) << " under "
      << LocationLevelToString(nodes_[parent].level) << ")";
  LocationNode node;
  node.id = static_cast<LocationId>(nodes_.size());
  node.name = NormalizeName(name);
  node.level = level;
  node.parent = parent;
  node.coords = coords;
  node.population = population;
  nodes_[parent].children.push_back(node.id);
  IndexName(node.name, node.id);
  nodes_.push_back(std::move(node));
  return static_cast<LocationId>(nodes_.size()) - 1;
}

void LocationOntology::AddAlias(LocationId id, std::string_view alias) {
  PWS_CHECK_GE(id, 0);
  PWS_CHECK_LT(id, size());
  IndexName(NormalizeName(alias), id);
}

const LocationNode& LocationOntology::node(LocationId id) const {
  PWS_CHECK_GE(id, 0);
  PWS_CHECK_LT(id, size());
  return nodes_[id];
}

std::vector<LocationId> LocationOntology::Lookup(std::string_view name) const {
  auto it = name_index_.find(NormalizeName(name));
  if (it == name_index_.end()) return {};
  return it->second;
}

std::vector<std::pair<std::string, LocationId>> LocationOntology::AllNames()
    const {
  std::vector<std::pair<std::string, LocationId>> out;
  for (const auto& [name, ids] : name_index_) {
    for (LocationId id : ids) out.push_back({name, id});
  }
  std::sort(out.begin(), out.end());
  return out;
}

int LocationOntology::Depth(LocationId id) const {
  int depth = 0;
  for (LocationId cur = id; node(cur).parent != kInvalidLocation;
       cur = node(cur).parent) {
    ++depth;
  }
  return depth;
}

bool LocationOntology::IsAncestorOf(LocationId ancestor, LocationId id) const {
  PWS_CHECK_GE(ancestor, 0);
  for (LocationId cur = id; cur != kInvalidLocation; cur = node(cur).parent) {
    if (cur == ancestor) return true;
  }
  return false;
}

LocationId LocationOntology::LowestCommonAncestor(LocationId a,
                                                  LocationId b) const {
  int da = Depth(a);
  int db = Depth(b);
  while (da > db) {
    a = node(a).parent;
    --da;
  }
  while (db > da) {
    b = node(b).parent;
    --db;
  }
  while (a != b) {
    a = node(a).parent;
    b = node(b).parent;
  }
  return a;
}

double LocationOntology::Similarity(LocationId a, LocationId b) const {
  const int da = Depth(a);
  const int db = Depth(b);
  if (da + db == 0) return 1.0;  // both are the world root
  const int dlca = Depth(LowestCommonAncestor(a, b));
  return 2.0 * dlca / (da + db);
}

std::vector<LocationId> LocationOntology::PathToRoot(LocationId id) const {
  std::vector<LocationId> path;
  for (LocationId cur = id; cur != kInvalidLocation; cur = node(cur).parent) {
    path.push_back(cur);
  }
  return path;
}

std::vector<LocationId> LocationOntology::CitiesUnder(LocationId id) const {
  std::vector<LocationId> cities;
  std::vector<LocationId> stack = {id};
  while (!stack.empty()) {
    const LocationId cur = stack.back();
    stack.pop_back();
    if (node(cur).level == LocationLevel::kCity) cities.push_back(cur);
    for (LocationId child : node(cur).children) stack.push_back(child);
  }
  std::sort(cities.begin(), cities.end());
  return cities;
}

std::vector<LocationId> LocationOntology::NodesAtLevel(
    LocationLevel level) const {
  std::vector<LocationId> out;
  for (const auto& n : nodes_) {
    if (n.level == level) out.push_back(n.id);
  }
  return out;
}

LocationId LocationOntology::NearestCity(const GeoPoint& point) const {
  LocationId best = kInvalidLocation;
  double best_km = std::numeric_limits<double>::infinity();
  for (const auto& n : nodes_) {
    if (n.level != LocationLevel::kCity) continue;
    const double km = HaversineKm(point, n.coords);
    if (km < best_km) {
      best_km = km;
      best = n.id;
    }
  }
  return best;
}

}  // namespace pws::geo
