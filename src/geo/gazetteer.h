#ifndef PWS_GEO_GAZETTEER_H_
#define PWS_GEO_GAZETTEER_H_

#include "geo/location_ontology.h"
#include "util/random.h"

namespace pws::geo {

/// Builds the compiled-in world gazetteer: ~14 countries, ~30 regions and
/// ~100 cities with approximate real coordinates and populations. The set
/// deliberately contains ambiguous names (Portland OR/ME, Paris FR/TX,
/// Cambridge UK/MA, Springfield IL/MA, Vancouver CA/US) to exercise the
/// extractor's disambiguation, plus common aliases (nyc, uk, sf, la).
LocationOntology BuildWorldGazetteer();

/// Parameters for the synthetic gazetteer used in scale tests.
struct SyntheticGazetteerOptions {
  int num_countries = 10;
  int regions_per_country = 4;
  int cities_per_region = 8;
  /// Fraction of cities that reuse an earlier city's name, creating
  /// ambiguity on purpose.
  double duplicate_name_fraction = 0.05;
};

/// Generates a gazetteer with pronounceable invented names and coherent
/// geography (cities cluster near their region's centre; regions cluster
/// within their country). Deterministic given `rng`'s seed.
LocationOntology BuildSyntheticGazetteer(const SyntheticGazetteerOptions& options,
                                         Random& rng);

}  // namespace pws::geo

#endif  // PWS_GEO_GAZETTEER_H_
