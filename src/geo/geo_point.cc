#include "geo/geo_point.h"

#include <cmath>

#include "util/check.h"

namespace pws::geo {
namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineKm(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, s)));
}

double DistanceDecay(double distance_km, double scale_km) {
  PWS_CHECK_GT(scale_km, 0.0);
  if (distance_km < 0.0) distance_km = 0.0;
  return std::exp(-distance_km / scale_km);
}

}  // namespace pws::geo
