#include "geo/location_extractor.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"
#include "util/check.h"
#include "util/string_util.h"

namespace pws::geo {

LocationExtractor::LocationExtractor(const LocationOntology* ontology,
                                     LocationExtractorOptions options)
    : ontology_(ontology), options_(options) {
  PWS_CHECK(ontology_ != nullptr);
}

double LocationExtractor::ScoreCandidate(
    LocationId candidate, const std::vector<LocationId>& context) const {
  double score =
      options_.population_weight *
      std::log1p(ontology_->node(candidate).population / 1000.0);
  if (!context.empty()) {
    double agreement = 0.0;
    for (LocationId other : context) {
      if (other == candidate) continue;
      agreement = std::max(agreement, ontology_->Similarity(candidate, other));
    }
    score += options_.context_weight * agreement;
  }
  return score;
}

std::vector<LocationMention> LocationExtractor::Extract(
    std::string_view raw_text) const {
  return ExtractFromTokens(text::Tokenize(raw_text));
}

std::vector<LocationMention> LocationExtractor::ExtractFromTokens(
    const std::vector<std::string>& tokens) const {
  struct RawMatch {
    int offset;
    int length;
    std::string surface;
    std::vector<LocationId> candidates;
  };
  std::vector<RawMatch> matches;
  const int max_tokens = ontology_->max_name_tokens();
  int i = 0;
  const int n = static_cast<int>(tokens.size());
  // Greedy longest-match scan.
  while (i < n) {
    int matched_len = 0;
    std::vector<LocationId> matched_ids;
    std::string matched_surface;
    std::string window;
    for (int len = 1; len <= max_tokens && i + len <= n; ++len) {
      if (len == 1) {
        window = tokens[i];
      } else {
        window += ' ';
        window += tokens[i + len - 1];
      }
      auto ids = ontology_->Lookup(window);
      if (!ids.empty()) {
        matched_len = len;
        matched_ids = std::move(ids);
        matched_surface = window;
      }
    }
    if (matched_len > 0) {
      // The world root is never a useful mention.
      std::vector<LocationId> filtered;
      for (LocationId id : matched_ids) {
        if (id != ontology_->root()) filtered.push_back(id);
      }
      if (!filtered.empty()) {
        matches.push_back(
            {i, matched_len, std::move(matched_surface), std::move(filtered)});
      }
      i += matched_len;
    } else {
      ++i;
    }
  }

  // Pass 1: resolve left to right, using what is already resolved as
  // context.
  std::vector<LocationId> resolved(matches.size(), kInvalidLocation);
  std::vector<LocationId> context;
  for (size_t m = 0; m < matches.size(); ++m) {
    LocationId best = matches[m].candidates[0];
    double best_score = ScoreCandidate(best, context);
    for (size_t c = 1; c < matches[m].candidates.size(); ++c) {
      const double score = ScoreCandidate(matches[m].candidates[c], context);
      if (score > best_score) {
        best_score = score;
        best = matches[m].candidates[c];
      }
    }
    resolved[m] = best;
    context.push_back(best);
  }

  // Pass 2: re-resolve each mention against the full context (helps the
  // first mention, which had no context in pass 1).
  if (options_.second_pass) {
    for (size_t m = 0; m < matches.size(); ++m) {
      std::vector<LocationId> others;
      others.reserve(resolved.size() - 1);
      for (size_t o = 0; o < resolved.size(); ++o) {
        if (o != m) others.push_back(resolved[o]);
      }
      LocationId best = matches[m].candidates[0];
      double best_score = ScoreCandidate(best, others);
      for (size_t c = 1; c < matches[m].candidates.size(); ++c) {
        const double score = ScoreCandidate(matches[m].candidates[c], others);
        if (score > best_score) {
          best_score = score;
          best = matches[m].candidates[c];
        }
      }
      resolved[m] = best;
    }
  }

  std::vector<LocationMention> mentions;
  mentions.reserve(matches.size());
  for (size_t m = 0; m < matches.size(); ++m) {
    LocationMention mention;
    mention.location = resolved[m];
    mention.token_offset = matches[m].offset;
    mention.token_length = matches[m].length;
    mention.surface = matches[m].surface;
    mentions.push_back(std::move(mention));
  }
  return mentions;
}

}  // namespace pws::geo
