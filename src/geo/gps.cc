#include "geo/gps.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"

namespace pws::geo {
namespace {

// ~111 km per degree of latitude; longitude shrinks with cos(lat) but the
// traces are local enough that a flat approximation suffices.
constexpr double kKmPerDegree = 111.0;

GeoPoint JitterAround(const GeoPoint& center, double radius_km, Random& rng) {
  const double r = radius_km * rng.UniformDouble();
  const double theta = rng.UniformDouble(0.0, 2.0 * M_PI);
  return {center.lat + (r / kKmPerDegree) * std::sin(theta),
          center.lon + (r / kKmPerDegree) * std::cos(theta)};
}

}  // namespace

GpsTrace GenerateGpsTrace(const LocationOntology& ontology,
                          LocationId home_city, const GpsTraceOptions& options,
                          Random& rng) {
  PWS_CHECK_GE(home_city, 0);
  PWS_CHECK_GT(options.fixes_per_day, 0);
  PWS_CHECK_GE(options.num_days, 0);
  const GeoPoint home = ontology.node(home_city).coords;
  GpsTrace trace;
  trace.reserve(static_cast<size_t>(options.fixes_per_day) * options.num_days);
  for (int day = 0; day < options.num_days; ++day) {
    const bool travelling = options.travel_city != kInvalidLocation &&
                            rng.Bernoulli(options.travel_day_probability);
    const GeoPoint anchor =
        travelling ? ontology.node(options.travel_city).coords : home;
    for (int f = 0; f < options.fixes_per_day; ++f) {
      GpsPoint fix;
      fix.time_days =
          day + (f + rng.UniformDouble()) / options.fixes_per_day;
      fix.point = JitterAround(anchor, options.local_radius_km, rng);
      trace.push_back(fix);
    }
  }
  return trace;
}

std::vector<std::pair<LocationId, int>> CityVisitCounts(
    const LocationOntology& ontology, const GpsTrace& trace) {
  std::unordered_map<LocationId, int> counts;
  for (const auto& fix : trace) {
    const LocationId city = ontology.NearestCity(fix.point);
    if (city != kInvalidLocation) ++counts[city];
  }
  std::vector<std::pair<LocationId, int>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace pws::geo
