#ifndef PWS_GEO_GPS_H_
#define PWS_GEO_GPS_H_

#include <vector>

#include "geo/geo_point.h"
#include "geo/location_ontology.h"
#include "util/random.h"

namespace pws::geo {

/// One GPS fix: a position with a timestamp in fractional days since the
/// start of the simulation.
struct GpsPoint {
  double time_days = 0.0;
  GeoPoint point;
};

/// A time-ordered sequence of fixes for one user/device.
using GpsTrace = std::vector<GpsPoint>;

/// Parameters of the synthetic trace generator (substitute for the
/// paper's mobile-device GPS logs; see DESIGN.md §2).
struct GpsTraceOptions {
  /// Fixes per simulated day.
  int fixes_per_day = 8;
  /// Number of days covered.
  int num_days = 14;
  /// Jitter around the anchor city, in km (commute radius).
  double local_radius_km = 8.0;
  /// Probability that a given day is spent travelling at `travel_city`.
  double travel_day_probability = 0.0;
  /// City visited on travel days (kInvalidLocation disables travel).
  LocationId travel_city = kInvalidLocation;
};

/// Generates a trace anchored at `home_city`: on normal days fixes jitter
/// within `local_radius_km` of home; on travel days they jitter around
/// `travel_city`. Deterministic given the RNG seed.
GpsTrace GenerateGpsTrace(const LocationOntology& ontology,
                          LocationId home_city, const GpsTraceOptions& options,
                          Random& rng);

/// Histogram of a trace over cities: for every fix, the nearest city gets
/// one count. Returns (city id, count) pairs sorted by descending count.
std::vector<std::pair<LocationId, int>> CityVisitCounts(
    const LocationOntology& ontology, const GpsTrace& trace);

}  // namespace pws::geo

#endif  // PWS_GEO_GPS_H_
