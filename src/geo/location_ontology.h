#ifndef PWS_GEO_LOCATION_ONTOLOGY_H_
#define PWS_GEO_LOCATION_ONTOLOGY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/geo_point.h"

namespace pws::geo {

/// Dense node id within a LocationOntology; -1 means "no location".
using LocationId = int32_t;
inline constexpr LocationId kInvalidLocation = -1;

/// Hierarchy levels, root to leaf.
enum class LocationLevel : int {
  kWorld = 0,
  kCountry = 1,
  kRegion = 2,
  kCity = 3,
};

const char* LocationLevelToString(LocationLevel level);

/// One gazetteer entry: a named place with a position in the hierarchy,
/// coordinates, and a population prior used for disambiguation.
struct LocationNode {
  LocationId id = kInvalidLocation;
  std::string name;  // Normalized: lowercase, single spaces.
  LocationLevel level = LocationLevel::kWorld;
  LocationId parent = kInvalidLocation;
  std::vector<LocationId> children;
  GeoPoint coords;
  double population = 0.0;
};

/// The hierarchical gazetteer: world → country → region → city, with
/// name/alias lookup, ancestor queries, and an ontology similarity used
/// for location preference matching. This is the "predefined location
/// ontology" of the paper; see gazetteer.h for the curated instance.
///
/// Node 0 is always the world root. Names need not be unique — Lookup
/// returns every node carrying the name (e.g. the two Portlands), and the
/// LocationExtractor disambiguates.
class LocationOntology {
 public:
  /// Creates an ontology containing only the world root (node 0).
  LocationOntology();

  /// Adds a node under `parent` (must exist). `name` is normalized
  /// internally. Returns the new node's id.
  LocationId AddNode(std::string_view name, LocationLevel level,
                     LocationId parent, GeoPoint coords, double population);

  /// Registers an extra lookup name for an existing node (e.g. "nyc").
  void AddAlias(LocationId id, std::string_view alias);

  int size() const { return static_cast<int>(nodes_.size()); }
  LocationId root() const { return 0; }
  const LocationNode& node(LocationId id) const;

  /// All nodes whose name or alias matches `name` (normalized first).
  /// Returns an empty vector for unknown names.
  std::vector<LocationId> Lookup(std::string_view name) const;

  /// Every registered (name, node) pair — primary names and aliases —
  /// sorted by name then id. Lets persistence round-trip aliases.
  std::vector<std::pair<std::string, LocationId>> AllNames() const;

  /// Longest registered name/alias, in tokens (bounds extractor windows).
  int max_name_tokens() const { return max_name_tokens_; }

  /// Depth of `id` (world = 0, city = 3 in a full chain).
  int Depth(LocationId id) const;

  /// True when `ancestor` lies on the path from `id` to the root
  /// (a node is its own ancestor).
  bool IsAncestorOf(LocationId ancestor, LocationId id) const;

  /// Lowest common ancestor of two nodes.
  LocationId LowestCommonAncestor(LocationId a, LocationId b) const;

  /// Wu–Palmer similarity 2·depth(lca) / (depth(a)+depth(b)) in [0, 1].
  /// Identical nodes score 1; nodes sharing only the world root score 0.
  double Similarity(LocationId a, LocationId b) const;

  /// Path from `id` up to and including the root.
  std::vector<LocationId> PathToRoot(LocationId id) const;

  /// All city-level descendants of `id` (id itself included if a city).
  std::vector<LocationId> CitiesUnder(LocationId id) const;

  /// All node ids at the given level.
  std::vector<LocationId> NodesAtLevel(LocationLevel level) const;

  /// The city whose coordinates are nearest to `point` (linear scan).
  /// Returns kInvalidLocation when the ontology has no cities.
  LocationId NearestCity(const GeoPoint& point) const;

  /// Normalizes a place name: lowercase, alnum tokens joined by single
  /// spaces ("New-York" -> "new york").
  static std::string NormalizeName(std::string_view name);

 private:
  std::vector<LocationNode> nodes_;
  std::unordered_map<std::string, std::vector<LocationId>> name_index_;
  int max_name_tokens_ = 1;

  void IndexName(const std::string& normalized, LocationId id);
};

}  // namespace pws::geo

#endif  // PWS_GEO_LOCATION_ONTOLOGY_H_
