#ifndef PWS_GEO_GEO_POINT_H_
#define PWS_GEO_GEO_POINT_H_

namespace pws::geo {

/// A WGS-84 coordinate pair in decimal degrees.
struct GeoPoint {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance between two points in kilometres (haversine,
/// spherical Earth with R = 6371 km — accurate to ~0.5%).
double HaversineKm(const GeoPoint& a, const GeoPoint& b);

/// Exponential distance decay exp(-distance_km / scale_km), used to turn
/// physical proximity into a [0, 1] affinity. scale_km must be > 0.
double DistanceDecay(double distance_km, double scale_km);

}  // namespace pws::geo

#endif  // PWS_GEO_GEO_POINT_H_
