#ifndef PWS_CLICK_RELEVANCE_H_
#define PWS_CLICK_RELEVANCE_H_

#include "click/query_generator.h"
#include "click/simulated_user.h"
#include "corpus/corpus.h"
#include "geo/location_ontology.h"

namespace pws::click {

/// Three-grade relevance, following the dwell-time labelling convention
/// common to log-based personalization studies.
enum class RelevanceGrade : int {
  kIrrelevant = 0,
  kRelevant = 1,
  kHighlyRelevant = 2,
};

/// Dwell-time thresholds (in abstract time units) separating the grades.
struct DwellGradeThresholds {
  double relevant_min = 50.0;
  double highly_relevant_min = 400.0;
};

/// Maps an observed interaction to a grade: no click -> irrelevant;
/// clicked with dwell in [relevant_min, highly_relevant_min) -> relevant;
/// longer dwell, or the session-ending click, -> highly relevant.
RelevanceGrade GradeFromDwell(bool clicked, double dwell_units,
                              bool last_click_in_session,
                              const DwellGradeThresholds& thresholds);

/// Ground-truth relevance weights.
struct RelevanceModelOptions {
  /// Weight of the intent topic vs. the user's general topical taste in
  /// the content component.
  double intent_topic_weight = 0.6;
  /// Relevance floor for location-free documents on located queries
  /// (a generic "best ski resorts" page is not useless for "ski whistler").
  double locationless_doc_score = 0.15;
  /// Grade cutoffs on the continuous relevance.
  double relevant_cutoff = 0.45;
  double highly_relevant_cutoff = 0.65;
};

/// Computes the *true* relevance of a document to (user, query intent) in
/// [0, 1] from generative ground truth. The engine never calls this; the
/// click simulator and evaluation harness do.
///
/// content = intent_topic_weight * doc-topic match on the query topic
///         + (1 - intent_topic_weight) * user's taste for the doc's mix
/// location = ontology similarity between the doc's city and the query's
///            explicit city (or home/affine places for implicit-local).
/// relevance = (1 - w) * content + w * location, w = location intent.
class RelevanceModel {
 public:
  RelevanceModel(const geo::LocationOntology* ontology,
                 RelevanceModelOptions options);

  /// Continuous relevance in [0, 1].
  double TrueRelevance(const SimulatedUser& user, const QueryIntent& intent,
                       const corpus::Document& doc) const;

  /// Continuous relevance thresholded to three grades.
  RelevanceGrade TrueGrade(const SimulatedUser& user,
                           const QueryIntent& intent,
                           const corpus::Document& doc) const;

  const RelevanceModelOptions& options() const { return options_; }

 private:
  double ContentScore(const SimulatedUser& user, const QueryIntent& intent,
                      const corpus::Document& doc) const;
  double LocationScore(const SimulatedUser& user, const QueryIntent& intent,
                       const corpus::Document& doc) const;

  const geo::LocationOntology* ontology_;
  RelevanceModelOptions options_;
};

}  // namespace pws::click

#endif  // PWS_CLICK_RELEVANCE_H_
