#include "click/relevance.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace pws::click {

RelevanceGrade GradeFromDwell(bool clicked, double dwell_units,
                              bool last_click_in_session,
                              const DwellGradeThresholds& thresholds) {
  if (!clicked) return RelevanceGrade::kIrrelevant;
  if (last_click_in_session) return RelevanceGrade::kHighlyRelevant;
  if (dwell_units >= thresholds.highly_relevant_min) {
    return RelevanceGrade::kHighlyRelevant;
  }
  if (dwell_units >= thresholds.relevant_min) {
    return RelevanceGrade::kRelevant;
  }
  return RelevanceGrade::kIrrelevant;
}

RelevanceModel::RelevanceModel(const geo::LocationOntology* ontology,
                               RelevanceModelOptions options)
    : ontology_(ontology), options_(options) {
  PWS_CHECK(ontology_ != nullptr);
}

double RelevanceModel::ContentScore(const SimulatedUser& user,
                                    const QueryIntent& intent,
                                    const corpus::Document& doc) const {
  PWS_CHECK_GE(intent.topic, 0);
  PWS_CHECK_LT(intent.topic,
               static_cast<int>(doc.topic_mixture_truth.size()));
  const double intent_match = doc.topic_mixture_truth[intent.topic];
  // Taste: how much the user likes the doc's topical blend, rescaled so a
  // doc fully on a favourite topic scores ~1.
  double taste = 0.0;
  double max_affinity = 0.0;
  for (double a : user.topic_affinity) max_affinity = std::max(max_affinity, a);
  if (max_affinity > 0.0) {
    for (size_t t = 0; t < doc.topic_mixture_truth.size(); ++t) {
      taste += doc.topic_mixture_truth[t] * user.topic_affinity[t];
    }
    taste /= max_affinity;
  }
  return options_.intent_topic_weight * intent_match +
         (1.0 - options_.intent_topic_weight) * taste;
}

double RelevanceModel::LocationScore(const SimulatedUser& user,
                                     const QueryIntent& intent,
                                     const corpus::Document& doc) const {
  if (doc.primary_location_truth == geo::kInvalidLocation) {
    return options_.locationless_doc_score;
  }
  if (intent.explicit_location != geo::kInvalidLocation) {
    return ontology_->Similarity(intent.explicit_location,
                                 doc.primary_location_truth);
  }
  if (intent.implicit_local) {
    // Blend of the home/affine-place match and the user's locality taste.
    const double affinity =
        user.LocationAffinity(*ontology_, doc.primary_location_truth);
    return user.locality_preference * affinity +
           (1.0 - user.locality_preference) * 0.3;
  }
  // Location-free query: a document's location neither helps nor hurts
  // much; mild preference for places the user cares about.
  return 0.3 + 0.2 * user.LocationAffinity(*ontology_,
                                           doc.primary_location_truth);
}

double RelevanceModel::TrueRelevance(const SimulatedUser& user,
                                     const QueryIntent& intent,
                                     const corpus::Document& doc) const {
  const double w = Clamp(intent.location_intent_weight, 0.0, 1.0);
  const double rel = (1.0 - w) * ContentScore(user, intent, doc) +
                     w * LocationScore(user, intent, doc);
  return Clamp(rel, 0.0, 1.0);
}

RelevanceGrade RelevanceModel::TrueGrade(const SimulatedUser& user,
                                         const QueryIntent& intent,
                                         const corpus::Document& doc) const {
  const double rel = TrueRelevance(user, intent, doc);
  if (rel >= options_.highly_relevant_cutoff) {
    return RelevanceGrade::kHighlyRelevant;
  }
  if (rel >= options_.relevant_cutoff) return RelevanceGrade::kRelevant;
  return RelevanceGrade::kIrrelevant;
}

}  // namespace pws::click
