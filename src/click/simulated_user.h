#ifndef PWS_CLICK_SIMULATED_USER_H_
#define PWS_CLICK_SIMULATED_USER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/topic_model.h"
#include "geo/gps.h"
#include "geo/location_ontology.h"
#include "util/random.h"

namespace pws::click {

/// Dense user id within a user population.
using UserId = int32_t;

/// A synthetic searcher with latent preferences — the substitute for the
/// paper's human subjects (DESIGN.md §2). The personalization pipeline
/// never reads these fields directly; they drive click simulation and
/// exact evaluation only.
struct SimulatedUser {
  UserId id = -1;
  /// Interest in each topic, sums to 1. Peaked on a few favourites.
  std::vector<double> topic_affinity;
  /// The user's home city in the gazetteer.
  geo::LocationId home_city = geo::kInvalidLocation;
  /// How strongly the user prefers results near home when the query has
  /// local intent but no explicit location, in [0, 1].
  double locality_preference = 0.5;
  /// Cities the user cares about beyond home (e.g. travel destinations),
  /// with affinities in [0, 1].
  std::vector<std::pair<geo::LocationId, double>> place_affinity;
  /// Simulated device positions (empty for desktop users).
  geo::GpsTrace gps_trace;

  /// Affinity for an arbitrary location: max over home (1.0) and
  /// place_affinity entries of affinity * ontology-similarity.
  double LocationAffinity(const geo::LocationOntology& ontology,
                          geo::LocationId location) const;
};

/// Population generation knobs.
struct UserPopulationOptions {
  int num_users = 50;
  /// Number of favourite topics per user (their affinity mass share).
  int favourite_topics = 3;
  double favourite_mass = 0.8;
  /// Fraction of users that also have a travel destination affinity.
  double traveller_fraction = 0.3;
  /// Generate GPS traces for this fraction of users.
  double gps_fraction = 0.5;
  geo::GpsTraceOptions gps;
};

/// Generates a deterministic population of users over `topics` and
/// `ontology`. Home cities are sampled population-weighted; travellers
/// get a second city plus GPS travel days there.
std::vector<SimulatedUser> GenerateUserPopulation(
    const corpus::TopicModel& topics, const geo::LocationOntology& ontology,
    const UserPopulationOptions& options, Random& rng);

}  // namespace pws::click

#endif  // PWS_CLICK_SIMULATED_USER_H_
