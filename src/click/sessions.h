#ifndef PWS_CLICK_SESSIONS_H_
#define PWS_CLICK_SESSIONS_H_

#include <vector>

#include "click/click_log.h"

namespace pws::click {

/// A search session: a maximal run of one user's impressions with no
/// gap exceeding the segmentation threshold. Time is measured in days
/// (the harness logs one integer day per impression; finer-grained
/// timestamps segment identically through the same API).
struct Session {
  UserId user = -1;
  int first_day = 0;
  int last_day = 0;
  /// Indices into the source ClickLog's records, in time order.
  std::vector<int> record_indices;

  int ImpressionCount() const {
    return static_cast<int>(record_indices.size());
  }
};

/// Segmentation options.
struct SessionOptions {
  /// A gap strictly greater than this many days starts a new session.
  double max_gap_days = 0.0;  // Default: one session per active day.
};

/// Splits a click log into per-user sessions by time gap — the standard
/// log-preprocessing step for session-aware personalization pipelines.
/// Records are processed in (user, day, log order); the relative order
/// of a user's same-day records is preserved.
std::vector<Session> SegmentSessions(const ClickLog& log,
                                     const SessionOptions& options);

/// Summary statistics over a segmentation (for log analyses).
struct SessionStats {
  int sessions = 0;
  double mean_impressions_per_session = 0.0;
  double mean_clicks_per_session = 0.0;
  /// Fraction of sessions whose every click shares one query text
  /// (single-intent sessions).
  double single_query_fraction = 0.0;
};

SessionStats ComputeSessionStats(const ClickLog& log,
                                 const std::vector<Session>& sessions);

}  // namespace pws::click

#endif  // PWS_CLICK_SESSIONS_H_
