#include "click/sessions.h"

#include <algorithm>
#include <map>
#include <set>

namespace pws::click {

std::vector<Session> SegmentSessions(const ClickLog& log,
                                     const SessionOptions& options) {
  // Group record indices per user, stably ordered by day then log order.
  std::map<UserId, std::vector<int>> per_user;
  for (int i = 0; i < log.size(); ++i) {
    per_user[log.record(i).user].push_back(i);
  }
  std::vector<Session> sessions;
  for (auto& [user, indices] : per_user) {
    std::stable_sort(indices.begin(), indices.end(), [&](int a, int b) {
      return log.record(a).day < log.record(b).day;
    });
    Session current;
    for (int index : indices) {
      const int day = log.record(index).day;
      if (current.record_indices.empty()) {
        current.user = user;
        current.first_day = day;
        current.last_day = day;
        current.record_indices.push_back(index);
        continue;
      }
      if (static_cast<double>(day - current.last_day) >
          options.max_gap_days) {
        sessions.push_back(std::move(current));
        current = Session{};
        current.user = user;
        current.first_day = day;
      }
      current.last_day = day;
      current.record_indices.push_back(index);
    }
    if (!current.record_indices.empty()) {
      sessions.push_back(std::move(current));
    }
  }
  return sessions;
}

SessionStats ComputeSessionStats(const ClickLog& log,
                                 const std::vector<Session>& sessions) {
  SessionStats stats;
  stats.sessions = static_cast<int>(sessions.size());
  if (sessions.empty()) return stats;
  double total_impressions = 0.0;
  double total_clicks = 0.0;
  int single_query = 0;
  for (const auto& session : sessions) {
    total_impressions += session.ImpressionCount();
    std::set<std::string> queries;
    for (int index : session.record_indices) {
      total_clicks += log.record(index).ClickCount();
      queries.insert(log.record(index).query_text);
    }
    if (queries.size() == 1) ++single_query;
  }
  stats.mean_impressions_per_session = total_impressions / sessions.size();
  stats.mean_clicks_per_session = total_clicks / sessions.size();
  stats.single_query_fraction =
      static_cast<double>(single_query) / sessions.size();
  return stats;
}

}  // namespace pws::click
