#ifndef PWS_CLICK_QUERY_GENERATOR_H_
#define PWS_CLICK_QUERY_GENERATOR_H_

#include <string>
#include <vector>

#include "corpus/topic_model.h"
#include "geo/location_ontology.h"
#include "util/random.h"

namespace pws::click {

/// The three query classes used throughout the reconstructed evaluation.
enum class QueryClass {
  /// "camera lens reviews" — the information need has no location aspect.
  kContentHeavy = 0,
  /// "hotel whistler" or a local-intent "restaurant menu" — the location
  /// aspect dominates.
  kLocationHeavy = 1,
  /// "university admission london" — both aspects matter.
  kMixed = 2,
};

const char* QueryClassToString(QueryClass query_class);

/// A query with its latent intent. The engine sees only `text`; the
/// simulator and the evaluation harness read the intent fields.
struct QueryIntent {
  int id = -1;
  std::string text;
  QueryClass query_class = QueryClass::kContentHeavy;
  /// The intended topic.
  int topic = -1;
  /// Explicit target location named in the text (kInvalidLocation when
  /// the query is location-free or implicitly local).
  geo::LocationId explicit_location = geo::kInvalidLocation;
  /// True when the query has local intent without naming a place ("pizza
  /// near me" behaviour): relevance then keys on the user's home city.
  bool implicit_local = false;
  /// Blend of the location aspect in ground-truth relevance, in [0, 1].
  double location_intent_weight = 0.0;
};

/// Query pool generation knobs.
struct QueryPoolOptions {
  int queries_per_class = 40;
  /// Location-heavy queries name an explicit city with this probability
  /// (otherwise they are implicit-local).
  double explicit_location_fraction = 0.5;
  /// Intent blend per class.
  double content_heavy_location_weight = 0.1;
  double location_heavy_location_weight = 0.65;
  double mixed_location_weight = 0.35;
};

/// Generates a pool of queries over the topic catalogue and gazetteer:
/// content-heavy queries use non-location-sensitive topics; location
/// queries use location-sensitive topics and (usually) name a city.
std::vector<QueryIntent> GenerateQueryPool(
    const corpus::TopicModel& topics, const geo::LocationOntology& ontology,
    const QueryPoolOptions& options, Random& rng);

}  // namespace pws::click

#endif  // PWS_CLICK_QUERY_GENERATOR_H_
