#ifndef PWS_CLICK_CLICK_MODEL_H_
#define PWS_CLICK_CLICK_MODEL_H_

#include "backend/search_backend.h"
#include "click/click_log.h"
#include "click/relevance.h"

namespace pws::click {

/// Position-biased cascade click model parameters.
struct ClickModelOptions {
  /// Probability of examining rank r is examination_decay^r. The default
  /// models study participants who scan most of the list (the paper's
  /// clickthrough came from instructed subjects); web-typical position
  /// bias would be ~0.8.
  double examination_decay = 0.93;
  /// Click probability given examination: sigmoid(gain*(rel - offset)).
  double attractiveness_gain = 7.0;
  double attractiveness_offset = 0.45;
  /// Probability of abandoning the page after a satisfying click, scaled
  /// by relevance.
  double satisfaction_stop_scale = 0.9;
  /// Dwell time: base + relevance^2 * span (+ Gaussian noise).
  double dwell_base = 20.0;
  double dwell_span = 600.0;
  double dwell_noise_stddev = 30.0;
};

/// Simulates how a user interacts with one result page: scan top-down
/// with geometric examination decay, click by relevance-driven
/// attractiveness, dwell longer on more relevant pages, stop when
/// satisfied. Produces the ClickRecord the learning pipeline consumes.
///
/// This is the behavioural substitute for the paper's human clickthrough
/// collection (DESIGN.md §2): it reproduces position bias, preference-
/// driven clicks, dwell-time signal, and noise.
class CascadeClickModel {
 public:
  CascadeClickModel(const RelevanceModel* relevance,
                    ClickModelOptions options);

  /// Simulates one impression. `day` stamps the record.
  ClickRecord Simulate(const SimulatedUser& user, const QueryIntent& intent,
                       const backend::ResultPage& page,
                       const corpus::Corpus& corpus, int day,
                       Random& rng) const;

  const ClickModelOptions& options() const { return options_; }

 private:
  const RelevanceModel* relevance_;
  ClickModelOptions options_;
};

}  // namespace pws::click

#endif  // PWS_CLICK_CLICK_MODEL_H_
