#include "click/query_generator.h"

#include <cmath>

#include "util/check.h"

namespace pws::click {
namespace {

// Picks a topic, preferring location-sensitive ones when `want_geo`.
int PickTopic(const corpus::TopicModel& topics, bool want_geo, Random& rng) {
  std::vector<double> weights(topics.num_topics());
  for (int t = 0; t < topics.num_topics(); ++t) {
    const bool geo = topics.topic(t).location_sensitive;
    weights[t] = (geo == want_geo) ? 1.0 : 0.05;
  }
  return rng.Categorical(weights);
}

}  // namespace

const char* QueryClassToString(QueryClass query_class) {
  switch (query_class) {
    case QueryClass::kContentHeavy:
      return "content-heavy";
    case QueryClass::kLocationHeavy:
      return "location-heavy";
    case QueryClass::kMixed:
      return "mixed";
  }
  return "unknown";
}

std::vector<QueryIntent> GenerateQueryPool(
    const corpus::TopicModel& topics, const geo::LocationOntology& ontology,
    const QueryPoolOptions& options, Random& rng) {
  PWS_CHECK_GT(options.queries_per_class, 0);
  const std::vector<geo::LocationId> cities =
      ontology.CitiesUnder(ontology.root());
  PWS_CHECK(!cities.empty());
  std::vector<double> city_weights;
  city_weights.reserve(cities.size());
  for (geo::LocationId city : cities) {
    city_weights.push_back(
        std::log1p(ontology.node(city).population / 1000.0) + 0.1);
  }

  std::vector<QueryIntent> pool;
  int next_id = 0;
  const QueryClass classes[] = {QueryClass::kContentHeavy,
                                QueryClass::kLocationHeavy,
                                QueryClass::kMixed};
  for (QueryClass query_class : classes) {
    for (int q = 0; q < options.queries_per_class; ++q) {
      QueryIntent intent;
      intent.id = next_id++;
      intent.query_class = query_class;
      const bool want_geo = query_class != QueryClass::kContentHeavy;
      intent.topic = PickTopic(topics, want_geo, rng);

      // Query text: one or two core terms of the topic.
      std::string text = topics.SampleCoreTerm(intent.topic, rng);
      if (rng.Bernoulli(0.6)) {
        const std::string& second = topics.SampleCoreTerm(intent.topic, rng);
        if (second != text) text += " " + second;
      }

      switch (query_class) {
        case QueryClass::kContentHeavy:
          intent.location_intent_weight =
              options.content_heavy_location_weight;
          break;
        case QueryClass::kLocationHeavy:
          intent.location_intent_weight =
              options.location_heavy_location_weight;
          if (rng.Bernoulli(options.explicit_location_fraction)) {
            intent.explicit_location = cities[rng.Categorical(city_weights)];
            text += " " + ontology.node(intent.explicit_location).name;
          } else {
            intent.implicit_local = true;
          }
          break;
        case QueryClass::kMixed:
          intent.location_intent_weight = options.mixed_location_weight;
          if (rng.Bernoulli(0.5)) {
            intent.explicit_location = cities[rng.Categorical(city_weights)];
            text += " " + ontology.node(intent.explicit_location).name;
          } else {
            intent.implicit_local = true;
          }
          break;
      }
      intent.text = std::move(text);
      pool.push_back(std::move(intent));
    }
  }
  return pool;
}

}  // namespace pws::click
