#include "click/click_log.h"

#include "util/check.h"
#include "util/string_util.h"

namespace pws::click {

int ClickRecord::ClickCount() const {
  int count = 0;
  for (const auto& i : interactions) {
    if (i.clicked) ++count;
  }
  return count;
}

int ClickRecord::FirstClickRank() const {
  int best = -1;
  for (const auto& i : interactions) {
    if (i.clicked && (best == -1 || i.rank < best)) best = i.rank;
  }
  return best;
}

std::vector<RelevanceGrade> ClickRecord::GradeInteractions(
    const DwellGradeThresholds& thresholds) const {
  std::vector<RelevanceGrade> grades;
  grades.reserve(interactions.size());
  for (const auto& i : interactions) {
    grades.push_back(GradeFromDwell(i.clicked, i.dwell_units,
                                    i.last_click_in_session, thresholds));
  }
  return grades;
}

void ClickLog::Add(ClickRecord record) { records_.push_back(std::move(record)); }

const ClickRecord& ClickLog::record(int index) const {
  PWS_CHECK_GE(index, 0);
  PWS_CHECK_LT(index, size());
  return records_[index];
}

std::vector<const ClickRecord*> ClickLog::RecordsForUser(UserId user) const {
  std::vector<const ClickRecord*> out;
  for (const auto& r : records_) {
    if (r.user == user) out.push_back(&r);
  }
  return out;
}

std::vector<const ClickRecord*> ClickLog::RecordsBeforeDay(
    int day_cutoff) const {
  std::vector<const ClickRecord*> out;
  for (const auto& r : records_) {
    if (r.day < day_cutoff) out.push_back(&r);
  }
  return out;
}

std::string ClickLog::ToTsv() const {
  std::string out;
  for (const auto& r : records_) {
    for (const auto& i : r.interactions) {
      out += std::to_string(r.user);
      out += '\t';
      out += std::to_string(r.day);
      out += '\t';
      out += std::to_string(r.query_id);
      out += '\t';
      out += r.query_text;
      out += '\t';
      out += std::to_string(i.doc);
      out += '\t';
      out += std::to_string(i.rank);
      out += '\t';
      out += i.clicked ? '1' : '0';
      out += '\t';
      out += FormatDouble(i.dwell_units, 2);
      out += '\t';
      out += i.last_click_in_session ? '1' : '0';
      out += '\n';
    }
  }
  return out;
}

StatusOr<ClickLog> ClickLog::FromTsv(const std::string& tsv) {
  ClickLog log;
  ClickRecord current;
  bool has_current = false;
  auto flush = [&]() {
    if (has_current) log.Add(std::move(current));
    current = ClickRecord{};
    has_current = false;
  };
  for (const std::string& line : SplitLines(tsv)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 9) {
      return InvalidArgumentError("bad click log line: " + line);
    }
    int64_t user = 0;
    int64_t day = 0;
    int64_t query_id = 0;
    int64_t doc = 0;
    int64_t rank = 0;
    double dwell = 0.0;
    if (!ParseInt64(fields[0], &user) || !ParseInt64(fields[1], &day) ||
        !ParseInt64(fields[2], &query_id) || !ParseInt64(fields[4], &doc) ||
        !ParseInt64(fields[5], &rank) || !ParseDouble(fields[7], &dwell)) {
      return InvalidArgumentError("bad numeric field in line: " + line);
    }
    const bool new_record =
        !has_current || current.user != static_cast<UserId>(user) ||
        current.day != static_cast<int>(day) ||
        current.query_id != static_cast<int>(query_id);
    if (new_record) {
      flush();
      current.user = static_cast<UserId>(user);
      current.day = static_cast<int>(day);
      current.query_id = static_cast<int>(query_id);
      current.query_text = fields[3];
      has_current = true;
    }
    Interaction interaction;
    interaction.doc = static_cast<corpus::DocId>(doc);
    interaction.rank = static_cast<int>(rank);
    interaction.clicked = fields[6] == "1";
    interaction.dwell_units = dwell;
    interaction.last_click_in_session = fields[8] == "1";
    current.interactions.push_back(interaction);
  }
  flush();
  return log;
}

}  // namespace pws::click
