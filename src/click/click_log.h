#ifndef PWS_CLICK_CLICK_LOG_H_
#define PWS_CLICK_CLICK_LOG_H_

#include <string>
#include <vector>

#include "click/relevance.h"
#include "click/simulated_user.h"
#include "corpus/document.h"
#include "util/status.h"

namespace pws::click {

/// One interaction with one shown result.
struct Interaction {
  corpus::DocId doc = corpus::kInvalidDoc;
  int rank = 0;  // Position at which the result was shown (0-based).
  bool clicked = false;
  double dwell_units = 0.0;
  bool last_click_in_session = false;
};

/// One logged impression: a user issued a query on a day, saw a ranked
/// list, and interacted with it.
struct ClickRecord {
  UserId user = -1;
  int day = 0;
  int query_id = -1;
  std::string query_text;
  std::vector<Interaction> interactions;

  /// Number of clicks in the record.
  int ClickCount() const;
  /// Rank (0-based) of the first click, or -1 when nothing was clicked.
  int FirstClickRank() const;
  /// Grades every interaction by dwell (the engine-facing relevance
  /// labels, as opposed to simulator ground truth).
  std::vector<RelevanceGrade> GradeInteractions(
      const DwellGradeThresholds& thresholds) const;
};

/// An append-only collection of ClickRecords with TSV (de)serialization —
/// the clickthrough dataset the learning pipeline consumes.
class ClickLog {
 public:
  ClickLog() = default;

  void Add(ClickRecord record);
  int size() const { return static_cast<int>(records_.size()); }
  const ClickRecord& record(int index) const;
  const std::vector<ClickRecord>& records() const { return records_; }

  /// Records of one user, in insertion order.
  std::vector<const ClickRecord*> RecordsForUser(UserId user) const;

  /// Records with day < `day_cutoff` (train/test splitting helper).
  std::vector<const ClickRecord*> RecordsBeforeDay(int day_cutoff) const;

  /// Serializes to TSV: one line per interaction, prefixed by the record
  /// key (user, day, query_id, query_text with spaces kept).
  std::string ToTsv() const;

  /// Parses the format produced by ToTsv (round-trip safe).
  static StatusOr<ClickLog> FromTsv(const std::string& tsv);

 private:
  std::vector<ClickRecord> records_;
};

}  // namespace pws::click

#endif  // PWS_CLICK_CLICK_LOG_H_
