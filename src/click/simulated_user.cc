#include "click/simulated_user.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pws::click {

double SimulatedUser::LocationAffinity(const geo::LocationOntology& ontology,
                                       geo::LocationId location) const {
  if (location == geo::kInvalidLocation) return 0.0;
  double best = 0.0;
  if (home_city != geo::kInvalidLocation) {
    best = ontology.Similarity(home_city, location);
  }
  for (const auto& [place, affinity] : place_affinity) {
    best = std::max(best, affinity * ontology.Similarity(place, location));
  }
  return best;
}

std::vector<SimulatedUser> GenerateUserPopulation(
    const corpus::TopicModel& topics, const geo::LocationOntology& ontology,
    const UserPopulationOptions& options, Random& rng) {
  PWS_CHECK_GT(options.num_users, 0);
  PWS_CHECK_GT(options.favourite_topics, 0);
  PWS_CHECK_GT(options.favourite_mass, 0.0);
  PWS_CHECK_LE(options.favourite_mass, 1.0);

  const std::vector<geo::LocationId> cities =
      ontology.CitiesUnder(ontology.root());
  PWS_CHECK(!cities.empty());
  std::vector<double> city_weights;
  city_weights.reserve(cities.size());
  // sqrt(population), matching where documents are about: users and
  // pages cluster in the same big cities.
  for (geo::LocationId city : cities) {
    city_weights.push_back(std::sqrt(ontology.node(city).population + 1000.0));
  }

  const int num_topics = topics.num_topics();
  const int favourites = std::min(options.favourite_topics, num_topics);

  std::vector<SimulatedUser> users;
  users.reserve(options.num_users);
  for (int u = 0; u < options.num_users; ++u) {
    SimulatedUser user;
    user.id = u;

    // Topic affinity: favourite topics share `favourite_mass`, the rest
    // share the remainder uniformly.
    user.topic_affinity.assign(num_topics, 0.0);
    const std::vector<int> favs =
        rng.SampleWithoutReplacement(num_topics, favourites);
    for (int f : favs) {
      user.topic_affinity[f] = options.favourite_mass / favourites;
    }
    const double rest_mass = 1.0 - options.favourite_mass;
    const int rest_count = num_topics - favourites;
    if (rest_count > 0) {
      for (int t = 0; t < num_topics; ++t) {
        if (user.topic_affinity[t] == 0.0) {
          user.topic_affinity[t] = rest_mass / rest_count;
        }
      }
    }

    user.home_city = cities[rng.Categorical(city_weights)];
    user.locality_preference = rng.UniformDouble(0.4, 0.95);

    const bool traveller = rng.Bernoulli(options.traveller_fraction);
    geo::LocationId travel_city = geo::kInvalidLocation;
    if (traveller) {
      do {
        travel_city = cities[rng.Categorical(city_weights)];
      } while (travel_city == user.home_city);
      user.place_affinity.push_back({travel_city, rng.UniformDouble(0.5, 0.9)});
    }

    if (rng.Bernoulli(options.gps_fraction)) {
      geo::GpsTraceOptions gps_options = options.gps;
      if (traveller) {
        gps_options.travel_city = travel_city;
        if (gps_options.travel_day_probability <= 0.0) {
          gps_options.travel_day_probability = 0.3;
        }
      }
      user.gps_trace =
          GenerateGpsTrace(ontology, user.home_city, gps_options, rng);
    }
    users.push_back(std::move(user));
  }
  return users;
}

}  // namespace pws::click
