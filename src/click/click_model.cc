#include "click/click_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace pws::click {

CascadeClickModel::CascadeClickModel(const RelevanceModel* relevance,
                                     ClickModelOptions options)
    : relevance_(relevance), options_(options) {
  PWS_CHECK(relevance_ != nullptr);
  PWS_CHECK_GT(options_.examination_decay, 0.0);
  PWS_CHECK_LE(options_.examination_decay, 1.0);
}

ClickRecord CascadeClickModel::Simulate(const SimulatedUser& user,
                                        const QueryIntent& intent,
                                        const backend::ResultPage& page,
                                        const corpus::Corpus& corpus, int day,
                                        Random& rng) const {
  ClickRecord record;
  record.user = user.id;
  record.day = day;
  record.query_id = intent.id;
  record.query_text = page.query;
  record.interactions.reserve(page.results.size());

  double examine_probability = 1.0;
  int last_click_index = -1;
  bool stopped = false;
  for (size_t i = 0; i < page.results.size(); ++i) {
    const auto& result = page.results[i];
    Interaction interaction;
    interaction.doc = result.doc;
    interaction.rank = static_cast<int>(i);

    if (!stopped && rng.Bernoulli(examine_probability)) {
      const double rel =
          relevance_->TrueRelevance(user, intent, corpus.doc(result.doc));
      const double p_click = Sigmoid(options_.attractiveness_gain *
                                     (rel - options_.attractiveness_offset));
      if (rng.Bernoulli(p_click)) {
        interaction.clicked = true;
        const double dwell =
            options_.dwell_base + rel * rel * options_.dwell_span +
            rng.Gaussian(0.0, options_.dwell_noise_stddev);
        interaction.dwell_units = std::max(1.0, dwell);
        last_click_index = static_cast<int>(record.interactions.size());
        // A satisfying click may end the session.
        if (rng.Bernoulli(options_.satisfaction_stop_scale * rel)) {
          stopped = true;
        }
      }
    }
    record.interactions.push_back(interaction);
    examine_probability *= options_.examination_decay;
  }
  if (last_click_index >= 0) {
    record.interactions[last_click_index].last_click_in_session = true;
  }
  return record;
}

}  // namespace pws::click
