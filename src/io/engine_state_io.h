#ifndef PWS_IO_ENGINE_STATE_IO_H_
#define PWS_IO_ENGINE_STATE_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "click/click_log.h"
#include "geo/geo_point.h"
#include "profile/user_profile.h"
#include "ranking/rank_svm.h"
#include "util/status.h"

namespace pws::io {

/// One user's learned state: the profile and the ranking model, bundled
/// for persistence across engine restarts (the accumulated preference
/// pairs are intentionally not persisted — the model already encodes
/// them, and fresh pairs are better than stale ones).
struct UserStateSnapshot {
  profile::UserProfile profile;
  ranking::RankSvm model;
};

/// Serializes a snapshot: the profile text, a separator line, then the
/// model text. Exact round trip.
std::string UserStateToText(const profile::UserProfile& profile,
                            const ranking::RankSvm& model);

/// Parses the UserStateToText format.
StatusOr<UserStateSnapshot> UserStateFromText(
    const std::string& text, const geo::LocationOntology* ontology);

/// File convenience wrappers.
Status SaveUserState(const profile::UserProfile& profile,
                     const ranking::RankSvm& model, const std::string& path);
StatusOr<UserStateSnapshot> LoadUserState(
    const std::string& path, const geo::LocationOntology* ontology);

/// Click-log file wrappers (the TSV format of click::ClickLog).
Status SaveClickLog(const click::ClickLog& log, const std::string& path);
StatusOr<click::ClickLog> LoadClickLog(const std::string& path);

// ---------- Durable envelope ----------

/// Wraps `payload` in a checksummed, versioned, length-prefixed envelope:
///
///   <kind>\t<version>\t<payload bytes>\t<crc32 hex>\n<payload>
///
/// so a loader can tell a truncated or bit-rotted file (kDataLoss) from a
/// malformed one (kInvalidArgument). `kind` is a short ASCII magic (no
/// tabs/newlines) naming the format, e.g. "PWSSNAP".
std::string WrapDurable(std::string_view kind, uint32_t version,
                        const std::string& payload);

/// Verifies the envelope and returns the payload. kInvalidArgument for a
/// missing/foreign header or unsupported version; kDataLoss when the
/// declared size or checksum does not match the bytes on disk.
StatusOr<std::string> UnwrapDurable(std::string_view kind, uint32_t version,
                                    const std::string& contents);

// ---------- Whole-engine snapshot ----------

/// One persisted preference pair, symbolic exactly like the engine's
/// in-memory pair store: indices into the user's pair-query dictionary
/// and the query's backend page. Persisting pairs keeps post-restore
/// TrainUser bit-identical to an uninterrupted run.
struct PersistedPair {
  int32_t query_index = -1;
  int32_t preferred_backend_index = -1;
  int32_t other_backend_index = -1;
  double weight = 1.0;
};

/// One session-window click event (DESIGN.md §17). Content concepts are
/// persisted as interned *terms*, not ids: concept ids are assigned by
/// the process-global interner in first-seen order, so they are not
/// stable across restarts (profiles persist terms for the same reason).
/// Location ids are ontology positions, deterministic per world.
struct PersistedSessionEvent {
  int query_id = 0;
  double day = 0.0;
  std::vector<std::string> content_terms;
  std::vector<int> locations;
};

/// One bandit arm's running statistics (ranking::BanditArm).
struct PersistedBanditArm {
  int64_t pulls = 0;
  double reward_sum = 0.0;
};

/// Everything the engine knows about one user that must survive a
/// restart: learned profile and model, last GPS position, and the
/// accumulated training pairs (chronological order).
struct PersistedUserState {
  click::UserId user = -1;
  profile::UserProfile profile;
  ranking::RankSvm model;
  std::optional<geo::GeoPoint> position;
  std::vector<std::string> pair_queries;
  std::vector<PersistedPair> pairs;
  /// Session window events, oldest first (empty for users without
  /// session state; the section is omitted from the text form then, so
  /// pre-session snapshots and records round-trip byte-identically).
  std::vector<PersistedSessionEvent> session_events;
  /// Bandit arm statistics, arm order (empty when the bandit is off).
  std::vector<PersistedBanditArm> bandit_arms;

  PersistedUserState(profile::UserProfile p, ranking::RankSvm m)
      : profile(std::move(p)), model(std::move(m)) {}
};

/// A consistent snapshot of every user plus the WAL high-water mark:
/// every WAL record with seq <= last_wal_seq is already folded into the
/// snapshot, so recovery skips it (this is what makes a crash between
/// snapshot commit and WAL truncation harmless).
/// One query's persisted click-entropy distribution — the engine-global
/// ClickEntropyTracker state that drives entropy_adaptive_alpha. Content
/// concepts are terms for the same cross-process-stability reason as
/// PersistedSessionEvent.
struct PersistedQueryEntropy {
  int query_id = 0;
  int clicks = 0;
  std::vector<std::pair<std::string, int>> content_clicks;
  std::vector<std::pair<int, int>> location_clicks;
};

struct EngineState {
  uint64_t last_wal_seq = 0;
  /// Lineage id of the WAL this snapshot is paired with (0 when the
  /// engine had no WAL, or the WAL predates lineage headers). Sequence
  /// numbers are only comparable within one log's history, so recovery
  /// refuses to replay a WAL tail over a snapshot whose lineage differs.
  /// With sharded WALs this is shard 0's lineage (kept for backward
  /// compatibility); wal_shard_lineages carries the full set.
  uint64_t wal_lineage_id = 0;
  /// Lineage ids of every WAL shard the snapshot was taken with, in
  /// shard order (empty for single-WAL snapshots written before WAL
  /// sharding; all shards share one sequence space, so last_wal_seq is
  /// the single high-water mark across them).
  std::vector<uint64_t> wal_shard_lineages;
  /// Click-entropy state, queries ascending (empty trackers omit the
  /// section entirely, so pre-entropy snapshots still load and
  /// entropy-free snapshots are byte-identical to the old format).
  /// Without this, a restored engine's entropy_adaptive_alpha rankings
  /// diverged from the pre-crash process: snapshots carried no counts
  /// and the WAL high-water mark made replay skip pre-snapshot clicks.
  std::vector<PersistedQueryEntropy> entropy;
  std::vector<PersistedUserState> users;
};

/// Serializes one user's persisted state as the snapshot's per-user
/// section (USER ... ENDUSER). This is also the cold-tier record format
/// of core::UserStateStore: a spilled user's on-disk bytes are exactly
/// its snapshot section, so SaveState can splice cold users into the
/// snapshot without deserializing and fault-in round-trips are
/// bit-identical.
std::string PersistedUserToText(const PersistedUserState& user);

/// Parses exactly one PersistedUserToText section.
StatusOr<PersistedUserState> PersistedUserFromText(
    const std::string& text, const geo::LocationOntology* ontology);

/// Composes a full snapshot (durable envelope included) from
/// pre-serialized per-user sections — each a PersistedUserToText block —
/// without materializing PersistedUserStates. EngineStateToText is the
/// materialized-state convenience over this.
/// Serializes engine-global click-entropy state as the snapshot's
/// optional ENTROPY section ("" when `entropy` is empty).
std::string EntropySectionText(
    const std::vector<PersistedQueryEntropy>& entropy);

std::string ComposeEngineStateText(
    uint64_t last_wal_seq, uint64_t wal_lineage_id,
    const std::vector<uint64_t>& wal_shard_lineages,
    const std::vector<std::string>& user_sections,
    const std::string& entropy_section = std::string());

/// Serializes an engine snapshot, durable envelope included.
std::string EngineStateToText(const EngineState& state);

/// Parses EngineStateToText output. Envelope violations map to kDataLoss,
/// format violations to kInvalidArgument; profiles are bound to
/// `ontology`, and all weights must be finite.
StatusOr<EngineState> EngineStateFromText(
    const std::string& text, const geo::LocationOntology* ontology);

/// File convenience wrappers; Save writes atomically (WriteFileAtomic).
Status SaveEngineState(const EngineState& state, const std::string& path);
StatusOr<EngineState> LoadEngineState(const std::string& path,
                                      const geo::LocationOntology* ontology);

}  // namespace pws::io

#endif  // PWS_IO_ENGINE_STATE_IO_H_
