#ifndef PWS_IO_ENGINE_STATE_IO_H_
#define PWS_IO_ENGINE_STATE_IO_H_

#include <string>

#include "click/click_log.h"
#include "profile/user_profile.h"
#include "ranking/rank_svm.h"
#include "util/status.h"

namespace pws::io {

/// One user's learned state: the profile and the ranking model, bundled
/// for persistence across engine restarts (the accumulated preference
/// pairs are intentionally not persisted — the model already encodes
/// them, and fresh pairs are better than stale ones).
struct UserStateSnapshot {
  profile::UserProfile profile;
  ranking::RankSvm model;
};

/// Serializes a snapshot: the profile text, a separator line, then the
/// model text. Exact round trip.
std::string UserStateToText(const profile::UserProfile& profile,
                            const ranking::RankSvm& model);

/// Parses the UserStateToText format.
StatusOr<UserStateSnapshot> UserStateFromText(
    const std::string& text, const geo::LocationOntology* ontology);

/// File convenience wrappers.
Status SaveUserState(const profile::UserProfile& profile,
                     const ranking::RankSvm& model, const std::string& path);
StatusOr<UserStateSnapshot> LoadUserState(
    const std::string& path, const geo::LocationOntology* ontology);

/// Click-log file wrappers (the TSV format of click::ClickLog).
Status SaveClickLog(const click::ClickLog& log, const std::string& path);
StatusOr<click::ClickLog> LoadClickLog(const std::string& path);

}  // namespace pws::io

#endif  // PWS_IO_ENGINE_STATE_IO_H_
