#include "io/corpus_io.h"

#include <cstdio>

#include "util/file_util.h"
#include "util/string_util.h"

namespace pws::io {
namespace {

std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

bool HasForbiddenChars(const std::string& text) {
  return text.find('\t') != std::string::npos ||
         text.find('\n') != std::string::npos;
}

}  // namespace

std::string CorpusToText(const corpus::Corpus& corpus) {
  std::string out;
  for (const auto& doc : corpus.documents()) {
    out += "D\t";
    out += std::to_string(doc.id);
    out += '\t';
    out += std::to_string(doc.primary_topic_truth);
    out += '\t';
    out += std::to_string(doc.primary_location_truth);
    out += '\t';
    out += doc.url;
    out += '\t';
    out += doc.domain;
    out += "\nT\t";
    out += doc.title;
    out += "\nB\t";
    out += doc.body;
    out += "\nM";
    for (double w : doc.topic_mixture_truth) {
      out += '\t';
      out += HexDouble(w);
    }
    out += '\n';
    if (!doc.planted_locations_truth.empty()) {
      out += 'P';
      for (geo::LocationId loc : doc.planted_locations_truth) {
        out += '\t';
        out += std::to_string(loc);
      }
      out += '\n';
    }
  }
  return out;
}

StatusOr<corpus::Corpus> CorpusFromText(const std::string& text) {
  corpus::Corpus corpus;
  corpus::Document current;
  bool has_current = false;
  auto flush = [&]() -> Status {
    if (!has_current) return OkStatus();
    if (HasForbiddenChars(current.title) || HasForbiddenChars(current.body)) {
      return InvalidArgumentError("text field contains tab/newline");
    }
    corpus.Add(std::move(current));
    current = corpus::Document{};
    has_current = false;
    return OkStatus();
  };
  for (const std::string& line : SplitLines(text)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    const std::string& tag = fields[0];
    if (tag == "D") {
      PWS_RETURN_IF_ERROR(flush());
      if (fields.size() != 6) {
        return InvalidArgumentError("bad document line: " + line);
      }
      int64_t id = 0;
      int64_t topic = 0;
      int64_t location = 0;
      if (!ParseInt64(fields[1], &id) || !ParseInt64(fields[2], &topic) ||
          !ParseInt64(fields[3], &location)) {
        return InvalidArgumentError("bad document numbers: " + line);
      }
      current.id = static_cast<corpus::DocId>(id);
      current.primary_topic_truth = static_cast<int>(topic);
      current.primary_location_truth = static_cast<geo::LocationId>(location);
      current.url = fields[4];
      current.domain = fields[5];
      has_current = true;
    } else if (tag == "T" && has_current) {
      current.title = fields.size() > 1 ? fields[1] : "";
    } else if (tag == "B" && has_current) {
      current.body = fields.size() > 1 ? fields[1] : "";
    } else if (tag == "M" && has_current) {
      current.topic_mixture_truth.clear();
      for (size_t i = 1; i < fields.size(); ++i) {
        double w = 0.0;
        if (!ParseDouble(fields[i], &w)) {
          return InvalidArgumentError("bad mixture weight: " + line);
        }
        current.topic_mixture_truth.push_back(w);
      }
    } else if (tag == "P" && has_current) {
      current.planted_locations_truth.clear();
      for (size_t i = 1; i < fields.size(); ++i) {
        int64_t loc = 0;
        if (!ParseInt64(fields[i], &loc)) {
          return InvalidArgumentError("bad planted location: " + line);
        }
        current.planted_locations_truth.push_back(
            static_cast<geo::LocationId>(loc));
      }
    } else {
      return InvalidArgumentError("unexpected record: " + line);
    }
  }
  PWS_RETURN_IF_ERROR(flush());
  return corpus;
}

Status SaveCorpus(const corpus::Corpus& corpus, const std::string& path) {
  return WriteStringToFile(path, CorpusToText(corpus));
}

StatusOr<corpus::Corpus> LoadCorpus(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return CorpusFromText(*contents);
}

}  // namespace pws::io
