#ifndef PWS_IO_GAZETTEER_IO_H_
#define PWS_IO_GAZETTEER_IO_H_

#include <string>

#include "geo/location_ontology.h"
#include "util/status.h"

namespace pws::io {

/// Serializes a gazetteer to a TSV text format:
///   N <id> <parent> <level> <lat> <lon> <population> <name>
///   A <id> <alias>
/// Node lines appear in id order (so parents precede children); alias
/// lines follow. Round-trips exactly through LoadGazetteerTsv.
std::string GazetteerToTsv(const geo::LocationOntology& ontology);

/// Parses the format produced by GazetteerToTsv. Fails with
/// InvalidArgument on malformed lines, out-of-order ids, or unknown
/// parents.
StatusOr<geo::LocationOntology> GazetteerFromTsv(const std::string& tsv);

/// File convenience wrappers.
Status SaveGazetteer(const geo::LocationOntology& ontology,
                     const std::string& path);
StatusOr<geo::LocationOntology> LoadGazetteer(const std::string& path);

}  // namespace pws::io

#endif  // PWS_IO_GAZETTEER_IO_H_
