#ifndef PWS_IO_MODEL_IO_H_
#define PWS_IO_MODEL_IO_H_

#include <string>

#include "ranking/rank_svm.h"
#include "util/status.h"

namespace pws::io {

/// Serializes a RankSvm to text:
///   M <dimension> <trained:0|1>
///   W <hex weight> ...   (one line, dimension entries)
///   P <hex prior> ...    (one line, dimension entries)
/// Hex doubles make the round-trip exact.
std::string ModelToText(const ranking::RankSvm& model);

/// Parses the ModelToText format.
StatusOr<ranking::RankSvm> ModelFromText(const std::string& text);

/// File convenience wrappers.
Status SaveModel(const ranking::RankSvm& model, const std::string& path);
StatusOr<ranking::RankSvm> LoadModel(const std::string& path);

}  // namespace pws::io

#endif  // PWS_IO_MODEL_IO_H_
