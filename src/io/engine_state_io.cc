#include "io/engine_state_io.h"

#include "io/model_io.h"
#include "io/profile_io.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace pws::io {
namespace {

constexpr char kSeparator[] = "---MODEL---";

}  // namespace

std::string UserStateToText(const profile::UserProfile& profile,
                            const ranking::RankSvm& model) {
  return ProfileToText(profile) + kSeparator + "\n" + ModelToText(model);
}

StatusOr<UserStateSnapshot> UserStateFromText(
    const std::string& text, const geo::LocationOntology* ontology) {
  const size_t split = text.find(kSeparator);
  if (split == std::string::npos) {
    return InvalidArgumentError("missing state separator");
  }
  auto profile = ProfileFromText(text.substr(0, split), ontology);
  if (!profile.ok()) return profile.status();
  const size_t model_start = text.find('\n', split);
  if (model_start == std::string::npos) {
    return InvalidArgumentError("missing model section");
  }
  auto model = ModelFromText(text.substr(model_start + 1));
  if (!model.ok()) return model.status();
  return UserStateSnapshot{std::move(profile).value(),
                           std::move(model).value()};
}

Status SaveUserState(const profile::UserProfile& profile,
                     const ranking::RankSvm& model, const std::string& path) {
  return WriteStringToFile(path, UserStateToText(profile, model));
}

StatusOr<UserStateSnapshot> LoadUserState(
    const std::string& path, const geo::LocationOntology* ontology) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return UserStateFromText(*contents, ontology);
}

Status SaveClickLog(const click::ClickLog& log, const std::string& path) {
  return WriteStringToFile(path, log.ToTsv());
}

StatusOr<click::ClickLog> LoadClickLog(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return click::ClickLog::FromTsv(*contents);
}

}  // namespace pws::io
