#include "io/engine_state_io.h"

#include <cmath>
#include <cstdio>

#include "io/model_io.h"
#include "io/profile_io.h"
#include "util/crc32.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace pws::io {
namespace {

constexpr char kSeparator[] = "---MODEL---";
constexpr char kSnapshotKind[] = "PWSSNAP";
constexpr uint32_t kSnapshotVersion = 1;

std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

std::string HexU32(uint32_t value) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x", value);
  return buffer;
}

std::string HexU64(uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool ParseHexU64(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace

std::string UserStateToText(const profile::UserProfile& profile,
                            const ranking::RankSvm& model) {
  return ProfileToText(profile) + kSeparator + "\n" + ModelToText(model);
}

StatusOr<UserStateSnapshot> UserStateFromText(
    const std::string& text, const geo::LocationOntology* ontology) {
  const size_t split = text.find(kSeparator);
  if (split == std::string::npos) {
    return InvalidArgumentError("missing state separator");
  }
  auto profile = ProfileFromText(text.substr(0, split), ontology);
  if (!profile.ok()) return profile.status();
  const size_t model_start = text.find('\n', split);
  if (model_start == std::string::npos) {
    return InvalidArgumentError("missing model section");
  }
  auto model = ModelFromText(text.substr(model_start + 1));
  if (!model.ok()) return model.status();
  return UserStateSnapshot{std::move(profile).value(),
                           std::move(model).value()};
}

Status SaveUserState(const profile::UserProfile& profile,
                     const ranking::RankSvm& model, const std::string& path) {
  return WriteStringToFile(path, UserStateToText(profile, model));
}

StatusOr<UserStateSnapshot> LoadUserState(
    const std::string& path, const geo::LocationOntology* ontology) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return UserStateFromText(*contents, ontology);
}

Status SaveClickLog(const click::ClickLog& log, const std::string& path) {
  return WriteStringToFile(path, log.ToTsv());
}

StatusOr<click::ClickLog> LoadClickLog(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return click::ClickLog::FromTsv(*contents);
}

// ---------- Durable envelope ----------

std::string WrapDurable(std::string_view kind, uint32_t version,
                        const std::string& payload) {
  std::string out(kind);
  out += '\t';
  out += std::to_string(version);
  out += '\t';
  out += std::to_string(payload.size());
  out += '\t';
  out += HexU32(Crc32(payload));
  out += '\n';
  out += payload;
  return out;
}

StatusOr<std::string> UnwrapDurable(std::string_view kind, uint32_t version,
                                    const std::string& contents) {
  const size_t newline = contents.find('\n');
  if (newline == std::string::npos) {
    return InvalidArgumentError("missing durable header");
  }
  std::string header = contents.substr(0, newline);
  if (!header.empty() && header.back() == '\r') header.pop_back();
  const std::vector<std::string> fields = StrSplit(header, '\t');
  if (fields.size() != 4 || fields[0] != kind) {
    return InvalidArgumentError("not a " + std::string(kind) + " file");
  }
  int64_t file_version = 0;
  int64_t declared_size = 0;
  if (!ParseInt64(fields[1], &file_version) ||
      !ParseInt64(fields[2], &declared_size)) {
    return InvalidArgumentError("bad durable header: " + header);
  }
  if (file_version != static_cast<int64_t>(version)) {
    return InvalidArgumentError("unsupported " + std::string(kind) +
                                " version " + fields[1]);
  }
  std::string payload = contents.substr(newline + 1);
  if (static_cast<int64_t>(payload.size()) != declared_size) {
    return DataLossError("truncated " + std::string(kind) + " payload: have " +
                         std::to_string(payload.size()) + " bytes, expected " +
                         fields[2]);
  }
  if (HexU32(Crc32(payload)) != fields[3]) {
    return DataLossError("checksum mismatch in " + std::string(kind) +
                         " payload");
  }
  return payload;
}

// ---------- Whole-engine snapshot ----------

std::string PersistedUserToText(const PersistedUserState& user) {
  std::string payload = "USER\t" + std::to_string(user.user) + "\n";
  if (user.position.has_value()) {
    payload += "POS\t" + HexDouble(user.position->lat) + "\t" +
               HexDouble(user.position->lon) + "\n";
  }
  payload += ProfileToText(user.profile);
  payload += kSeparator;
  payload += '\n';
  payload += ModelToText(user.model);
  payload += "PQ\t" + std::to_string(user.pair_queries.size()) + "\n";
  for (const std::string& query : user.pair_queries) {
    // Queries are caller-supplied strings; an embedded line break
    // would tear this line-based format apart on restore.
    payload += "Q\t" + EscapeLineBreaks(query) + "\n";
  }
  payload += "PAIRS\t" + std::to_string(user.pairs.size()) + "\n";
  for (const PersistedPair& pair : user.pairs) {
    payload += "P\t" + std::to_string(pair.query_index) + "\t" +
               std::to_string(pair.preferred_backend_index) + "\t" +
               std::to_string(pair.other_backend_index) + "\t" +
               HexDouble(pair.weight) + "\n";
  }
  // Optional sections, emitted only when non-empty: users without
  // session/bandit state serialize byte-identically to the pre-§17
  // format, which keeps old snapshots loadable and old cold-tier
  // records valid as-is.
  if (!user.session_events.empty()) {
    payload += "SESS\t" + std::to_string(user.session_events.size()) + "\n";
    for (const PersistedSessionEvent& event : user.session_events) {
      payload += "SE\t" + std::to_string(event.query_id) + "\t" +
                 HexDouble(event.day) + "\t" +
                 std::to_string(event.content_terms.size()) + "\t" +
                 std::to_string(event.locations.size()) + "\n";
      for (const std::string& term : event.content_terms) {
        // Terms come from the tokenizer (no tabs), but line breaks are
        // escaped like every other caller-adjacent string here.
        payload += "SC\t" + EscapeLineBreaks(term) + "\n";
      }
      for (const int location : event.locations) {
        payload += "SL\t" + std::to_string(location) + "\n";
      }
    }
  }
  if (!user.bandit_arms.empty()) {
    payload += "BANDIT\t" + std::to_string(user.bandit_arms.size()) + "\n";
    for (const PersistedBanditArm& arm : user.bandit_arms) {
      payload += "BA\t" + std::to_string(arm.pulls) + "\t" +
                 HexDouble(arm.reward_sum) + "\n";
    }
  }
  payload += "ENDUSER\n";
  return payload;
}

std::string EntropySectionText(
    const std::vector<PersistedQueryEntropy>& entropy) {
  if (entropy.empty()) return std::string();
  std::string out = "ENTROPY\t" + std::to_string(entropy.size()) + "\n";
  for (const PersistedQueryEntropy& query : entropy) {
    out += "EQ\t" + std::to_string(query.query_id) + "\t" +
           std::to_string(query.clicks) + "\t" +
           std::to_string(query.content_clicks.size()) + "\t" +
           std::to_string(query.location_clicks.size()) + "\n";
    for (const auto& [term, count] : query.content_clicks) {
      // Count first, term last: terms are the one free-form field.
      out += "EC\t" + std::to_string(count) + "\t" +
             EscapeLineBreaks(term) + "\n";
    }
    for (const auto& [location, count] : query.location_clicks) {
      out += "EL\t" + std::to_string(location) + "\t" +
             std::to_string(count) + "\n";
    }
  }
  return out;
}

std::string ComposeEngineStateText(
    uint64_t last_wal_seq, uint64_t wal_lineage_id,
    const std::vector<uint64_t>& wal_shard_lineages,
    const std::vector<std::string>& user_sections,
    const std::string& entropy_section) {
  size_t total = 128 + entropy_section.size();
  for (const std::string& section : user_sections) total += section.size();
  std::string payload;
  payload.reserve(total);
  payload += "ENGINE\t" + std::to_string(user_sections.size()) + "\t" +
             std::to_string(last_wal_seq) + "\t" + HexU64(wal_lineage_id) +
             "\n";
  if (!wal_shard_lineages.empty()) {
    // Optional so pre-sharding snapshots (no WALS line) still load.
    payload += "WALS";
    for (const uint64_t lineage : wal_shard_lineages) {
      payload += '\t';
      payload += HexU64(lineage);
    }
    payload += '\n';
  }
  // Optional like WALS: an empty tracker writes nothing, keeping
  // entropy-free snapshots byte-identical to the pre-§17 format.
  payload += entropy_section;
  for (const std::string& section : user_sections) payload += section;
  return WrapDurable(kSnapshotKind, kSnapshotVersion, payload);
}

std::string EngineStateToText(const EngineState& state) {
  std::vector<std::string> sections;
  sections.reserve(state.users.size());
  for (const PersistedUserState& user : state.users) {
    sections.push_back(PersistedUserToText(user));
  }
  return ComposeEngineStateText(state.last_wal_seq, state.wal_lineage_id,
                                state.wal_shard_lineages, sections,
                                EntropySectionText(state.entropy));
}

namespace {

/// Parses one USER..ENDUSER section at the cursor of `next_line` (a
/// callable yielding the next non-empty line or nullptr). Shared by the
/// whole-snapshot parser and the cold-tier record parser.
template <typename NextLine>
StatusOr<PersistedUserState> ParseUserSection(
    NextLine&& next_line, const geo::LocationOntology* ontology) {
  const std::string* user_line = next_line();
  if (user_line == nullptr || !StartsWith(*user_line, "USER\t")) {
    return InvalidArgumentError("expected USER line");
  }
  int64_t user_id = 0;
  if (!ParseInt64(user_line->substr(5), &user_id)) {
    return InvalidArgumentError("bad user id: " + *user_line);
  }

  std::optional<geo::GeoPoint> position;
  const std::string* line = next_line();
  if (line != nullptr && StartsWith(*line, "POS\t")) {
    const std::vector<std::string> fields = StrSplit(*line, '\t');
    geo::GeoPoint point;
    if (fields.size() != 3 || !ParseDouble(fields[1], &point.lat) ||
        !ParseDouble(fields[2], &point.lon) || !std::isfinite(point.lat) ||
        !std::isfinite(point.lon)) {
      return InvalidArgumentError("bad POS line: " + *line);
    }
    position = point;
    line = next_line();
  }

  // Profile section: everything up to the ---MODEL--- separator.
  std::string profile_text;
  while (line != nullptr && *line != kSeparator) {
    profile_text += *line;
    profile_text += '\n';
    line = next_line();
  }
  if (line == nullptr) {
    return InvalidArgumentError("snapshot user missing model separator");
  }
  auto profile = ProfileFromText(profile_text, ontology);
  if (!profile.ok()) return profile.status();
  if (profile->user() != static_cast<click::UserId>(user_id)) {
    return InvalidArgumentError("USER/profile id mismatch for user " +
                                std::to_string(user_id));
  }

  // Model section: everything up to the PQ line.
  std::string model_text;
  line = next_line();
  while (line != nullptr && !StartsWith(*line, "PQ\t")) {
    model_text += *line;
    model_text += '\n';
    line = next_line();
  }
  if (line == nullptr) {
    return InvalidArgumentError("snapshot user missing PQ section");
  }
  auto model = ModelFromText(model_text);
  if (!model.ok()) return model.status();

  PersistedUserState user(std::move(profile).value(),
                          std::move(model).value());
  user.user = static_cast<click::UserId>(user_id);
  user.position = position;

  int64_t num_queries = 0;
  if (!ParseInt64(line->substr(3), &num_queries) || num_queries < 0) {
    return InvalidArgumentError("bad PQ line: " + *line);
  }
  user.pair_queries.reserve(static_cast<size_t>(num_queries));
  for (int64_t q = 0; q < num_queries; ++q) {
    line = next_line();
    if (line == nullptr || !StartsWith(*line, "Q\t")) {
      return InvalidArgumentError("expected Q line");
    }
    user.pair_queries.push_back(UnescapeLineBreaks(line->substr(2)));
  }

  line = next_line();
  if (line == nullptr || !StartsWith(*line, "PAIRS\t")) {
    return InvalidArgumentError("expected PAIRS line");
  }
  int64_t num_pairs = 0;
  if (!ParseInt64(line->substr(6), &num_pairs) || num_pairs < 0) {
    return InvalidArgumentError("bad PAIRS line: " + *line);
  }
  user.pairs.reserve(static_cast<size_t>(num_pairs));
  for (int64_t p = 0; p < num_pairs; ++p) {
    line = next_line();
    if (line == nullptr || !StartsWith(*line, "P\t")) {
      return InvalidArgumentError("expected P line");
    }
    const std::vector<std::string> fields = StrSplit(*line, '\t');
    PersistedPair pair;
    int64_t query_index = 0;
    int64_t preferred = 0;
    int64_t other = 0;
    if (fields.size() != 5 || !ParseInt64(fields[1], &query_index) ||
        !ParseInt64(fields[2], &preferred) ||
        !ParseInt64(fields[3], &other) ||
        !ParseDouble(fields[4], &pair.weight) ||
        !std::isfinite(pair.weight)) {
      return InvalidArgumentError("bad P line: " + *line);
    }
    if (query_index < 0 ||
        query_index >= static_cast<int64_t>(user.pair_queries.size()) ||
        preferred < 0 || other < 0) {
      return InvalidArgumentError("pair index out of range: " + *line);
    }
    pair.query_index = static_cast<int32_t>(query_index);
    pair.preferred_backend_index = static_cast<int32_t>(preferred);
    pair.other_backend_index = static_cast<int32_t>(other);
    user.pairs.push_back(pair);
  }

  // Optional trailing sections (SESS, BANDIT), in any order, then
  // ENDUSER. Sections absent from pre-§17 snapshots simply never match.
  line = next_line();
  while (line != nullptr && *line != "ENDUSER") {
    if (StartsWith(*line, "SESS\t")) {
      int64_t num_events = 0;
      if (!ParseInt64(line->substr(5), &num_events) || num_events < 0) {
        return InvalidArgumentError("bad SESS line: " + *line);
      }
      user.session_events.reserve(static_cast<size_t>(num_events));
      for (int64_t e = 0; e < num_events; ++e) {
        line = next_line();
        if (line == nullptr || !StartsWith(*line, "SE\t")) {
          return InvalidArgumentError("expected SE line");
        }
        const std::vector<std::string> fields = StrSplit(*line, '\t');
        PersistedSessionEvent event;
        int64_t query_id = 0;
        int64_t num_terms = 0;
        int64_t num_locations = 0;
        if (fields.size() != 5 || !ParseInt64(fields[1], &query_id) ||
            !ParseDouble(fields[2], &event.day) ||
            !std::isfinite(event.day) ||
            !ParseInt64(fields[3], &num_terms) || num_terms < 0 ||
            !ParseInt64(fields[4], &num_locations) || num_locations < 0) {
          return InvalidArgumentError("bad SE line: " + *line);
        }
        event.query_id = static_cast<int>(query_id);
        event.content_terms.reserve(static_cast<size_t>(num_terms));
        for (int64_t t = 0; t < num_terms; ++t) {
          line = next_line();
          if (line == nullptr || !StartsWith(*line, "SC\t")) {
            return InvalidArgumentError("expected SC line");
          }
          event.content_terms.push_back(UnescapeLineBreaks(line->substr(3)));
        }
        event.locations.reserve(static_cast<size_t>(num_locations));
        for (int64_t l = 0; l < num_locations; ++l) {
          line = next_line();
          if (line == nullptr || !StartsWith(*line, "SL\t")) {
            return InvalidArgumentError("expected SL line");
          }
          int64_t location = 0;
          if (!ParseInt64(line->substr(3), &location) || location < 0 ||
              location >= ontology->size()) {
            return InvalidArgumentError("bad SL line: " + *line);
          }
          event.locations.push_back(static_cast<int>(location));
        }
        user.session_events.push_back(std::move(event));
      }
    } else if (StartsWith(*line, "BANDIT\t")) {
      int64_t num_arms = 0;
      if (!ParseInt64(line->substr(7), &num_arms) || num_arms < 0) {
        return InvalidArgumentError("bad BANDIT line: " + *line);
      }
      user.bandit_arms.reserve(static_cast<size_t>(num_arms));
      for (int64_t a = 0; a < num_arms; ++a) {
        line = next_line();
        if (line == nullptr || !StartsWith(*line, "BA\t")) {
          return InvalidArgumentError("expected BA line");
        }
        const std::vector<std::string> fields = StrSplit(*line, '\t');
        PersistedBanditArm arm;
        if (fields.size() != 3 || !ParseInt64(fields[1], &arm.pulls) ||
            arm.pulls < 0 || !ParseDouble(fields[2], &arm.reward_sum) ||
            !std::isfinite(arm.reward_sum)) {
          return InvalidArgumentError("bad BA line: " + *line);
        }
        user.bandit_arms.push_back(arm);
      }
    } else {
      return InvalidArgumentError("unexpected line in user section: " +
                                  *line);
    }
    line = next_line();
  }
  if (line == nullptr) {
    return InvalidArgumentError("expected ENDUSER for user " +
                                std::to_string(user_id));
  }
  return user;
}

}  // namespace

StatusOr<PersistedUserState> PersistedUserFromText(
    const std::string& text, const geo::LocationOntology* ontology) {
  const std::vector<std::string> lines = SplitLines(text);
  size_t i = 0;
  auto next_line = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;  // Trailing blanks.
    return i < lines.size() ? &lines[i++] : nullptr;
  };
  return ParseUserSection(next_line, ontology);
}

StatusOr<EngineState> EngineStateFromText(
    const std::string& text, const geo::LocationOntology* ontology) {
  auto payload = UnwrapDurable(kSnapshotKind, kSnapshotVersion, text);
  if (!payload.ok()) return payload.status();
  const std::vector<std::string> lines = SplitLines(*payload);
  size_t i = 0;
  auto next_line = [&]() -> const std::string* {
    while (i < lines.size() && lines[i].empty()) ++i;  // Trailing blanks.
    return i < lines.size() ? &lines[i++] : nullptr;
  };

  const std::string* header = next_line();
  if (header == nullptr || !StartsWith(*header, "ENGINE\t")) {
    return InvalidArgumentError("snapshot payload must start with ENGINE");
  }
  const std::vector<std::string> header_fields = StrSplit(*header, '\t');
  int64_t num_users = 0;
  int64_t last_wal_seq = 0;
  uint64_t wal_lineage_id = 0;
  // The lineage field is optional so snapshots written before it was
  // introduced still load (they read as lineage-unknown).
  if ((header_fields.size() != 3 && header_fields.size() != 4) ||
      !ParseInt64(header_fields[1], &num_users) ||
      !ParseInt64(header_fields[2], &last_wal_seq) || num_users < 0 ||
      (header_fields.size() == 4 &&
       !ParseHexU64(header_fields[3], &wal_lineage_id))) {
    return InvalidArgumentError("bad snapshot header: " + *header);
  }

  EngineState state;
  state.last_wal_seq = static_cast<uint64_t>(last_wal_seq);
  state.wal_lineage_id = wal_lineage_id;

  // Optional per-shard WAL lineage line (snapshots from sharded-WAL
  // engines). Peek: if the next line is not WALS, rewind.
  const size_t before_wals = i;
  const std::string* wals = next_line();
  if (wals != nullptr && StartsWith(*wals, "WALS\t")) {
    const std::vector<std::string> fields = StrSplit(*wals, '\t');
    for (size_t f = 1; f < fields.size(); ++f) {
      uint64_t lineage = 0;
      if (!ParseHexU64(fields[f], &lineage)) {
        return InvalidArgumentError("bad WALS line: " + *wals);
      }
      state.wal_shard_lineages.push_back(lineage);
    }
  } else {
    i = before_wals;
  }

  // Optional click-entropy section (same peek-and-rewind pattern).
  const size_t before_entropy = i;
  const std::string* entropy_header = next_line();
  if (entropy_header != nullptr && StartsWith(*entropy_header, "ENTROPY\t")) {
    int64_t num_queries = 0;
    if (!ParseInt64(entropy_header->substr(8), &num_queries) ||
        num_queries < 0) {
      return InvalidArgumentError("bad ENTROPY line: " + *entropy_header);
    }
    state.entropy.reserve(static_cast<size_t>(num_queries));
    for (int64_t q = 0; q < num_queries; ++q) {
      const std::string* eq = next_line();
      if (eq == nullptr || !StartsWith(*eq, "EQ\t")) {
        return InvalidArgumentError("expected EQ line");
      }
      const std::vector<std::string> fields = StrSplit(*eq, '\t');
      PersistedQueryEntropy query;
      int64_t query_id = 0;
      int64_t clicks = 0;
      int64_t num_content = 0;
      int64_t num_locations = 0;
      if (fields.size() != 5 || !ParseInt64(fields[1], &query_id) ||
          !ParseInt64(fields[2], &clicks) || clicks < 0 ||
          !ParseInt64(fields[3], &num_content) || num_content < 0 ||
          !ParseInt64(fields[4], &num_locations) || num_locations < 0) {
        return InvalidArgumentError("bad EQ line: " + *eq);
      }
      query.query_id = static_cast<int>(query_id);
      query.clicks = static_cast<int>(clicks);
      query.content_clicks.reserve(static_cast<size_t>(num_content));
      for (int64_t c = 0; c < num_content; ++c) {
        const std::string* ec = next_line();
        if (ec == nullptr || !StartsWith(*ec, "EC\t")) {
          return InvalidArgumentError("expected EC line");
        }
        // Count first, term (free-form, may embed tabs) last.
        const size_t count_end = ec->find('\t', 3);
        int64_t count = 0;
        if (count_end == std::string::npos ||
            !ParseInt64(ec->substr(3, count_end - 3), &count) || count < 0) {
          return InvalidArgumentError("bad EC line: " + *ec);
        }
        query.content_clicks.emplace_back(
            UnescapeLineBreaks(ec->substr(count_end + 1)),
            static_cast<int>(count));
      }
      query.location_clicks.reserve(static_cast<size_t>(num_locations));
      for (int64_t l = 0; l < num_locations; ++l) {
        const std::string* el = next_line();
        if (el == nullptr || !StartsWith(*el, "EL\t")) {
          return InvalidArgumentError("expected EL line");
        }
        const std::vector<std::string> el_fields = StrSplit(*el, '\t');
        int64_t location = 0;
        int64_t count = 0;
        if (el_fields.size() != 3 || !ParseInt64(el_fields[1], &location) ||
            location < 0 || location >= ontology->size() ||
            !ParseInt64(el_fields[2], &count) || count < 0) {
          return InvalidArgumentError("bad EL line: " + *el);
        }
        query.location_clicks.emplace_back(static_cast<int>(location),
                                           static_cast<int>(count));
      }
      state.entropy.push_back(std::move(query));
    }
  } else {
    i = before_entropy;
  }

  state.users.reserve(static_cast<size_t>(num_users));
  for (int64_t u = 0; u < num_users; ++u) {
    auto user = ParseUserSection(next_line, ontology);
    if (!user.ok()) return user.status();
    state.users.push_back(std::move(user).value());
  }
  return state;
}

Status SaveEngineState(const EngineState& state, const std::string& path) {
  return WriteFileAtomic(path, EngineStateToText(state));
}

StatusOr<EngineState> LoadEngineState(const std::string& path,
                                      const geo::LocationOntology* ontology) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return EngineStateFromText(*contents, ontology);
}

}  // namespace pws::io
