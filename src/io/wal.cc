#include "io/wal.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/file_util.h"

namespace pws::io {
namespace {

constexpr size_t kFrameHeaderBytes = 16;
// Lineage header at the start of every (non-legacy) log file: 8 magic
// bytes + a little-endian u64 lineage id. The magic cannot be mistaken
// for a frame — decoded as one, its first four bytes would claim a
// payload far beyond kMaxPayloadBytes.
constexpr char kLineageMagic[8] = {'P', 'W', 'S', 'W', 'A', 'L', '1', '\n'};
constexpr size_t kLineageHeaderBytes = 16;

// A fresh, effectively unique lineage id (never 0 — 0 means "legacy
// file, lineage unknown"). Uniqueness, not determinism, is the point:
// two log files must never compare equal by id.
uint64_t NewLineageId() {
  std::random_device rd;
  uint64_t id = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  return id == 0 ? 1 : id;
}
// A frame longer than this is treated as tail corruption rather than a
// record — it bounds the allocation a flipped length field could ask for.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return value;
}

uint64_t GetU64(const char* p) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return value;
}

// CRC over the payload_len and seq header fields and the payload,
// exactly as framed. Covering the length means a flipped length byte
// fails the CRC check like any other corruption instead of silently
// misframing everything after it.
uint32_t FrameCrc(uint32_t payload_len, uint64_t seq,
                  std::string_view payload) {
  std::string header_bytes;
  header_bytes.reserve(12);
  PutU32(&header_bytes, payload_len);
  PutU64(&header_bytes, seq);
  return Crc32Finalize(
      Crc32Update(Crc32Update(Crc32Init(), header_bytes), payload));
}

// Decodes the frame at `offset` into `record`/`frame_bytes`. Frames in
// one file carry strictly increasing sequence numbers (Truncate empties
// the file, so even post-truncate frames continue upward), so a frame
// whose seq does not exceed `min_seq` is corruption, not data — the
// check keeps the resync scan from accepting garbage that happens to
// checksum.
bool DecodeFrameAt(const std::string& data, size_t offset, uint64_t min_seq,
                   WriteAheadLog::ReplayedRecord* record,
                   size_t* frame_bytes) {
  if (offset + kFrameHeaderBytes > data.size()) return false;
  const uint32_t payload_len = GetU32(data.data() + offset);
  const uint32_t crc = GetU32(data.data() + offset + 4);
  const uint64_t seq = GetU64(data.data() + offset + 8);
  if (payload_len > kMaxPayloadBytes ||
      offset + kFrameHeaderBytes + payload_len > data.size() ||
      seq <= min_seq) {
    return false;
  }
  const std::string_view payload(data.data() + offset + kFrameHeaderBytes,
                                 payload_len);
  if (FrameCrc(payload_len, seq, payload) != crc) return false;
  record->seq = seq;
  record->payload = std::string(payload);
  *frame_bytes = kFrameHeaderBytes + payload_len;
  return true;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, Options options,
                             std::FILE* file, uint64_t last_seq,
                             uint64_t valid_bytes, uint64_t lineage_id,
                             uint64_t header_bytes)
    : path_(std::move(path)),
      options_(options),
      file_(file),
      last_seq_(last_seq),
      lineage_id_(lineage_id),
      header_bytes_(header_bytes),
      valid_bytes_(valid_bytes),
      written_bytes_(valid_bytes),
      written_seq_(last_seq),
      durable_seq_(last_seq) {}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  PWS_SPAN("wal.replay");
  ReplayResult result;
  if (!FileExists(path)) return result;
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = *contents;
  size_t offset = 0;
  if (data.size() >= kLineageHeaderBytes &&
      data.compare(0, sizeof(kLineageMagic), kLineageMagic,
                   sizeof(kLineageMagic)) == 0) {
    result.lineage_id = GetU64(data.data() + sizeof(kLineageMagic));
    offset = kLineageHeaderBytes;
  }
  uint64_t last_accepted_seq = 0;
  uint64_t gap_bytes = 0;
  uint64_t resyncs = 0;
  while (offset + kFrameHeaderBytes <= data.size()) {
    ReplayedRecord record;
    size_t frame_bytes = 0;
    if (!DecodeFrameAt(data, offset, last_accepted_seq, &record,
                       &frame_bytes)) {
      // A corrupt frame — or the start of a torn tail. Scan forward for
      // the next decodable frame so one flipped byte loses only its own
      // record, not every intact frame after it; nothing found means the
      // rest really is tail garbage.
      size_t next = offset + 1;
      while (next + kFrameHeaderBytes <= data.size() &&
             !DecodeFrameAt(data, next, last_accepted_seq, &record,
                            &frame_bytes)) {
        ++next;
      }
      if (next + kFrameHeaderBytes > data.size()) break;
      gap_bytes += next - offset;
      ++resyncs;
      offset = next;
    }
    last_accepted_seq = record.seq;
    result.records.push_back(std::move(record));
    offset += frame_bytes;
  }
  const uint64_t tail_bytes = data.size() - offset;
  result.valid_bytes = offset;
  result.dropped_bytes = gap_bytes + tail_bytes;
  result.torn_tail = tail_bytes > 0;
  if (resyncs > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("wal.replay.resyncs")
        ->Increment(resyncs);
  }
  return result;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, const Options& options) {
  const bool existed = FileExists(path);
  auto replay = Replay(path);
  if (!replay.ok()) return replay.status();
  uint64_t last_seq = 0;
  for (const ReplayedRecord& record : replay->records) {
    if (record.seq > last_seq) last_seq = record.seq;
  }
  // "ab" creates the file if needed and pins every write to the end.
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return InternalError("cannot open wal for append: " + path);
  }
  uint64_t lineage_id = replay->lineage_id;
  uint64_t header_bytes = lineage_id != 0 ? kLineageHeaderBytes : 0;
  auto log = std::unique_ptr<WriteAheadLog>(new WriteAheadLog(
      path, options, file, last_seq, replay->valid_bytes, lineage_id,
      header_bytes));
  if (!existed) {
    // fopen just created the file; fsync the directory entry too, or a
    // power failure could drop the whole file even though every append
    // into it was individually synced.
    Status created = internal_file::HookedSyncParentDir(path);
    if (!created.ok()) return created;
  }
  if (replay->torn_tail) {
    // Repair: drop the torn tail so new appends are not hidden behind
    // garbage the next replay would stop at.
    obs::MetricsRegistry::Global()
        .GetCounter("wal.open.torn_tail_repairs")
        ->Increment();
    Status truncated = internal_file::HookedTruncate(
        file, static_cast<size_t>(replay->valid_bytes), path);
    if (!truncated.ok()) return truncated;
  }
  if (lineage_id == 0 && replay->records.empty() &&
      replay->valid_bytes == 0) {
    // A brand-new (or repaired-to-empty) log: stamp its lineage header.
    // A non-empty legacy file keeps its frames and reads as lineage 0 —
    // the header cannot be prepended in place.
    log->lineage_id_ = NewLineageId();
    log->header_bytes_ = kLineageHeaderBytes;
    std::string header(kLineageMagic, sizeof(kLineageMagic));
    PutU64(&header, log->lineage_id_);
    Status written = internal_file::HookedWrite(file, header, path);
    if (!written.ok()) return written;
    written = internal_file::HookedFlushAndSync(file, path);
    if (!written.ok()) return written;
    log->valid_bytes_ = kLineageHeaderBytes;
    log->written_bytes_ = kLineageHeaderBytes;
  }
  if (options.sequencer != nullptr) {
    // Shard logs share one sequence space: raise the shared counter to
    // this file's max so the next assignment continues past every frame
    // already on disk in any shard.
    uint64_t current = options.sequencer->load();
    while (current < last_seq &&
           !options.sequencer->compare_exchange_weak(current, last_seq)) {
    }
  }
  return log;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  return Open(path, Options());
}

uint64_t WriteAheadLog::NextSeqLocked() {
  uint64_t seq;
  if (options_.sequencer != nullptr) {
    seq = options_.sequencer->fetch_add(1) + 1;
    if (seq > last_seq_) last_seq_ = seq;
  } else {
    seq = ++last_seq_;
  }
  return seq;
}

void WriteAheadLog::RollbackSeqLocked(uint64_t seq) {
  // The whole assignment+write ran under one mutex hold, so the failed
  // frame's seq is still the newest this log assigned; un-assigning it
  // lets the next append reuse the number instead of leaving a gap.
  if (written_seq_ == seq) written_seq_ = seq - 1;
  if (last_seq_ == seq) last_seq_ = seq - 1;
  if (options_.sequencer != nullptr) {
    uint64_t expected = seq;
    options_.sequencer->compare_exchange_strong(expected, seq - 1);
  }
}

Status WriteAheadLog::AwaitDurableLocked(uint64_t seq,
                                         std::unique_lock<std::mutex>& lock) {
  ++group_waiters_;
  const Status status = GroupWaitLoopLocked(seq, lock);
  // Failed ranges exist to answer waiters that were in flight when a
  // sync failed; once the last waiter leaves, every future seq is past
  // every recorded range, so the bookkeeping can be reclaimed.
  if (--group_waiters_ == 0) failed_ranges_.clear();
  return status;
}

bool WriteAheadLog::SeqFailedLocked(uint64_t seq) const {
  for (const auto& [lo, hi] : failed_ranges_) {
    if (seq > lo && seq <= hi) return true;
  }
  return false;
}

Status WriteAheadLog::GroupWaitLoopLocked(uint64_t seq,
                                          std::unique_lock<std::mutex>& lock) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (;;) {
    // Destroyed by a failed-sync rollback: the frame is gone and its seq
    // will never be rewritten, so the verdict is sticky — it holds even
    // after later successful syncs advance durable_seq_ past the hole.
    if (SeqFailedLocked(seq)) {
      return DataLossError("wal group sync failed: " + path_);
    }
    if (seq <= durable_seq_) return OkStatus();
    if (sync_in_flight_) {
      sync_cv_.wait(lock);
      continue;
    }
    // Become the sync leader. Optionally linger for more appends to
    // join — frames written while we wait ride this sync for free.
    sync_in_flight_ = true;
    if (options_.group_wait_us > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.group_wait_us);
      sync_cv_.wait_until(lock, deadline, [&] {
        return written_seq_ - durable_seq_ >=
               static_cast<uint64_t>(std::max(1, options_.group_max_batch));
      });
    }
    const uint64_t target_seq = written_seq_;
    const uint64_t target_bytes = written_bytes_;
    lock.unlock();
    // The fsync (and the stdio flush before it) runs outside the mutex:
    // followers keep writing frames into the file behind it — they join
    // the *next* sync. stdio calls lock the FILE internally, so a
    // concurrent fwrite and this fflush serialize per call.
    const Status status = internal_file::HookedFlushAndSync(file_, path_);
    lock.lock();
    sync_in_flight_ = false;
    if (status.ok()) {
      durable_seq_ = target_seq;
      if (target_bytes > valid_bytes_) valid_bytes_ = target_bytes;
      registry.GetCounter("wal.group_syncs")->Increment();
    } else {
      // Roll the file back to the last synced boundary so a torn frame
      // cannot hide later appends. The truncation destroys *every*
      // written-but-unsynced frame — not just the batch up to
      // target_seq, but also frames appended while the sync was in
      // flight — so record the whole range (durable_seq_, written_seq_]
      // as failed and roll written_seq_ back: those frames are gone and
      // their waiters must report data loss, never ride a later sync.
      registry.GetCounter("wal.append.errors")->Increment();
      if (written_seq_ > durable_seq_) {
        if (!failed_ranges_.empty() &&
            failed_ranges_.back().second >= durable_seq_) {
          failed_ranges_.back().second =
              std::max(failed_ranges_.back().second, written_seq_);
        } else {
          failed_ranges_.emplace_back(durable_seq_, written_seq_);
        }
      }
      written_seq_ = durable_seq_;
      const Status rollback = internal_file::HookedTruncate(
          file_, static_cast<size_t>(valid_bytes_), path_);
      if (!rollback.ok()) {
        registry.GetCounter("wal.append.rollback_errors")->Increment();
      }
      written_bytes_ = valid_bytes_;
    }
    sync_cv_.notify_all();
  }
}

Status WriteAheadLog::Append(std::string_view payload) {
  PWS_SPAN("wal.append");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  std::unique_lock<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return FailedPreconditionError("wal is closed: " + path_);
  }
  const uint64_t seq = NextSeqLocked();
  frame_buffer_.clear();
  frame_buffer_.reserve(kFrameHeaderBytes + payload.size());
  const uint32_t payload_len = static_cast<uint32_t>(payload.size());
  PutU32(&frame_buffer_, payload_len);
  PutU32(&frame_buffer_, FrameCrc(payload_len, seq, payload));
  PutU64(&frame_buffer_, seq);
  frame_buffer_.append(payload);
  const size_t frame_bytes = frame_buffer_.size();
  Status status = internal_file::HookedWrite(file_, frame_buffer_, path_);
  if (!status.ok()) {
    registry.GetCounter("wal.append.errors")->Increment();
    // Roll the file back to the last good frame boundary: the torn frame
    // would otherwise sit mid-file and hide every later successful
    // append from Replay. Best effort — if the rollback fails too (e.g.
    // the device is gone), the post-crash Open repairs the tail instead.
    const Status rollback = internal_file::HookedTruncate(
        file_, static_cast<size_t>(written_bytes_), path_);
    if (!rollback.ok()) {
      registry.GetCounter("wal.append.rollback_errors")->Increment();
    }
    RollbackSeqLocked(seq);
    return status;
  }
  written_bytes_ += frame_bytes;
  if (seq > written_seq_) written_seq_ = seq;

  if (options_.group_commit) {
    sync_cv_.notify_all();  // A batching leader may be waiting for us.
    status = AwaitDurableLocked(seq, lock);
    if (status.ok()) registry.GetCounter("wal.appends")->Increment();
    return status;
  }

  if (options_.sync_each_append) {
    status = internal_file::HookedFlushAndSync(file_, path_);
  } else if (std::fflush(file_) != 0) {
    status = InternalError("wal flush failed: " + path_);
  }
  if (!status.ok()) {
    registry.GetCounter("wal.append.errors")->Increment();
    written_bytes_ -= frame_bytes;
    const Status rollback = internal_file::HookedTruncate(
        file_, static_cast<size_t>(written_bytes_), path_);
    if (!rollback.ok()) {
      registry.GetCounter("wal.append.rollback_errors")->Increment();
    }
    RollbackSeqLocked(seq);
    return status;
  }
  valid_bytes_ = written_bytes_;
  durable_seq_ = written_seq_;
  registry.GetCounter("wal.appends")->Increment();
  return OkStatus();
}

Status WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) {
    return FailedPreconditionError("wal is closed: " + path_);
  }
  // Cut back to the lineage header, not to zero: the log stays empty of
  // records but keeps its identity, so snapshots taken before and after
  // the truncation agree about which log they are paired with.
  Status status = internal_file::HookedTruncate(
      file_, static_cast<size_t>(header_bytes_), path_);
  if (!status.ok()) return status;
  status = internal_file::HookedFlushAndSync(file_, path_);
  if (!status.ok()) return status;
  valid_bytes_ = header_bytes_;
  written_bytes_ = header_bytes_;
  obs::MetricsRegistry::Global().GetCounter("wal.truncates")->Increment();
  return OkStatus();
}

void WriteAheadLog::EnsureSeqAtLeast(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (seq > last_seq_) last_seq_ = seq;
  if (seq > written_seq_) written_seq_ = seq;
  if (seq > durable_seq_) durable_seq_ = seq;
  if (options_.sequencer != nullptr) {
    uint64_t current = options_.sequencer->load();
    while (current < seq &&
           !options_.sequencer->compare_exchange_weak(current, seq)) {
    }
  }
}

uint64_t WriteAheadLog::last_seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_seq_;
}

}  // namespace pws::io
