#ifndef PWS_IO_CORPUS_IO_H_
#define PWS_IO_CORPUS_IO_H_

#include <string>

#include "corpus/corpus.h"
#include "util/status.h"

namespace pws::io {

/// Serializes a corpus, one document per line:
///   D <id> <primary_topic> <primary_location> <url> <domain>
///   T <title>
///   B <body>
///   M <mixture weights, tab separated>
///   P <planted location ids, tab separated; line omitted when empty>
/// Text fields contain no tabs/newlines by construction (the generator
/// emits space-joined tokens); the loader rejects them defensively.
std::string CorpusToText(const corpus::Corpus& corpus);

/// Parses the CorpusToText format (exact round trip).
StatusOr<corpus::Corpus> CorpusFromText(const std::string& text);

/// File convenience wrappers.
Status SaveCorpus(const corpus::Corpus& corpus, const std::string& path);
StatusOr<corpus::Corpus> LoadCorpus(const std::string& path);

}  // namespace pws::io

#endif  // PWS_IO_CORPUS_IO_H_
