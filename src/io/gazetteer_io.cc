#include "io/gazetteer_io.h"

#include <unordered_set>

#include "util/file_util.h"
#include "util/string_util.h"

namespace pws::io {

std::string GazetteerToTsv(const geo::LocationOntology& ontology) {
  std::string out;
  // Primary node names, which AddNode re-registers automatically.
  std::unordered_set<std::string> primary_keys;
  for (geo::LocationId id = 1; id < ontology.size(); ++id) {
    const geo::LocationNode& node = ontology.node(id);
    out += "N\t";
    out += std::to_string(node.id);
    out += '\t';
    out += std::to_string(node.parent);
    out += '\t';
    out += std::to_string(static_cast<int>(node.level));
    out += '\t';
    out += FormatDouble(node.coords.lat, 6);
    out += '\t';
    out += FormatDouble(node.coords.lon, 6);
    out += '\t';
    out += FormatDouble(node.population, 1);
    out += '\t';
    out += node.name;
    out += '\n';
    primary_keys.insert(node.name + "\t" + std::to_string(id));
  }
  for (const auto& [name, id] : ontology.AllNames()) {
    if (id == ontology.root()) continue;
    if (primary_keys.count(name + "\t" + std::to_string(id)) > 0) continue;
    out += "A\t";
    out += std::to_string(id);
    out += '\t';
    out += name;
    out += '\n';
  }
  return out;
}

StatusOr<geo::LocationOntology> GazetteerFromTsv(const std::string& tsv) {
  geo::LocationOntology ontology;
  for (const std::string& line : SplitLines(tsv)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields[0] == "N") {
      if (fields.size() != 8) {
        return InvalidArgumentError("bad node line: " + line);
      }
      int64_t id = 0;
      int64_t parent = 0;
      int64_t level = 0;
      double lat = 0.0;
      double lon = 0.0;
      double population = 0.0;
      if (!ParseInt64(fields[1], &id) || !ParseInt64(fields[2], &parent) ||
          !ParseInt64(fields[3], &level) || !ParseDouble(fields[4], &lat) ||
          !ParseDouble(fields[5], &lon) ||
          !ParseDouble(fields[6], &population)) {
        return InvalidArgumentError("bad node numbers: " + line);
      }
      if (id != ontology.size()) {
        return InvalidArgumentError("node ids must be dense and in order: " +
                                    line);
      }
      if (parent < 0 || parent >= ontology.size()) {
        return InvalidArgumentError("unknown parent in: " + line);
      }
      if (level < 1 || level > 3) {
        return InvalidArgumentError("bad level in: " + line);
      }
      ontology.AddNode(fields[7], static_cast<geo::LocationLevel>(level),
                       static_cast<geo::LocationId>(parent), {lat, lon},
                       population);
    } else if (fields[0] == "A") {
      if (fields.size() != 3) {
        return InvalidArgumentError("bad alias line: " + line);
      }
      int64_t id = 0;
      if (!ParseInt64(fields[1], &id) || id < 0 || id >= ontology.size()) {
        return InvalidArgumentError("bad alias target: " + line);
      }
      ontology.AddAlias(static_cast<geo::LocationId>(id), fields[2]);
    } else {
      return InvalidArgumentError("unknown record type: " + line);
    }
  }
  return ontology;
}

Status SaveGazetteer(const geo::LocationOntology& ontology,
                     const std::string& path) {
  return WriteStringToFile(path, GazetteerToTsv(ontology));
}

StatusOr<geo::LocationOntology> LoadGazetteer(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return GazetteerFromTsv(*contents);
}

}  // namespace pws::io
