#include "io/profile_io.h"

#include <climits>
#include <cmath>
#include <cstdio>

#include "util/file_util.h"
#include "util/string_util.h"

namespace pws::io {
namespace {

// Hex float rendering: exact double round-trips.
std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

}  // namespace

std::string ProfileToText(const profile::UserProfile& profile) {
  std::string out = "U\t" + std::to_string(profile.user()) + "\t" +
                    std::to_string(profile.impressions_observed()) + "\n";
  for (const auto& [term, weight] : profile.TopContentConcepts(INT_MAX)) {
    out += "C\t";
    out += HexDouble(weight);
    out += '\t';
    out += term;
    out += '\n';
  }
  for (const auto& [location, weight] : profile.TopLocations(INT_MAX)) {
    out += "L\t";
    out += HexDouble(weight);
    out += '\t';
    out += std::to_string(location);
    out += '\n';
  }
  return out;
}

StatusOr<profile::UserProfile> ProfileFromText(
    const std::string& text, const geo::LocationOntology* ontology) {
  if (ontology == nullptr) {
    return InvalidArgumentError("ontology must not be null");
  }
  // SplitLines strips CRLF endings, so a profile edited on (or shipped
  // through) a Windows box still parses; trailing blank lines fall to
  // the empty-line skip below.
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.empty() || !StartsWith(lines[0], "U\t")) {
    return InvalidArgumentError("profile text must start with a U line");
  }
  const std::vector<std::string> header = StrSplit(lines[0], '\t');
  int64_t user = 0;
  int64_t impressions = 0;
  if (header.size() != 3 || !ParseInt64(header[1], &user) ||
      !ParseInt64(header[2], &impressions)) {
    return InvalidArgumentError("bad profile header: " + lines[0]);
  }
  profile::UserProfile profile(static_cast<click::UserId>(user), ontology);
  profile.RestoreImpressionCount(static_cast<int>(impressions));
  for (size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 3) {
      return InvalidArgumentError("bad profile line: " + line);
    }
    double weight = 0.0;
    if (!ParseDouble(fields[1], &weight)) {
      return InvalidArgumentError("bad weight in: " + line);
    }
    // A nan/inf weight (hand edit, bit rot) would poison every ranking
    // score computed against this profile — reject it at the boundary.
    if (!std::isfinite(weight)) {
      return InvalidArgumentError("non-finite weight in: " + line);
    }
    if (fields[0] == "C") {
      profile.AddContentWeight(fields[2], weight);
    } else if (fields[0] == "L") {
      int64_t location = 0;
      if (!ParseInt64(fields[2], &location) || location < 0 ||
          location >= ontology->size()) {
        return InvalidArgumentError("bad location id in: " + line);
      }
      profile.AddLocationWeight(static_cast<geo::LocationId>(location),
                                weight);
    } else {
      return InvalidArgumentError("unknown profile record: " + line);
    }
  }
  return profile;
}

Status SaveProfile(const profile::UserProfile& profile,
                   const std::string& path) {
  return WriteStringToFile(path, ProfileToText(profile));
}

StatusOr<profile::UserProfile> LoadProfile(
    const std::string& path, const geo::LocationOntology* ontology) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return ProfileFromText(*contents, ontology);
}

}  // namespace pws::io
