#ifndef PWS_IO_WAL_H_
#define PWS_IO_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pws::io {

/// Append-only write-ahead log with length + CRC framed records — the
/// durability gap-filler between engine snapshots: every state-mutating
/// event (click observation, training run) is appended here, and after a
/// crash the tail since the last snapshot is replayed.
///
/// On-disk frame layout (little-endian, 16-byte header):
///
///   [u32 payload_len][u32 crc32][u64 seq][payload bytes]
///
/// The CRC covers the seq field and the payload, so a corrupted header
/// is as detectable as a corrupted body. Sequence numbers increase
/// monotonically and never reset — not even across Truncate — so a
/// snapshot can record "everything up to seq S is already folded in" and
/// recovery can skip duplicate records even when a crash lands between a
/// snapshot commit and the WAL truncation that should have followed it.
///
/// Torn tails are expected, not errors: a crash mid-append leaves a
/// partial frame at the end of the file, and Replay drops everything
/// from the first frame that fails its length or CRC check. Open repairs
/// such a file by truncating the torn tail before appending, so new
/// records never land behind garbage that would hide them from the next
/// replay.
///
/// Thread-safety: Append and Truncate are mutually serialized by an
/// internal mutex, so concurrent Observe calls on different users may
/// share one log. Replay is a static read-only scan of a path.
class WriteAheadLog {
 public:
  struct Options {
    /// fsync after every append. Turning this off batches durability to
    /// the OS's writeback (faster, loses the tail on power failure —
    /// never an inconsistent state, just a shorter log).
    bool sync_each_append = true;
  };

  /// One decoded record.
  struct ReplayedRecord {
    uint64_t seq = 0;
    std::string payload;
  };

  /// Everything a recovery pass needs to know about a log file.
  struct ReplayResult {
    std::vector<ReplayedRecord> records;
    /// True when the file ended in a partial or corrupt frame.
    bool torn_tail = false;
    /// Bytes of valid frames (the repair truncation point).
    uint64_t valid_bytes = 0;
    /// Bytes dropped after the last valid frame.
    uint64_t dropped_bytes = 0;
  };

  /// Opens (creating if absent) the log at `path` for appending. Scans
  /// existing frames to continue the sequence numbering past them and
  /// truncates a torn tail left by a crash. A missing file is a fresh,
  /// empty log.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const Options& options);
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  /// Decodes every complete frame of the log at `path`. A missing file
  /// replays as empty. Never fails on torn/corrupt tails — that is the
  /// case it exists for; only I/O errors return non-OK.
  static StatusOr<ReplayResult> Replay(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record, assigning it the next sequence number, and
  /// (by default) fsyncs. On failure the frame may be torn — the next
  /// Replay/Open drops it.
  Status Append(std::string_view payload);

  /// Truncates the log to empty after a successful snapshot. Sequence
  /// numbering continues where it left off.
  Status Truncate();

  /// Highest sequence number ever assigned (0 when none).
  uint64_t last_seq() const;

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, Options options, std::FILE* file,
                uint64_t last_seq, uint64_t valid_bytes);

  std::string path_;
  Options options_;
  std::FILE* file_;
  mutable std::mutex mutex_;
  uint64_t last_seq_ = 0;
  /// File size after the last successful append/truncate. A failed
  /// append rolls the file back to this point so the torn frame cannot
  /// hide later successful appends from Replay.
  uint64_t valid_bytes_ = 0;
  std::string frame_buffer_;  // Reused per append under mutex_.
};

}  // namespace pws::io

#endif  // PWS_IO_WAL_H_
