#ifndef PWS_IO_WAL_H_
#define PWS_IO_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace pws::io {

/// Append-only write-ahead log with length + CRC framed records — the
/// durability gap-filler between engine snapshots: every state-mutating
/// event (click observation, training run) is appended here, and after a
/// crash the tail since the last snapshot is replayed.
///
/// On-disk frame layout (little-endian, 16-byte header):
///
///   [u32 payload_len][u32 crc32][u64 seq][payload bytes]
///
/// The CRC covers the payload_len and seq header fields and the payload,
/// so a corrupted header — including a flipped length byte — is as
/// detectable as a corrupted body. Sequence numbers increase
/// monotonically and never reset — not even across Truncate — so a
/// snapshot can record "everything up to seq S is already folded in" and
/// recovery can skip duplicate records even when a crash lands between a
/// snapshot commit and the WAL truncation that should have followed it.
///
/// The sequence counter itself lives in memory: Open derives it from the
/// frames present in the file, so a log truncated by a snapshot and then
/// reopened by a fresh process starts back at 0. Whoever owns the
/// snapshot must re-impose its high-water mark via EnsureSeqAtLeast
/// before appending (PwsEngine::RestoreState does), or post-restart
/// records would reuse sequence numbers a later recovery skips as
/// already-applied.
///
/// The file opens with a 16-byte lineage header ("PWSWAL1\n" magic plus
/// a random 64-bit lineage id, written when the file is created and
/// preserved across Truncate): two WAL files never share a lineage id,
/// and a snapshot records the id of the WAL it was paired with, so
/// recovery can refuse to replay a log tail on top of a snapshot from a
/// different lineage — sequence numbers only mean something within one
/// log's history. A pre-header (legacy) file still opens and replays;
/// its lineage id reads as 0, which pairing checks treat as unknown.
///
/// Torn tails are expected, not errors: a crash mid-append leaves a
/// partial frame at the end of the file, and Replay drops everything
/// after the last decodable frame. Open repairs such a file by
/// truncating the torn tail before appending, so new records never land
/// behind garbage that would hide them from the next replay. Mid-file
/// corruption is contained, not amplified: Replay resyncs by scanning
/// forward for the next frame whose header and CRC check out (and whose
/// seq continues the strictly increasing sequence), so one corrupt frame
/// loses only itself, never every frame after it.
///
/// Thread-safety: Append and Truncate are mutually serialized by an
/// internal mutex, so concurrent Observe calls on different users may
/// share one log. With Options::group_commit the frame writes stay
/// serialized but the fsync runs outside the mutex and is shared by
/// every frame written since the previous sync — concurrent appenders
/// pay ~one fsync per batch instead of one each, and each Append still
/// returns only after its own record is durable. Replay is a static
/// read-only scan of a path.
class WriteAheadLog {
 public:
  struct Options {
    /// fsync after every append. Turning this off batches durability to
    /// the OS's writeback (faster, loses the tail on power failure —
    /// never an inconsistent state, just a shorter log). Ignored when
    /// group_commit is on (group commit always syncs before acking).
    bool sync_each_append = true;
    /// Group commit: concurrent appends write their frames immediately
    /// but *share* fsyncs — one leader syncs everything written so far
    /// while followers wait, so N concurrent appends cost ~1 fsync, not
    /// N. Append still returns only after its own record is durable, so
    /// the durability contract is unchanged: an acked record survives
    /// any crash. What a crash can lose is exactly the un-synced tail —
    /// frames whose Append had not yet returned (at-most-tail loss; the
    /// next Open repairs any torn frame at the end). Off by default.
    bool group_commit = false;
    /// Most frames one group-commit fsync may cover: once this many
    /// appends are waiting the leader stops batching and syncs.
    int group_max_batch = 64;
    /// How long (µs) the sync leader waits for more appends to join its
    /// batch before syncing what it has. 0 = sync immediately (batching
    /// still happens opportunistically while a sync is in flight).
    int group_wait_us = 200;
    /// When set, sequence numbers are drawn from this shared counter
    /// instead of the per-file one, so several shard logs share one
    /// sequence space and their records can be merge-replayed into a
    /// total order. Open raises the counter to at least the file's own
    /// max. Must outlive the log.
    std::atomic<uint64_t>* sequencer = nullptr;
  };

  /// One decoded record.
  struct ReplayedRecord {
    uint64_t seq = 0;
    std::string payload;
  };

  /// Everything a recovery pass needs to know about a log file.
  struct ReplayResult {
    std::vector<ReplayedRecord> records;
    /// The file's lineage id (0 for a legacy file without a header).
    uint64_t lineage_id = 0;
    /// True when garbage bytes follow the last valid frame (a partial
    /// or corrupt frame at the very end of the file).
    bool torn_tail = false;
    /// Offset just past the last valid frame (the repair truncation
    /// point). May include resync-skipped gap bytes before it.
    uint64_t valid_bytes = 0;
    /// Total bytes skipped: mid-file corruption gaps plus the torn tail.
    uint64_t dropped_bytes = 0;
  };

  /// Opens (creating if absent) the log at `path` for appending. Scans
  /// existing frames to continue the sequence numbering past them and
  /// truncates a torn tail left by a crash. A missing file is a fresh,
  /// empty log.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, const Options& options);
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  /// Decodes every complete frame of the log at `path`. A missing file
  /// replays as empty. Never fails on torn/corrupt tails — that is the
  /// case it exists for; only I/O errors return non-OK.
  static StatusOr<ReplayResult> Replay(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record, assigning it the next sequence number, and
  /// (by default) fsyncs. On failure the frame may be torn — the next
  /// Replay/Open drops it.
  Status Append(std::string_view payload);

  /// Truncates the log to empty after a successful snapshot. Sequence
  /// numbering continues where it left off.
  Status Truncate();

  /// Raises the sequence counter to at least `seq` (no-op when already
  /// there). Recovery calls this with the snapshot's high-water mark so
  /// appends after a restart never reuse sequence numbers the snapshot
  /// already claims — Open alone cannot know about records that were
  /// truncated away.
  void EnsureSeqAtLeast(uint64_t seq);

  /// Highest sequence number ever assigned (0 when none).
  uint64_t last_seq() const;

  /// This log's lineage id: assigned randomly when the file was created,
  /// constant for the file's lifetime (Truncate preserves it). 0 only
  /// for a legacy file that predates the header.
  uint64_t lineage_id() const { return lineage_id_; }

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, Options options, std::FILE* file,
                uint64_t last_seq, uint64_t valid_bytes, uint64_t lineage_id,
                uint64_t header_bytes);

  /// Assigns the next sequence number (caller holds mutex_).
  uint64_t NextSeqLocked();
  /// Un-assigns `seq` after a failed append whose frame never reached
  /// the file, so the number is reused instead of leaving a gap (caller
  /// holds mutex_; the frame must have been rolled back already). With
  /// a shared sequencer the give-back is best effort — another shard
  /// may have drawn a later number, and replay tolerates the gap.
  void RollbackSeqLocked(uint64_t seq);
  /// The group-commit wait loop: blocks until `seq` is durable (OK) or
  /// its frame was destroyed by a failed-sync rollback (error), becoming
  /// the sync leader and running the shared fsync when no sync is in
  /// flight. Maintains group_waiters_ around GroupWaitLoopLocked.
  Status AwaitDurableLocked(uint64_t seq, std::unique_lock<std::mutex>& lock);
  Status GroupWaitLoopLocked(uint64_t seq, std::unique_lock<std::mutex>& lock);
  /// True when `seq` falls in a failed range — its frame was truncated
  /// away by a failed-sync rollback (caller holds mutex_).
  bool SeqFailedLocked(uint64_t seq) const;

  std::string path_;
  Options options_;
  std::FILE* file_;
  mutable std::mutex mutex_;
  uint64_t last_seq_ = 0;
  /// Immutable after Open.
  uint64_t lineage_id_ = 0;
  /// Size of the lineage header at the file's start (0 for legacy files);
  /// Truncate cuts back to this offset, not to 0.
  uint64_t header_bytes_ = 0;
  /// File size covered by the last successful fsync (or truncate). A
  /// failed *sync* rolls the file back to this point: the suspect frames
  /// cannot hide later successful appends from Replay.
  uint64_t valid_bytes_ = 0;
  /// File size after the last successfully *written* frame (>=
  /// valid_bytes_; equal outside group commit). A failed write rolls
  /// back to here, removing only the torn frame, not the pending
  /// not-yet-synced frames of concurrent appenders.
  uint64_t written_bytes_ = 0;
  // ---- group-commit state (all guarded by mutex_) ----
  /// Highest seq whose frame has been written (not necessarily synced).
  uint64_t written_seq_ = 0;
  /// Highest seq covered by a successful fsync.
  uint64_t durable_seq_ = 0;
  /// Seq ranges (lo, hi] destroyed by failed-sync rollbacks. A failed
  /// sync truncates the file back to valid_bytes_, which destroys every
  /// written-but-unsynced frame — including frames appended *while* the
  /// sync was in flight — and destroyed seqs are never reassigned
  /// (last_seq_ / the shared sequencer are not rolled back), so range
  /// membership is a sticky verdict: the waiter reports data loss even
  /// after later successful syncs advance durable_seq_ past the hole.
  /// Adjacent failures merge into one range, and the vector is cleared
  /// when the last group-commit waiter leaves — every future seq is
  /// beyond every recorded range by construction.
  std::vector<std::pair<uint64_t, uint64_t>> failed_ranges_;
  /// Appends currently inside the group-commit wait loop.
  int group_waiters_ = 0;
  bool sync_in_flight_ = false;
  std::condition_variable sync_cv_;
  std::string frame_buffer_;  // Reused per append under mutex_.
};

}  // namespace pws::io

#endif  // PWS_IO_WAL_H_
