#ifndef PWS_IO_PROFILE_IO_H_
#define PWS_IO_PROFILE_IO_H_

#include <string>

#include "profile/user_profile.h"
#include "util/status.h"

namespace pws::io {

/// Serializes a profile to text:
///   U <user_id> <impressions_observed>
///   C <weight> <term>
///   L <weight> <location_id>
/// Weights keep full precision (hex doubles) so round-trips are exact.
std::string ProfileToText(const profile::UserProfile& profile);

/// Parses the ProfileToText format into a fresh profile bound to
/// `ontology`. Fails with InvalidArgument on malformed input; location
/// ids must be valid in `ontology`.
StatusOr<profile::UserProfile> ProfileFromText(
    const std::string& text, const geo::LocationOntology* ontology);

/// File convenience wrappers.
Status SaveProfile(const profile::UserProfile& profile,
                   const std::string& path);
StatusOr<profile::UserProfile> LoadProfile(
    const std::string& path, const geo::LocationOntology* ontology);

}  // namespace pws::io

#endif  // PWS_IO_PROFILE_IO_H_
