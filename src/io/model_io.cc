#include "io/model_io.h"

#include <cmath>
#include <cstdio>

#include "util/file_util.h"
#include "util/string_util.h"

namespace pws::io {
namespace {

std::string HexDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Status ParseWeightLine(const std::string& line, int dimension,
                       std::vector<double>* out) {
  const std::vector<std::string> fields = StrSplit(line, '\t');
  if (static_cast<int>(fields.size()) != dimension + 1) {
    return InvalidArgumentError("wrong weight count in: " + line);
  }
  out->clear();
  out->reserve(dimension);
  for (int d = 1; d <= dimension; ++d) {
    double value = 0.0;
    if (!ParseDouble(fields[d], &value)) {
      return InvalidArgumentError("bad weight in: " + line);
    }
    // nan/inf in a weight vector silently corrupts every score the model
    // produces from then on; fail the load instead.
    if (!std::isfinite(value)) {
      return InvalidArgumentError("non-finite weight in: " + line);
    }
    out->push_back(value);
  }
  return OkStatus();
}

}  // namespace

std::string ModelToText(const ranking::RankSvm& model) {
  std::string out = "M\t" + std::to_string(model.dimension()) + "\t" +
                    (model.is_trained() ? "1" : "0") + "\nW";
  for (double w : model.weights()) {
    out += '\t';
    out += HexDouble(w);
  }
  out += "\nP";
  for (double p : model.prior()) {
    out += '\t';
    out += HexDouble(p);
  }
  out += '\n';
  return out;
}

StatusOr<ranking::RankSvm> ModelFromText(const std::string& text) {
  const std::vector<std::string> lines = SplitLines(text);
  if (lines.size() < 3 || !StartsWith(lines[0], "M\t") ||
      !StartsWith(lines[1], "W") || !StartsWith(lines[2], "P")) {
    return InvalidArgumentError("malformed model text");
  }
  const std::vector<std::string> header = StrSplit(lines[0], '\t');
  int64_t dimension = 0;
  if (header.size() != 3 || !ParseInt64(header[1], &dimension) ||
      dimension <= 0 || dimension > 1 << 20) {
    return InvalidArgumentError("bad model header: " + lines[0]);
  }
  const bool trained = header[2] == "1";

  std::vector<double> weights;
  std::vector<double> prior;
  PWS_RETURN_IF_ERROR(
      ParseWeightLine(lines[1], static_cast<int>(dimension), &weights));
  PWS_RETURN_IF_ERROR(
      ParseWeightLine(lines[2], static_cast<int>(dimension), &prior));

  ranking::RankSvm model(static_cast<int>(dimension));
  model.SetPrior(std::move(prior));
  if (trained) {
    model.set_weights(std::move(weights));
  }
  return model;
}

Status SaveModel(const ranking::RankSvm& model, const std::string& path) {
  return WriteStringToFile(path, ModelToText(model));
}

StatusOr<ranking::RankSvm> LoadModel(const std::string& path) {
  auto contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  return ModelFromText(*contents);
}

}  // namespace pws::io
