#ifndef PWS_PROFILE_PREFERENCE_PAIRS_H_
#define PWS_PROFILE_PREFERENCE_PAIRS_H_

#include <vector>

#include "click/click_log.h"

namespace pws::profile {

/// One pairwise training preference mined from clickthrough: within an
/// impression, `preferred_index` should rank above `other_index`
/// (indices into the record's interactions).
struct PreferencePair {
  int preferred_index = -1;
  int other_index = -1;
  /// Pair importance: graded clicks (long dwell) produce heavier pairs.
  double weight = 1.0;
};

/// Pair-mining strategies (E9 ablates these).
enum class PairMiningStrategy {
  /// Joachims skip-above: clicked ≻ every unclicked result ranked above
  /// it. Robust to position bias.
  kSkipAbove = 0,
  /// Clicked ≻ every unclicked result on the page. More pairs, more
  /// position-bias contamination.
  kClickVsAll = 1,
};

struct PairMiningOptions {
  PairMiningStrategy strategy = PairMiningStrategy::kSkipAbove;
  /// Weight pairs by the dwell grade of the click (1 or 2) instead of 1.
  bool grade_weighting = true;
  click::DwellGradeThresholds thresholds;
};

/// Extracts preference pairs from one impression.
std::vector<PreferencePair> MinePreferencePairs(
    const click::ClickRecord& record, const PairMiningOptions& options);

}  // namespace pws::profile

#endif  // PWS_PROFILE_PREFERENCE_PAIRS_H_
