#include "profile/entropy.h"

#include <algorithm>

#include "util/math_util.h"

namespace pws::profile {
namespace {

template <typename Key>
double MapEntropy(const IdMap<Key, int>& counts) {
  std::vector<double> weights;
  weights.reserve(counts.size());
  counts.ForEach([&](Key, const int& count) {
    weights.push_back(static_cast<double>(count));
  });
  return Entropy(weights);
}

}  // namespace

void ClickEntropyTracker::AddClick(
    int query_id, std::span<const concepts::ConceptId> content_ids,
    std::span<const geo::LocationId> locations) {
  QueryStats& stats = stats_[query_id];
  ++stats.clicks;
  for (concepts::ConceptId id : content_ids) ++stats.content_clicks[id];
  for (geo::LocationId loc : locations) ++stats.location_clicks[loc];
}

double ClickEntropyTracker::ContentEntropy(int query_id) const {
  auto it = stats_.find(query_id);
  return it == stats_.end() ? 0.0 : MapEntropy(it->second.content_clicks);
}

double ClickEntropyTracker::LocationEntropy(int query_id) const {
  auto it = stats_.find(query_id);
  return it == stats_.end() ? 0.0 : MapEntropy(it->second.location_clicks);
}

int ClickEntropyTracker::ClickCount(int query_id) const {
  auto it = stats_.find(query_id);
  return it == stats_.end() ? 0 : it->second.clicks;
}

double ClickEntropyTracker::AdaptiveLocationBlend(int query_id,
                                                  double min_alpha,
                                                  double max_alpha) const {
  // With no evidence, sit in the middle of the range.
  auto it = stats_.find(query_id);
  if (it == stats_.end() || it->second.clicks < 3) {
    return 0.5 * (min_alpha + max_alpha);
  }
  // Ramp: location entropy of ~0 -> min_alpha; >= 1.5 nats -> max_alpha.
  const double h = LocationEntropy(query_id);
  const double t = Clamp(h / 1.5, 0.0, 1.0);
  return min_alpha + t * (max_alpha - min_alpha);
}

std::vector<ClickEntropyTracker::QueryClickStats> ClickEntropyTracker::Export()
    const {
  std::vector<QueryClickStats> out;
  out.reserve(stats_.size());
  for (const auto& [query_id, stats] : stats_) {
    QueryClickStats entry;
    entry.query_id = query_id;
    entry.clicks = stats.clicks;
    entry.content_clicks.reserve(stats.content_clicks.size());
    stats.content_clicks.ForEach(
        [&](concepts::ConceptId id, const int& count) {
          entry.content_clicks.emplace_back(id, count);
        });
    entry.location_clicks.reserve(stats.location_clicks.size());
    stats.location_clicks.ForEach([&](geo::LocationId id, const int& count) {
      entry.location_clicks.emplace_back(id, count);
    });
    std::sort(entry.content_clicks.begin(), entry.content_clicks.end());
    std::sort(entry.location_clicks.begin(), entry.location_clicks.end());
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const QueryClickStats& a, const QueryClickStats& b) {
              return a.query_id < b.query_id;
            });
  return out;
}

void ClickEntropyTracker::Import(const std::vector<QueryClickStats>& stats) {
  stats_.clear();
  for (const QueryClickStats& entry : stats) {
    QueryStats& query_stats = stats_[entry.query_id];
    query_stats.clicks = entry.clicks;
    for (const auto& [id, count] : entry.content_clicks) {
      query_stats.content_clicks[id] = count;
    }
    for (const auto& [id, count] : entry.location_clicks) {
      query_stats.location_clicks[id] = count;
    }
  }
}

}  // namespace pws::profile
