#ifndef PWS_PROFILE_SESSION_MODEL_H_
#define PWS_PROFILE_SESSION_MODEL_H_

#include <span>
#include <vector>

#include "concepts/concept_interner.h"
#include "geo/location_ontology.h"
#include "util/id_map.h"

namespace pws::profile {

/// Knobs of the per-user session window (DESIGN.md §17).
struct SessionModelOptions {
  /// Bounded window: at most this many recent click events are kept
  /// (oldest dropped first).
  int max_events = 8;
  /// Session segmentation, matching click::SessionOptions semantics: a
  /// gap *strictly greater* than this many days since the last click
  /// starts a new session (the window resets). The default keeps one
  /// session per active day — the harness logs integer days.
  double max_gap_days = 0.0;
  /// Per-event age decay: the most recent event weighs 1, the one
  /// before it `decay`, then `decay²`, …
  double decay = 0.7;
};

/// One clicked result's concepts, remembered in the session window.
struct SessionEvent {
  int query_id = 0;
  double day = 0.0;
  std::vector<concepts::ConceptId> content;
  std::vector<geo::LocationId> locations;
};

/// A bounded window of the user's recent in-session clicks — the
/// short-term complement to the long-term UserProfile. The serve path
/// turns it into a per-result score boost: results sharing concepts with
/// what the user just clicked in this session move up, following the
/// session-context reranking of Volkovs, "Context Models for Web Search
/// Personalization". Plain value type; the engine guards each user's
/// window with UserState's session mutex.
class SessionWindow {
 public:
  /// Records one clicked result's concepts. A day gap strictly greater
  /// than options.max_gap_days since the previous event first clears the
  /// window (new session); the window then keeps at most
  /// options.max_events events.
  void AddClick(int query_id, double day,
                std::span<const concepts::ConceptId> content,
                std::span<const geo::LocationId> locations,
                const SessionModelOptions& options);

  /// Accumulates the window's decay-weighted click counts into flat
  /// maps: concept/location c gets Σ over events containing c of
  /// decay^age (age 0 = most recent event). The serve path calls this
  /// once per page and scores each result against the maps.
  void AccumulateWeights(const SessionModelOptions& options,
                         IdMap<concepts::ConceptId, double>* content,
                         IdMap<geo::LocationId, double>* locations) const;

  /// Session affinity of one result: the summed weights of its concepts
  /// under AccumulateWeights, saturated to [0, 1) via x / (1 + x).
  /// Convenience for tests and one-off scoring; the engine batches via
  /// AccumulateWeights.
  double ResultAffinity(std::span<const concepts::ConceptId> content,
                        std::span<const geo::LocationId> locations,
                        const SessionModelOptions& options) const;

  bool empty() const { return events_.empty(); }
  int size() const { return static_cast<int>(events_.size()); }
  /// Day of the most recent event (0 when empty).
  double last_day() const { return events_.empty() ? 0.0 : events_.back().day; }
  /// Events oldest-first — the persistence layer serializes these.
  const std::vector<SessionEvent>& events() const { return events_; }

  void Clear() { events_.clear(); }
  /// Installs persisted events (oldest-first), replacing the window.
  void Restore(std::vector<SessionEvent> events) {
    events_ = std::move(events);
  }

 private:
  std::vector<SessionEvent> events_;  // oldest first
};

}  // namespace pws::profile

#endif  // PWS_PROFILE_SESSION_MODEL_H_
