#ifndef PWS_PROFILE_GPS_AUGMENT_H_
#define PWS_PROFILE_GPS_AUGMENT_H_

#include "geo/gps.h"
#include "profile/user_profile.h"

namespace pws::profile {

/// GPS-augmentation knobs.
struct GpsAugmentOptions {
  /// Overall strength of GPS evidence relative to click evidence.
  double gps_gain = 1.5;
  /// Ancestors of a visited city are credited with this damping.
  double ancestor_damping = 0.5;
  /// Cities visited fewer times than this are ignored (noise fixes).
  int min_visits = 2;
};

/// Folds a user's GPS trace into their location profile: every city the
/// device dwells at receives weight proportional to log(1 + visits),
/// credited up the hierarchy. This is the paper's mobile extension — the
/// user's physical whereabouts sharpen the location preference even
/// before any clicks are observed.
void AugmentProfileWithGps(const geo::LocationOntology& ontology,
                           const geo::GpsTrace& trace,
                           const GpsAugmentOptions& options,
                           UserProfile* profile);

}  // namespace pws::profile

#endif  // PWS_PROFILE_GPS_AUGMENT_H_
