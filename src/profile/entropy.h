#ifndef PWS_PROFILE_ENTROPY_H_
#define PWS_PROFILE_ENTROPY_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "concepts/concept_interner.h"
#include "geo/location_ontology.h"
#include "util/id_map.h"

namespace pws::profile {

/// Aggregates click distributions per query across users and exposes the
/// two query-characterization signals of the paper:
///
///  * click content entropy  — diversity of content concepts users click
///    under a query; high entropy = users want different things = content
///    personalization pays off.
///  * click location entropy — diversity of clicked locations; high
///    entropy = the same query targets many places = location
///    personalization pays off; (near-)zero entropy = the query pins its
///    location already, so location re-ranking can't help.
///
/// Content concepts are tracked by interned ConceptId (see
/// concepts/concept_interner.h) — the serve path hands the tracker id
/// spans straight out of the impression pool, no strings.
class ClickEntropyTracker {
 public:
  ClickEntropyTracker() = default;

  /// Records one click's concepts under `query_id`.
  void AddClick(int query_id, std::span<const concepts::ConceptId> content_ids,
                std::span<const geo::LocationId> locations);

  /// Shannon entropy (nats) of the clicked-content-concept distribution
  /// of `query_id`; 0 for unseen queries.
  double ContentEntropy(int query_id) const;

  /// Shannon entropy (nats) of the clicked-location distribution.
  double LocationEntropy(int query_id) const;

  /// Number of clicks recorded for the query.
  int ClickCount(int query_id) const;

  /// Suggested location blend weight for a query, mapping location
  /// entropy into [min_alpha, max_alpha] via a soft ramp: queries whose
  /// clicks concentrate on one place get little location re-ranking.
  double AdaptiveLocationBlend(int query_id, double min_alpha,
                               double max_alpha) const;

  /// One query's click distribution in deterministic export form:
  /// queries ascending, counts sorted by id. (The live IdMaps iterate in
  /// insertion order, which depends on click arrival order — fine in
  /// memory, wrong for byte-compared snapshots.)
  struct QueryClickStats {
    int query_id = 0;
    int clicks = 0;
    std::vector<std::pair<concepts::ConceptId, int>> content_clicks;
    std::vector<std::pair<geo::LocationId, int>> location_clicks;
  };

  /// Dumps the full tracker state for persistence (SaveState).
  std::vector<QueryClickStats> Export() const;

  /// Replaces the tracker state with an exported dump (RestoreState —
  /// WAL replay then re-adds any post-snapshot clicks).
  void Import(const std::vector<QueryClickStats>& stats);

 private:
  struct QueryStats {
    IdMap<concepts::ConceptId, int> content_clicks;
    IdMap<geo::LocationId, int> location_clicks;
    int clicks = 0;
  };
  std::unordered_map<int, QueryStats> stats_;
};

}  // namespace pws::profile

#endif  // PWS_PROFILE_ENTROPY_H_
