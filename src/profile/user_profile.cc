#include "profile/user_profile.h"

#include <algorithm>

#include "util/check.h"

namespace pws::profile {
namespace {

double GradeGain(click::RelevanceGrade grade) {
  switch (grade) {
    case click::RelevanceGrade::kIrrelevant:
      return 0.25;  // Clicked but bounced: weak positive signal.
    case click::RelevanceGrade::kRelevant:
      return 1.0;
    case click::RelevanceGrade::kHighlyRelevant:
      return 2.0;
  }
  return 0.0;
}

}  // namespace

UserProfile::UserProfile(click::UserId user,
                         const geo::LocationOntology* ontology)
    : user_(user), ontology_(ontology) {
  PWS_CHECK(ontology_ != nullptr);
}

void UserProfile::ObserveImpression(
    const click::ClickRecord& record, const ImpressionConcepts& impression,
    const concepts::ContentOntology* content_ontology,
    const ProfileUpdateOptions& options) {
  PWS_CHECK_EQ(static_cast<int>(record.interactions.size()),
               impression.result_count());
  PWS_CHECK_EQ(record.interactions.size(),
               impression.locations_per_result.size());
  const auto grades = record.GradeInteractions(options.thresholds);
  const int first_click = record.FirstClickRank();

  // Page composition counts, for the lift correction: clicking a concept
  // present in most of the page carries little preference information,
  // clicking a rare one carries a lot. Credit is divided by the number of
  // results carrying the concept.
  IdMap<concepts::ConceptId, int> content_page_counts;
  IdMap<geo::LocationId, int> location_page_counts;
  int located_results = 0;
  for (size_t i = 0; i < record.interactions.size(); ++i) {
    for (concepts::ConceptId id : impression.content_ids(static_cast<int>(i))) {
      ++content_page_counts[id];
    }
    if (!impression.locations_per_result[i].empty()) ++located_results;
    for (geo::LocationId loc : impression.locations_per_result[i]) {
      ++location_page_counts[loc];
    }
  }
  // Location gate (see ranking/features.h): clicks on pages of non-geo
  // verticals carry locations only incidentally and must not pollute the
  // location preference.
  const double location_density =
      record.interactions.empty()
          ? 0.0
          : static_cast<double>(located_results) /
                record.interactions.size();
  double location_gate = 0.0;
  if (location_density > 0.25) {
    const double t = std::min(1.0, (location_density - 0.25) / 0.3);
    location_gate = t * t * (3.0 - 2.0 * t);
  }

  for (size_t i = 0; i < record.interactions.size(); ++i) {
    const auto& interaction = record.interactions[i];
    double delta = 0.0;
    if (interaction.clicked) {
      delta = options.click_gain * GradeGain(grades[i]);
    } else if (first_click >= 0 && interaction.rank < first_click) {
      // Skipped above the first click: negative evidence.
      delta = -options.skip_penalty;
    } else {
      continue;  // Unexamined tail results carry no signal.
    }

    // Content concepts of this result (lift-corrected).
    for (concepts::ConceptId id : impression.content_ids(static_cast<int>(i))) {
      const double lift = 1.0 / content_page_counts[id];
      const double credit = delta * lift;
      AddContentWeight(id, credit);
      if (credit > 0.0 && options.ontology_spreading &&
          content_ontology != nullptr) {
        const int index = content_ontology->LocalIndexOf(id);
        if (index >= 0) {
          for (int neighbour : content_ontology->Neighbors(
                   index, options.spread_min_similarity)) {
            const double sim = content_ontology->Similarity(index, neighbour);
            AddContentWeight(content_ontology->concept_id(neighbour),
                             credit * options.spread_factor * sim);
          }
        }
      }
    }

    // Location concepts of this result, credited up the hierarchy.
    // Locations the query named explicitly are excluded: clicking a
    // "hotel whistler" result about Whistler reveals nothing about a
    // standing location preference.
    for (geo::LocationId loc : impression.locations_per_result[i]) {
      bool query_explained = false;
      for (geo::LocationId qloc : impression.query_mentioned_locations) {
        if (loc == qloc || ontology_->IsAncestorOf(loc, qloc)) {
          query_explained = true;
          break;
        }
      }
      if (query_explained || location_gate <= 0.0) continue;
      double level_delta = location_gate * delta / location_page_counts[loc];
      for (geo::LocationId node : ontology_->PathToRoot(loc)) {
        if (node == ontology_->root()) break;
        AddLocationWeight(node, level_delta);
        level_delta *= options.ancestor_damping;
      }
    }
  }
  ++impressions_observed_;
}

void UserProfile::DecayDaily(const ProfileUpdateOptions& options) {
  content_weights_.ForEach(
      [&](concepts::ConceptId, double& w) { w *= options.daily_decay; });
  location_weights_.ForEach(
      [&](geo::LocationId, double& w) { w *= options.daily_decay; });
}

double UserProfile::ContentWeight(std::string_view term) const {
  const concepts::ConceptId id =
      concepts::ConceptInterner::Global().Find(term);
  return id == concepts::kInvalidConcept ? 0.0 : ContentWeight(id);
}

double UserProfile::LocationAffinity(geo::LocationId location) const {
  if (location == geo::kInvalidLocation) return 0.0;
  // Max-reduction: iteration order over the flat map does not affect the
  // result, so the switch from unordered_map is bit-identical.
  double best = 0.0;
  location_weights_.ForEach([&](geo::LocationId loc, const double& weight) {
    if (weight <= 0.0) return;
    best = std::max(best, weight * ontology_->Similarity(loc, location));
  });
  return best;
}

void UserProfile::AddLocationWeight(geo::LocationId location, double delta) {
  PWS_CHECK_GE(location, 0);
  location_weights_[location] += delta;
}

void UserProfile::AddContentWeight(concepts::ConceptId id, double delta) {
  PWS_CHECK_GE(id, 0);
  content_weights_[id] += delta;
}

void UserProfile::AddContentWeight(std::string_view term, double delta) {
  AddContentWeight(concepts::ConceptInterner::Global().Intern(term), delta);
}

int UserProfile::ContentConceptCount() const {
  int count = 0;
  content_weights_.ForEach([&](concepts::ConceptId, const double& w) {
    if (w != 0.0) ++count;
  });
  return count;
}

int UserProfile::LocationConceptCount() const {
  int count = 0;
  location_weights_.ForEach([&](geo::LocationId, const double& w) {
    if (w != 0.0) ++count;
  });
  return count;
}

double UserProfile::MaxContentWeight() const {
  double best = 0.0;
  content_weights_.ForEach([&](concepts::ConceptId, const double& w) {
    best = std::max(best, w);
  });
  return best;
}

double UserProfile::MaxLocationWeight() const {
  double best = 0.0;
  location_weights_.ForEach(
      [&](geo::LocationId, const double& w) { best = std::max(best, w); });
  return best;
}

std::vector<std::pair<std::string, double>> UserProfile::TopContentConcepts(
    int k) const {
  // The string boundary: ids resolve back to terms here, and ties break on
  // the term string, so the output is independent of id assignment order
  // (and the persisted profile format is unchanged).
  std::vector<std::pair<std::string, double>> all;
  all.reserve(content_weights_.size());
  const concepts::ConceptInterner& interner =
      concepts::ConceptInterner::Global();
  content_weights_.ForEach([&](concepts::ConceptId id, const double& w) {
    all.emplace_back(interner.TermOf(id), w);
  });
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<std::pair<geo::LocationId, double>> UserProfile::TopLocations(
    int k) const {
  std::vector<std::pair<geo::LocationId, double>> all;
  all.reserve(location_weights_.size());
  location_weights_.ForEach([&](geo::LocationId loc, const double& w) {
    all.emplace_back(loc, w);
  });
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

}  // namespace pws::profile
