#ifndef PWS_PROFILE_USER_PROFILE_H_
#define PWS_PROFILE_USER_PROFILE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "click/click_log.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/location_ontology.h"

namespace pws::profile {

/// The concepts attached to one impression, produced by the engine's
/// extractors and consumed by profile updates and feature extraction:
/// element i describes the result shown at position i.
struct ImpressionConcepts {
  /// Content concepts present in result i's title+snippet.
  std::vector<std::vector<std::string>> content_terms_per_result;
  /// Location nodes mentioned in result i's document.
  std::vector<std::vector<geo::LocationId>> locations_per_result;
  /// Locations the query named explicitly. Clicks on results matching
  /// these are explained by the query, not by a standing user preference,
  /// so the profile update gives them no location credit (residual
  /// preference learning).
  std::vector<geo::LocationId> query_mentioned_locations;
};

/// Profile update knobs.
struct ProfileUpdateOptions {
  /// Weight added per click, scaled by the dwell grade (0.25/1/2).
  double click_gain = 1.0;
  /// Weight subtracted for results skipped above a click.
  double skip_penalty = 0.25;
  /// Spread a clicked concept's gain to ontology neighbours with
  /// similarity >= spread_min_similarity, scaled by spread_factor * sim.
  bool ontology_spreading = true;
  double spread_factor = 0.5;
  double spread_min_similarity = 0.3;
  /// Location gains also credit ancestors, damped per level.
  double ancestor_damping = 0.5;
  /// Exponential forgetting applied at day boundaries.
  double daily_decay = 0.995;
  click::DwellGradeThresholds thresholds;
};

/// The ontology-based user profile of the paper: a weighted set of
/// content concepts and a weighted set of location nodes, accumulated
/// online from the user's clickthrough. Positive weights mark concepts
/// the user clicks; skipped results push weights down.
class UserProfile {
 public:
  /// Creates an empty profile bound to a gazetteer (not owned).
  UserProfile(click::UserId user, const geo::LocationOntology* ontology);

  click::UserId user() const { return user_; }

  /// Folds one impression into the profile. `content_ontology` (may be
  /// null) enables similarity spreading between content concepts of this
  /// impression's query.
  void ObserveImpression(const click::ClickRecord& record,
                         const ImpressionConcepts& impression,
                         const concepts::ContentOntology* content_ontology,
                         const ProfileUpdateOptions& options);

  /// Applies one day's exponential decay to every weight.
  void DecayDaily(const ProfileUpdateOptions& options);

  /// Current weight of a content concept (0 when unseen).
  double ContentWeight(const std::string& term) const;

  /// Current weight of a location node (0 when unseen).
  double LocationWeight(geo::LocationId location) const;

  /// Soft location match: max over profile locations of
  /// weight * ontology-similarity(location, profile location). Lets a
  /// Whistler preference transfer to all of British Columbia.
  double LocationAffinity(geo::LocationId location) const;

  /// Adds `delta` to a location's weight directly (GPS augmentation and
  /// tests use this).
  void AddLocationWeight(geo::LocationId location, double delta);

  /// Adds `delta` to a content concept's weight directly.
  void AddContentWeight(const std::string& term, double delta);

  /// Number of concepts with non-zero weight.
  int ContentConceptCount() const;
  int LocationConceptCount() const;

  /// Largest positive weight in each map (0 for empty/all-negative
  /// profiles). Feature extraction divides by these so features stay
  /// scale-free as raw weights grow with observation count.
  double MaxContentWeight() const;
  double MaxLocationWeight() const;

  /// Top-k content concepts / locations by weight (for inspection).
  std::vector<std::pair<std::string, double>> TopContentConcepts(int k) const;
  std::vector<std::pair<geo::LocationId, double>> TopLocations(int k) const;

  /// Total number of impressions observed.
  int impressions_observed() const { return impressions_observed_; }

  /// Restores the impression counter when loading a persisted profile
  /// (io::ProfileFromText). Not for use during normal operation.
  void RestoreImpressionCount(int count) { impressions_observed_ = count; }

 private:
  click::UserId user_;
  const geo::LocationOntology* ontology_;
  std::unordered_map<std::string, double> content_weights_;
  std::unordered_map<geo::LocationId, double> location_weights_;
  int impressions_observed_ = 0;
};

}  // namespace pws::profile

#endif  // PWS_PROFILE_USER_PROFILE_H_
