#ifndef PWS_PROFILE_USER_PROFILE_H_
#define PWS_PROFILE_USER_PROFILE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "click/click_log.h"
#include "concepts/concept_interner.h"
#include "concepts/content_ontology.h"
#include "concepts/location_concepts.h"
#include "geo/location_ontology.h"
#include "util/id_map.h"

namespace pws::profile {

/// The concepts attached to one impression, produced by the engine's
/// extractors and consumed by profile updates and feature extraction:
/// result i's content concepts are the interned-ids slice
/// content_ids(i) of one flat pool (no per-result string vectors — the
/// learning loop moves concepts around as 4-byte ids; strings exist only
/// at the extraction and I/O boundaries).
struct ImpressionConcepts {
  /// Flat pool of interned concept ids, all results back to back.
  std::vector<concepts::ConceptId> content_pool;
  /// Result i's slice of the pool is [content_offsets[i],
  /// content_offsets[i+1]); size result_count() + 1 (empty before the
  /// first AppendResult*).
  std::vector<int32_t> content_offsets;
  /// Location nodes mentioned in result i's document.
  std::vector<std::vector<geo::LocationId>> locations_per_result;
  /// Locations the query named explicitly. Clicks on results matching
  /// these are explained by the query, not by a standing user preference,
  /// so the profile update gives them no location credit (residual
  /// preference learning).
  std::vector<geo::LocationId> query_mentioned_locations;

  int result_count() const {
    return content_offsets.empty()
               ? 0
               : static_cast<int>(content_offsets.size()) - 1;
  }

  std::span<const concepts::ConceptId> content_ids(int i) const {
    return std::span<const concepts::ConceptId>(
        content_pool.data() + content_offsets[i],
        content_pool.data() + content_offsets[i + 1]);
  }

  /// Appends the next result's concept ids to the pool.
  void AppendResultIds(std::span<const concepts::ConceptId> ids) {
    if (content_offsets.empty()) content_offsets.push_back(0);
    content_pool.insert(content_pool.end(), ids.begin(), ids.end());
    content_offsets.push_back(static_cast<int32_t>(content_pool.size()));
  }

  /// Appends the next result's concepts given as terms, interning them —
  /// the string-boundary builder for tests and ad-hoc callers.
  void AppendResultTerms(const std::vector<std::string>& terms) {
    if (content_offsets.empty()) content_offsets.push_back(0);
    for (const std::string& term : terms) {
      content_pool.push_back(concepts::ConceptInterner::Global().Intern(term));
    }
    content_offsets.push_back(static_cast<int32_t>(content_pool.size()));
  }
};

/// Profile update knobs.
struct ProfileUpdateOptions {
  /// Weight added per click, scaled by the dwell grade (0.25/1/2).
  double click_gain = 1.0;
  /// Weight subtracted for results skipped above a click.
  double skip_penalty = 0.25;
  /// Spread a clicked concept's gain to ontology neighbours with
  /// similarity >= spread_min_similarity, scaled by spread_factor * sim.
  bool ontology_spreading = true;
  double spread_factor = 0.5;
  double spread_min_similarity = 0.3;
  /// Location gains also credit ancestors, damped per level.
  double ancestor_damping = 0.5;
  /// Exponential forgetting applied at day boundaries.
  double daily_decay = 0.995;
  click::DwellGradeThresholds thresholds;
};

/// The ontology-based user profile of the paper: a weighted set of
/// content concepts and a weighted set of location nodes, accumulated
/// online from the user's clickthrough. Positive weights mark concepts
/// the user clicks; skipped results push weights down.
///
/// Both weight sets are flat id-keyed maps (IdMap): content concepts by
/// their process-wide interned ConceptId, locations by LocationId.
/// String-keyed accessors remain as boundary conveniences for I/O and
/// tests; the hot paths (feature extraction, impression updates) never
/// touch a string.
class UserProfile {
 public:
  /// Creates an empty profile bound to a gazetteer (not owned).
  UserProfile(click::UserId user, const geo::LocationOntology* ontology);

  click::UserId user() const { return user_; }

  /// Folds one impression into the profile. `content_ontology` (may be
  /// null) enables similarity spreading between content concepts of this
  /// impression's query.
  void ObserveImpression(const click::ClickRecord& record,
                         const ImpressionConcepts& impression,
                         const concepts::ContentOntology* content_ontology,
                         const ProfileUpdateOptions& options);

  /// Applies one day's exponential decay to every weight.
  void DecayDaily(const ProfileUpdateOptions& options);

  /// Current weight of a content concept id (0 when unseen).
  double ContentWeight(concepts::ConceptId id) const {
    return content_weights_.ValueOr(id, 0.0);
  }

  /// Current weight of a content concept term (0 when unseen). Boundary
  /// convenience: resolves the term through the global interner.
  double ContentWeight(std::string_view term) const;

  /// Current weight of a location node (0 when unseen).
  double LocationWeight(geo::LocationId location) const {
    return location_weights_.ValueOr(location, 0.0);
  }

  /// Soft location match: max over profile locations of
  /// weight * ontology-similarity(location, profile location). Lets a
  /// Whistler preference transfer to all of British Columbia.
  double LocationAffinity(geo::LocationId location) const;

  /// Adds `delta` to a location's weight directly (GPS augmentation and
  /// tests use this).
  void AddLocationWeight(geo::LocationId location, double delta);

  /// Adds `delta` to a content concept's weight directly.
  void AddContentWeight(concepts::ConceptId id, double delta);

  /// Adds `delta` by term, interning it — the I/O-boundary form
  /// (io::ProfileFromText and tests).
  void AddContentWeight(std::string_view term, double delta);

  /// Number of concepts with non-zero weight.
  int ContentConceptCount() const;
  int LocationConceptCount() const;

  /// Largest positive weight in each map (0 for empty/all-negative
  /// profiles). Feature extraction divides by these so features stay
  /// scale-free as raw weights grow with observation count.
  double MaxContentWeight() const;
  double MaxLocationWeight() const;

  /// Top-k content concepts / locations by weight (for inspection and
  /// serialization — the string boundary; ids are resolved back to terms
  /// through the interner and ties break on the term string, so output
  /// order is independent of id assignment order).
  std::vector<std::pair<std::string, double>> TopContentConcepts(int k) const;
  std::vector<std::pair<geo::LocationId, double>> TopLocations(int k) const;

  /// Total number of impressions observed.
  int impressions_observed() const { return impressions_observed_; }

  /// Restores the impression counter when loading a persisted profile
  /// (io::ProfileFromText). Not for use during normal operation.
  void RestoreImpressionCount(int count) { impressions_observed_ = count; }

 private:
  click::UserId user_;
  const geo::LocationOntology* ontology_;
  IdMap<concepts::ConceptId, double> content_weights_;
  IdMap<geo::LocationId, double> location_weights_;
  int impressions_observed_ = 0;
};

}  // namespace pws::profile

#endif  // PWS_PROFILE_USER_PROFILE_H_
