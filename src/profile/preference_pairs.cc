#include "profile/preference_pairs.h"

namespace pws::profile {

std::vector<PreferencePair> MinePreferencePairs(
    const click::ClickRecord& record, const PairMiningOptions& options) {
  std::vector<PreferencePair> pairs;
  const auto grades = record.GradeInteractions(options.thresholds);
  const int n = static_cast<int>(record.interactions.size());
  for (int i = 0; i < n; ++i) {
    const auto& clicked = record.interactions[i];
    if (!clicked.clicked) continue;
    // Dwell-graded clicks below the "relevant" threshold are treated as
    // noise clicks and mined with reduced weight.
    double weight = 1.0;
    if (options.grade_weighting) {
      switch (grades[i]) {
        case click::RelevanceGrade::kIrrelevant:
          weight = 0.25;
          break;
        case click::RelevanceGrade::kRelevant:
          weight = 1.0;
          break;
        case click::RelevanceGrade::kHighlyRelevant:
          weight = 2.0;
          break;
      }
    }
    for (int j = 0; j < n; ++j) {
      if (record.interactions[j].clicked) continue;
      const bool eligible =
          options.strategy == PairMiningStrategy::kClickVsAll
              ? true
              : record.interactions[j].rank < clicked.rank;
      if (eligible) pairs.push_back({i, j, weight});
    }
  }
  return pairs;
}

}  // namespace pws::profile
