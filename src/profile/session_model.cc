#include "profile/session_model.h"

#include <algorithm>

namespace pws::profile {

void SessionWindow::AddClick(int query_id, double day,
                             std::span<const concepts::ConceptId> content,
                             std::span<const geo::LocationId> locations,
                             const SessionModelOptions& options) {
  if (!events_.empty() && day - events_.back().day > options.max_gap_days) {
    events_.clear();
  }
  SessionEvent event;
  event.query_id = query_id;
  event.day = day;
  event.content.assign(content.begin(), content.end());
  event.locations.assign(locations.begin(), locations.end());
  events_.push_back(std::move(event));
  const int max_events = std::max(1, options.max_events);
  if (static_cast<int>(events_.size()) > max_events) {
    events_.erase(events_.begin(),
                  events_.begin() + (events_.size() - max_events));
  }
}

void SessionWindow::AccumulateWeights(
    const SessionModelOptions& options,
    IdMap<concepts::ConceptId, double>* content,
    IdMap<geo::LocationId, double>* locations) const {
  double weight = 1.0;
  // Walk newest-to-oldest so the age-decay is one running multiply.
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    for (concepts::ConceptId id : it->content) (*content)[id] += weight;
    for (geo::LocationId loc : it->locations) (*locations)[loc] += weight;
    weight *= options.decay;
  }
}

double SessionWindow::ResultAffinity(
    std::span<const concepts::ConceptId> content,
    std::span<const geo::LocationId> locations,
    const SessionModelOptions& options) const {
  if (events_.empty()) return 0.0;
  IdMap<concepts::ConceptId, double> content_weights;
  IdMap<geo::LocationId, double> location_weights;
  AccumulateWeights(options, &content_weights, &location_weights);
  double overlap = 0.0;
  for (concepts::ConceptId id : content) {
    overlap += content_weights.ValueOr(id, 0.0);
  }
  for (geo::LocationId loc : locations) {
    overlap += location_weights.ValueOr(loc, 0.0);
  }
  return overlap / (1.0 + overlap);
}

}  // namespace pws::profile
