#include "profile/gps_augment.h"

#include <cmath>

#include "util/check.h"

namespace pws::profile {

void AugmentProfileWithGps(const geo::LocationOntology& ontology,
                           const geo::GpsTrace& trace,
                           const GpsAugmentOptions& options,
                           UserProfile* profile) {
  PWS_CHECK(profile != nullptr);
  for (const auto& [city, visits] : CityVisitCounts(ontology, trace)) {
    if (visits < options.min_visits) continue;
    double gain = options.gps_gain * std::log1p(static_cast<double>(visits));
    for (geo::LocationId node : ontology.PathToRoot(city)) {
      if (node == ontology.root()) break;
      profile->AddLocationWeight(node, gain);
      gain *= options.ancestor_damping;
    }
  }
}

}  // namespace pws::profile
