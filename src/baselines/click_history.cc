#include "baselines/click_history.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/random.h"

namespace pws::baselines {

ClickHistoryPersonalizer::ClickHistoryPersonalizer(
    const backend::SearchBackend* search_backend, ClickHistoryOptions options)
    : backend_(search_backend), options_(options) {
  PWS_CHECK(backend_ != nullptr);
  PWS_CHECK_GT(options_.beta, 0.0);
}

void ClickHistoryPersonalizer::RegisterUser(click::UserId user) {
  (void)user;  // Stateless per user beyond the history map.
}

std::string ClickHistoryPersonalizer::KeyFor(click::UserId user,
                                             const std::string& query) const {
  if (options_.mode == ClickHistoryMode::kGlobal) return query;
  return std::to_string(user) + "\t" + query;
}

core::PersonalizedPage ClickHistoryPersonalizer::Serve(
    click::UserId user, const std::string& query) {
  core::PersonalizedPage page =
      core::PersonalizedPage::FromBackendPage(backend_->Search(query));
  const int n = static_cast<int>(page.backend_page().results.size());
  page.order.resize(n);
  std::iota(page.order.begin(), page.order.end(), 0);

  auto it = history_.find(KeyFor(user, query));
  if (it != history_.end() && it->second.total_clicks > 0) {
    const QueryHistory& history = it->second;
    std::vector<double> scores(n);
    for (int i = 0; i < n; ++i) {
      const corpus::DocId doc = page.backend_page().results[i].doc;
      double click_score = 0.0;
      auto doc_it = history.doc_clicks.find(doc);
      if (doc_it != history.doc_clicks.end()) {
        click_score = static_cast<double>(doc_it->second) /
                      (history.total_clicks + options_.beta);
      }
      scores[i] = options_.history_weight * click_score +
                  options_.rank_prior_weight / (1.0 + i);
    }
    std::stable_sort(page.order.begin(), page.order.end(),
                     [&](int a, int b) { return scores[a] > scores[b]; });
  }
  return page;
}

void ClickHistoryPersonalizer::Observe(click::UserId user,
                                       const core::PersonalizedPage& page,
                                       const click::ClickRecord& record) {
  QueryHistory& history = history_[KeyFor(user, page.backend_page().query)];
  for (size_t j = 0; j < record.interactions.size(); ++j) {
    if (!record.interactions[j].clicked) continue;
    const int backend_index = page.order[j];
    ++history.doc_clicks[page.backend_page().results[backend_index].doc];
    ++history.total_clicks;
  }
}

int ClickHistoryPersonalizer::ClickCount(click::UserId user,
                                         const std::string& query,
                                         corpus::DocId doc) const {
  auto it = history_.find(KeyFor(user, query));
  if (it == history_.end()) return 0;
  auto doc_it = it->second.doc_clicks.find(doc);
  return doc_it == it->second.doc_clicks.end() ? 0 : doc_it->second;
}

RandomReRanker::RandomReRanker(const backend::SearchBackend* search_backend,
                               uint64_t shuffle_seed)
    : backend_(search_backend), shuffle_seed_(shuffle_seed) {
  PWS_CHECK(backend_ != nullptr);
}

void RandomReRanker::RegisterUser(click::UserId user) { (void)user; }

core::PersonalizedPage RandomReRanker::Serve(click::UserId user,
                                             const std::string& query) {
  (void)user;
  core::PersonalizedPage page =
      core::PersonalizedPage::FromBackendPage(backend_->Search(query));
  page.order.resize(page.backend_page().results.size());
  std::iota(page.order.begin(), page.order.end(), 0);
  uint64_t seed = shuffle_seed_;
  for (char c : query) seed = seed * 131 + static_cast<unsigned char>(c);
  Random rng(seed);
  rng.Shuffle(page.order);
  return page;
}

void RandomReRanker::Observe(click::UserId user,
                             const core::PersonalizedPage& page,
                             const click::ClickRecord& record) {
  (void)user;
  (void)page;
  (void)record;
}

}  // namespace pws::baselines
