#ifndef PWS_BASELINES_CLICK_HISTORY_H_
#define PWS_BASELINES_CLICK_HISTORY_H_

#include <map>
#include <string>
#include <unordered_map>

#include "backend/search_backend.h"
#include "core/personalizer.h"
#include "core/pws_engine.h"

namespace pws::baselines {

/// Comparison baselines from the personalization literature that re-rank
/// purely from historic clicks, with no concept extraction or learning:
///
///  * P-Click (Dou et al., "A large-scale evaluation and analysis of
///    personalized search strategies", WWW 2007): promote documents THIS
///    user clicked for THIS query before,
///        score(u, q, d) = |clicks(u, q, d)| / (|clicks(u, q)| + beta).
///  * G-Click: the same statistic pooled over all users — group rather
///    than personal preference.
///
/// Both add the score to a backend-order prior so unclicked documents
/// keep their original relative order.
enum class ClickHistoryMode {
  kPersonal = 0,  // P-Click
  kGlobal = 1,    // G-Click
};

struct ClickHistoryOptions {
  ClickHistoryMode mode = ClickHistoryMode::kPersonal;
  /// Smoothing constant beta in the P-Click formula.
  double beta = 0.5;
  /// Weight of the click-history score against the backend-order prior
  /// rank_prior_weight / (1 + rank).
  double history_weight = 2.0;
  double rank_prior_weight = 1.0;
};

/// The P-Click / G-Click personalizer. Drives through the same
/// core::Personalizer contract as PwsEngine so the evaluation harness
/// can compare them under an identical protocol.
class ClickHistoryPersonalizer : public core::Personalizer {
 public:
  /// `search_backend` must outlive the personalizer.
  ClickHistoryPersonalizer(const backend::SearchBackend* search_backend,
                           ClickHistoryOptions options);

  void RegisterUser(click::UserId user) override;
  core::PersonalizedPage Serve(click::UserId user,
                               const std::string& query) override;
  void Observe(click::UserId user, const core::PersonalizedPage& page,
               const click::ClickRecord& record) override;

  /// Historic click count for a (user, query, doc) triple under the
  /// configured mode (user ignored for kGlobal).
  int ClickCount(click::UserId user, const std::string& query,
                 corpus::DocId doc) const;

 private:
  struct QueryHistory {
    std::unordered_map<corpus::DocId, int> doc_clicks;
    int total_clicks = 0;
  };
  /// Key: query text for kGlobal; "user\tquery" for kPersonal.
  std::string KeyFor(click::UserId user, const std::string& query) const;

  const backend::SearchBackend* backend_;
  ClickHistoryOptions options_;
  std::unordered_map<std::string, QueryHistory> history_;
};

/// A deterministic random re-ranker (control lower bound): shuffles the
/// page with a hash seeded by (query, shuffle_seed). Learns nothing.
class RandomReRanker : public core::Personalizer {
 public:
  RandomReRanker(const backend::SearchBackend* search_backend,
                 uint64_t shuffle_seed);

  void RegisterUser(click::UserId user) override;
  core::PersonalizedPage Serve(click::UserId user,
                               const std::string& query) override;
  void Observe(click::UserId user, const core::PersonalizedPage& page,
               const click::ClickRecord& record) override;

 private:
  const backend::SearchBackend* backend_;
  uint64_t shuffle_seed_;
};

}  // namespace pws::baselines

#endif  // PWS_BASELINES_CLICK_HISTORY_H_
