#ifndef PWS_UTIL_ARG_PARSER_H_
#define PWS_UTIL_ARG_PARSER_H_

#include <map>
#include <string>
#include <vector>

namespace pws {

/// Minimal --key=value command-line parser for the bench and example
/// binaries. Unknown flags are collected rather than rejected so benches
/// can share workload flags.
class ArgParser {
 public:
  /// Parses argv; flags look like --name=value or --name (value "true").
  ArgParser(int argc, const char* const* argv);

  /// Returns the flag value or `default_value` when absent.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  /// Returns the parsed flag value, or `default_value` when absent. A
  /// present-but-malformed value (e.g. --threads=4x) logs a warning and
  /// falls back to the default — it is never silently swallowed.
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  bool Has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pws

#endif  // PWS_UTIL_ARG_PARSER_H_
