#ifndef PWS_UTIL_STATUS_H_
#define PWS_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace pws {

/// Canonical error space, modeled after absl::StatusCode (subset).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  /// Durable data was lost or could not be made durable: checksum or
  /// size mismatch on a persisted file, or an fsync/rename that failed
  /// after bytes were already written. Distinct from kInvalidArgument
  /// (malformed but intact input) so recovery paths can tell "disk gave
  /// us garbage" from "caller gave us garbage".
  kDataLoss = 8,
};

/// Returns a stable human-readable name for `code` (e.g. "NOT_FOUND").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result, used instead of exceptions
/// throughout the library. An OK status carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "CODE: message" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type `T` or a non-OK Status explaining why the
/// value is absent. Accessing the value of a non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    PWS_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  /// Constructs from a value; the result is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PWS_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PWS_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PWS_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define PWS_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::pws::Status pws_status_macro_ = (expr);   \
    if (!pws_status_macro_.ok()) return pws_status_macro_; \
  } while (false)

}  // namespace pws

#endif  // PWS_UTIL_STATUS_H_
