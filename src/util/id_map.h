#ifndef PWS_UTIL_ID_MAP_H_
#define PWS_UTIL_ID_MAP_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace pws {

/// A flat open-addressing hash map from non-negative integer ids to
/// values — the profile-weight container of the learning loop. Compared
/// to std::unordered_map<int, double> it stores key/value pairs inline in
/// one contiguous slot array (no per-node allocation, no bucket
/// pointers), probes linearly (cache-friendly), and iterates by scanning
/// the slot array. Erase is deliberately unsupported: profile weights
/// only ever accumulate or decay, so tombstones never pay for
/// themselves.
///
/// Keys must be >= 0 (negative keys are reserved as the empty-slot
/// sentinel). Iteration order is a function of the insertion sequence
/// alone, so a deterministic caller gets deterministic iteration — but
/// it is NOT sorted; order-sensitive consumers (serialization, top-k)
/// must sort, exactly as they had to with unordered_map.
template <typename Key, typename Value>
class IdMap {
  static_assert(sizeof(Key) <= 8, "integer keys only");

 public:
  IdMap() = default;

  Value& operator[](Key key) {
    PWS_CHECK_GE(key, 0);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) Grow();
    const size_t slot = FindSlot(key);
    if (slots_[slot].key < 0) {
      slots_[slot].key = key;
      slots_[slot].value = Value();
      ++size_;
    }
    return slots_[slot].value;
  }

  /// Pointer to the value of `key`, or nullptr when absent.
  const Value* Find(Key key) const {
    if (slots_.empty()) return nullptr;
    const size_t slot = FindSlot(key);
    return slots_[slot].key < 0 ? nullptr : &slots_[slot].value;
  }

  /// Value of `key`, or `fallback` when absent (the ContentWeight /
  /// LocationWeight lookup shape).
  Value ValueOr(Key key, Value fallback) const {
    const Value* found = Find(key);
    return found == nullptr ? fallback : *found;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Calls fn(key, value&) for every entry. Mutation of values through
  /// the reference is allowed (daily decay uses it); insertion during
  /// iteration is not.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot.key >= 0) fn(slot.key, slot.value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.key >= 0) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key = -1;
    Value value{};
  };

  // Fibonacci-ish multiplicative hash; slots_.size() is a power of two.
  size_t SlotOf(Key key) const {
    return (static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL) &
           (slots_.size() - 1);
  }

  // First slot holding `key` or the first empty slot of its probe chain.
  size_t FindSlot(Key key) const {
    size_t slot = SlotOf(key);
    while (slots_[slot].key >= 0 && slots_[slot].key != key) {
      slot = (slot + 1) & (slots_.size() - 1);
    }
    return slot;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (const auto& slot : old) {
      if (slot.key < 0) continue;
      size_t target = SlotOf(slot.key);
      while (slots_[target].key >= 0) {
        target = (target + 1) & (slots_.size() - 1);
      }
      slots_[target] = slot;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace pws

#endif  // PWS_UTIL_ID_MAP_H_
