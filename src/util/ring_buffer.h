#ifndef PWS_UTIL_RING_BUFFER_H_
#define PWS_UTIL_RING_BUFFER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace pws {

/// A bounded FIFO ring over a flat vector: pushing past the capacity
/// overwrites the oldest element in O(1) instead of the O(n)
/// erase-from-front shift it replaces on the Observe hot path. Elements
/// are visited oldest-to-newest, so after any push sequence the visible
/// contents equal "the last `capacity` pushes, in push order" — exactly
/// the semantics of a vector trimmed from the front, which keeps
/// training-pair order (and therefore RankSVM's shuffled SGD walk)
/// bit-identical to the pre-ring implementation.
template <typename T>
class RingBuffer {
 public:
  /// Capacity must be >= 1 and is fixed for the lifetime of the ring.
  explicit RingBuffer(size_t capacity) : capacity_(capacity) {
    PWS_CHECK_GE(capacity_, 1u);
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }

  void Push(T item) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
    } else {
      items_[head_] = std::move(item);
      head_ = (head_ + 1) % capacity_;  // Oldest now one past the write.
    }
  }

  void Clear() {
    items_.clear();
    head_ = 0;
  }

  /// Element `i` in chronological order (0 = oldest surviving element).
  const T& at(size_t i) const {
    PWS_CHECK_LT(i, items_.size());
    return items_[(head_ + i) % items_.size()];
  }

  /// Visits every element oldest-to-newest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const size_t n = items_.size();
    for (size_t i = head_; i < n; ++i) fn(items_[i]);
    for (size_t i = 0; i < head_; ++i) fn(items_[i]);
  }

 private:
  size_t capacity_;
  /// Until the ring wraps, items_ is append-only and head_ stays 0; once
  /// full, head_ marks the oldest element.
  std::vector<T> items_;
  size_t head_ = 0;
};

}  // namespace pws

#endif  // PWS_UTIL_RING_BUFFER_H_
