#ifndef PWS_UTIL_TABLE_H_
#define PWS_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace pws {

/// Collects rows of string cells under a fixed header and renders them as
/// an aligned console table or as TSV. The bench binaries use this so the
/// experiment output format stays uniform (see EXPERIMENTS.md).
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `digits` decimals into a row,
  /// prefixed by a label cell.
  void AddNumericRow(const std::string& label,
                     const std::vector<double>& values, int digits);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders with padded columns and a header separator line.
  std::string ToAligned() const;

  /// Renders as tab-separated values (header row first).
  std::string ToTsv() const;

  /// Writes the aligned rendering, preceded by `title`, to `os`.
  void Print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pws

#endif  // PWS_UTIL_TABLE_H_
