#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstdio>

namespace pws {

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  for (std::string& line : lines) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
  }
  return lines;
}

std::vector<std::string> StrSplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string EscapeLineBreaks(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLineBreaks(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char next = text[i + 1];
      if (next == '\\' || next == 'n' || next == 'r') {
        out.push_back(next == '\\' ? '\\' : next == 'n' ? '\n' : '\r');
        ++i;
        continue;
      }
    }
    out.push_back(text[i]);
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  // strtoll silently skips leading whitespace, which made parsing
  // whitespace-asymmetric ("\t42" accepted, "42 " rejected). A number
  // with any surrounding whitespace is malformed; callers that want to
  // tolerate it trim explicitly.
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // Symmetric whitespace handling, as in ParseInt64.
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) return false;
  // strtod happily parses "nan" and "inf", and a --alpha=nan that sneaks
  // through here silently poisons every blend weight it touches. Numeric
  // inputs must be finite; %a hex floats (the exact-round-trip encoding
  // the WAL and snapshots use) still parse.
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

}  // namespace pws
