#ifndef PWS_UTIL_STRING_UTIL_H_
#define PWS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace pws {

/// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Splits `text` into lines on '\n', dropping one trailing '\r' from
/// each line (so CRLF input parses like LF input). Keeps empty lines;
/// callers that skip blanks keep doing so. The canonical splitter for
/// every persisted text format.
std::vector<std::string> SplitLines(std::string_view text);

/// Splits `text` on any whitespace run, dropping empty pieces.
std::vector<std::string> StrSplitWhitespace(std::string_view text);

/// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Returns `text` lowercased (ASCII only).
std::string ToLower(std::string_view text);

/// Returns `text` with leading/trailing whitespace removed.
std::string StrTrim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Escapes '\\' as "\\\\", '\n' as "\\n", and '\r' as "\\r" — makes an
/// arbitrary string safe to embed in one line of a line-based persisted
/// format (the escaped form contains no line breaks). Inverted exactly
/// by UnescapeLineBreaks.
std::string EscapeLineBreaks(std::string_view text);

/// Inverse of EscapeLineBreaks. A backslash before any other character
/// (or at the end) passes through verbatim.
std::string UnescapeLineBreaks(std::string_view text);

/// Formats a double with `digits` decimal places (no locale surprises).
std::string FormatDouble(double value, int digits);

/// Parses a non-negative base-10 integer; returns false on any non-digit.
bool ParseInt64(std::string_view text, int64_t* out);

/// Parses a floating point value; returns false on trailing garbage.
bool ParseDouble(std::string_view text, double* out);

}  // namespace pws

#endif  // PWS_UTIL_STRING_UTIL_H_
