#include "util/file_util.h"

#include <sys/stat.h>

#include <cstdio>

namespace pws {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open for read: " + path);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  const bool had_error = std::ferror(file) != 0;
  std::fclose(file);
  if (had_error) return InternalError("read error: " + path);
  return contents;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot open for write: " + path);
  }
  const size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  const bool flush_failed = std::fclose(file) != 0;
  if (written != contents.size() || flush_failed) {
    return InternalError("write error: " + path);
  }
  return OkStatus();
}

bool FileExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0 && S_ISREG(info.st_mode);
}

}  // namespace pws
