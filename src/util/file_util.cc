#include "util/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace pws {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open for read: " + path);
  }
  std::string contents;
  char buffer[1 << 14];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  const bool had_error = std::ferror(file) != 0;
  std::fclose(file);
  if (had_error) return InternalError("read error: " + path);
  return contents;
}

// ---------- Fault injection ----------

FileFaultInjector& FileFaultInjector::Global() {
  static FileFaultInjector* injector = new FileFaultInjector();
  return *injector;
}

void FileFaultInjector::Arm(int fail_at, bool crash,
                            double partial_write_fraction,
                            int fail_delay_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  fail_at_ = fail_at;
  crash_ = crash;
  tripped_ = false;
  partial_write_fraction_ = partial_write_fraction;
  fail_delay_us_ = fail_delay_us;
  ops_seen_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void FileFaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  fail_at_ = -1;
  crash_ = false;
  tripped_ = false;
  partial_write_fraction_ = 0.0;
  fail_delay_us_ = 0;
  ops_seen_.store(0, std::memory_order_relaxed);
}

bool FileFaultInjector::ShouldFail(Op op, size_t requested,
                                   size_t* partial_bytes) {
  (void)op;
  if (partial_bytes != nullptr) *partial_bytes = 0;
  if (!armed_.load(std::memory_order_relaxed)) return false;
  bool fail = false;
  int delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!armed_.load(std::memory_order_relaxed)) return false;
    const int index = ops_seen_.fetch_add(1, std::memory_order_relaxed);
    if (tripped_ && crash_) {
      fail = true;  // The process is "dead".
    } else if (index == fail_at_) {
      tripped_ = true;
      fail = true;
      delay_us = fail_delay_us_;
      if (partial_bytes != nullptr && partial_write_fraction_ > 0.0) {
        *partial_bytes = static_cast<size_t>(
            static_cast<double>(requested) *
            std::min(1.0, std::max(0.0, partial_write_fraction_)));
      }
    }
  }
  if (fail && delay_us > 0) {
    // A slow dying device: stall outside the mutex so concurrent
    // writers keep going while this operation hangs.
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return fail;
}

// ---------- Hooked primitives ----------

namespace internal_file {

Status HookedWrite(std::FILE* file, std::string_view data,
                   const std::string& path) {
  size_t partial = 0;
  if (FileFaultInjector::Global().ShouldFail(FileFaultInjector::Op::kWrite,
                                             data.size(), &partial)) {
    if (partial > 0) {
      std::fwrite(data.data(), 1, partial, file);
      std::fflush(file);  // The torn prefix reaches the file.
    }
    return InternalError("injected write failure: " + path);
  }
  if (data.empty()) return OkStatus();
  const size_t written = std::fwrite(data.data(), 1, data.size(), file);
  if (written != data.size()) {
    return InternalError("short write: " + path);
  }
  return OkStatus();
}

Status HookedFlushAndSync(std::FILE* file, const std::string& path) {
  if (FileFaultInjector::Global().ShouldFail(FileFaultInjector::Op::kSync, 0,
                                             nullptr)) {
    return DataLossError("injected fsync failure: " + path);
  }
  if (std::fflush(file) != 0) {
    return DataLossError("fflush failed: " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    return DataLossError("fsync failed: " + path);
  }
  return OkStatus();
}

Status HookedRename(const std::string& from, const std::string& to) {
  if (FileFaultInjector::Global().ShouldFail(FileFaultInjector::Op::kRename, 0,
                                             nullptr)) {
    return DataLossError("injected rename failure: " + from + " -> " + to);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return DataLossError("rename failed: " + from + " -> " + to);
  }
  return OkStatus();
}

Status HookedTruncate(std::FILE* file, size_t size, const std::string& path) {
  if (FileFaultInjector::Global().ShouldFail(
          FileFaultInjector::Op::kTruncate, 0, nullptr)) {
    return DataLossError("injected truncate failure: " + path);
  }
  if (std::fflush(file) != 0 ||
      ::ftruncate(::fileno(file), static_cast<off_t>(size)) != 0) {
    return DataLossError("truncate failed: " + path);
  }
  return OkStatus();
}

Status HookedSyncParentDir(const std::string& path) {
  if (FileFaultInjector::Global().ShouldFail(FileFaultInjector::Op::kSync, 0,
                                             nullptr)) {
    return DataLossError("injected directory sync failure: " + path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, std::max<size_t>(1, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return DataLossError("cannot open directory for sync: " + dir);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return DataLossError("directory fsync failed: " + dir);
  return OkStatus();
}

}  // namespace internal_file

// ---------- Atomic replace ----------

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return InternalError("cannot open for write: " + tmp);
  }
  Status status = internal_file::HookedWrite(file, contents, tmp);
  if (status.ok()) status = internal_file::HookedFlushAndSync(file, tmp);
  if (std::fclose(file) != 0 && status.ok()) {
    status = InternalError("close failed: " + tmp);
  }
  if (status.ok()) status = internal_file::HookedRename(tmp, path);
  if (status.ok()) status = internal_file::HookedSyncParentDir(path);
  if (!status.ok()) {
    std::remove(tmp.c_str());  // Best effort; never leaves a live torn file.
    return status;
  }
  return OkStatus();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  return WriteFileAtomic(path, contents);
}

bool FileExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0 && S_ISREG(info.st_mode);
}

}  // namespace pws
