#include "util/json.h"

#include <cctype>
#include <cstdlib>

namespace pws {
namespace {

const JsonValue& NullValue() {
  static const JsonValue* value = new JsonValue();
  return *value;
}

const std::string& EmptyString() {
  static const std::string* value = new std::string();
  return *value;
}

const std::vector<JsonValue>& EmptyItems() {
  static const std::vector<JsonValue>* value = new std::vector<JsonValue>();
  return *value;
}

}  // namespace

const std::string& JsonValue::String() const {
  return type_ == Type::kString ? string_ : EmptyString();
}

const std::vector<JsonValue>& JsonValue::Items() const {
  return type_ == Type::kArray ? items_ : EmptyItems();
}

const JsonValue& JsonValue::operator[](const std::string& key) const {
  if (type_ != Type::kObject) return NullValue();
  const auto it = members_.find(key);
  return it == members_.end() ? NullValue() : it->second;
}

const JsonValue& JsonValue::operator[](size_t index) const {
  if (type_ != Type::kArray || index >= items_.size()) return NullValue();
  return items_[index];
}

bool JsonValue::Has(const std::string& key) const {
  return type_ == Type::kObject && members_.count(key) > 0;
}

/// Recursive-descent parser over a string_view cursor. Depth is bounded
/// to keep hostile/corrupt input from overflowing the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type_ = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return true;
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (!Consume(':')) return false;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      if (out->members_.emplace(key, std::move(value)).second) {
        out->keys_.push_back(std::move(key));
      }
      SkipSpace();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type_ = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return true;
    for (;;) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->items_.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // reassembled — this repo's emitters only escape controls).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // Unterminated string.
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  JsonParser parser(text);
  if (parser.Parse(out)) return true;
  *out = JsonValue();
  return false;
}

}  // namespace pws
