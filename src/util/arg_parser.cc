#include "util/arg_parser.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace pws {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--")) {
      std::string body = arg.substr(2);
      size_t eq = body.find('=');
      if (eq == std::string::npos) {
        flags_[body] = "true";
      } else {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& default_value) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t ArgParser::GetInt(const std::string& name, int64_t default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  int64_t value = 0;
  if (!ParseInt64(it->second, &value)) {
    // Loud, not silent: "--threads=4x" running single-threaded with no
    // hint burned real benchmark time before this warning existed.
    PWS_LOG(kWarning) << "ignoring malformed integer value '" << it->second
                      << "' for --" << name << "; using default "
                      << default_value;
    return default_value;
  }
  return value;
}

double ArgParser::GetDouble(const std::string& name,
                            double default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  double value = 0.0;
  if (!ParseDouble(it->second, &value)) {
    PWS_LOG(kWarning) << "ignoring malformed numeric value '" << it->second
                      << "' for --" << name << "; using default "
                      << default_value;
    return default_value;
  }
  return value;
}

bool ArgParser::GetBool(const std::string& name, bool default_value) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  const std::string lowered = ToLower(it->second);
  return lowered == "true" || lowered == "1" || lowered == "yes";
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

}  // namespace pws
