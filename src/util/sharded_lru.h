#ifndef PWS_UTIL_SHARDED_LRU_H_
#define PWS_UTIL_SHARDED_LRU_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace pws {

/// Aggregated counters of a ShardedLruCache, summed over its shards.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Entries resident at the time of the stats() call.
  uint64_t entries = 0;

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    entries += other.entries;
    return *this;
  }
};

/// A bounded LRU map sharded by key hash, one mutex per shard, so
/// lookups on different shards never contend. The total capacity is
/// split evenly across shards (each shard keeps at least one entry) and
/// the least-recently-used entry of a full shard is evicted on insert.
///
/// Thread-safety: every method is safe to call concurrently. Values are
/// returned by copy, so cache `Value`s that are cheap to copy
/// (shared_ptr is the intended use — eviction then never invalidates a
/// value a caller still holds).
///
/// GetOrCompute runs `compute` *outside* the shard lock: two threads
/// racing on the same absent key may both compute it (one insert wins),
/// which trades a little duplicated work for zero lock-held compute
/// time. With a deterministic `compute` the cache contents stay
/// value-identical either way.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  ShardedLruCache(size_t capacity, int num_shards)
      : num_shards_(num_shards) {
    PWS_CHECK_GE(capacity, 1u);
    PWS_CHECK_GE(num_shards_, 1);
    shard_capacity_ =
        (capacity + static_cast<size_t>(num_shards_) - 1) /
        static_cast<size_t>(num_shards_);
    shards_ = std::make_unique<Shard[]>(num_shards_);
  }

  /// Mirrors the cache's hit/miss/eviction tallies into externally owned
  /// atomics (e.g. obs::MetricsRegistry counters via Counter::raw()) in
  /// addition to the per-instance CacheStats. Null pointers are allowed
  /// and skipped. Call before the cache is shared across threads.
  void BindExternalCounters(std::atomic<uint64_t>* hits,
                            std::atomic<uint64_t>* misses,
                            std::atomic<uint64_t>* evictions) {
    external_hits_ = hits;
    external_misses_ = misses;
    external_evictions_ = evictions;
  }

  /// Returns the value and marks it most-recently-used, or nullopt.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      Bump(external_misses_);
      return std::nullopt;
    }
    ++shard.hits;
    Bump(external_hits_);
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the shard's LRU entry if full.
  void Put(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    if (shard.index.size() > shard_capacity_) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.evictions;
      Bump(external_evictions_);
    }
  }

  /// Get, falling back to compute-and-insert on a miss.
  Value GetOrCompute(const Key& key, const std::function<Value()>& compute) {
    if (std::optional<Value> hit = Get(key)) return std::move(*hit);
    Value value = compute();
    Put(key, value);
    return value;
  }

  CacheStats stats() const {
    CacheStats total;
    for (int s = 0; s < num_shards_; ++s) {
      const Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mutex);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.evictions += shard.evictions;
      total.entries += shard.index.size();
    }
    return total;
  }

  size_t size() const {
    size_t total = 0;
    for (int s = 0; s < num_shards_; ++s) {
      std::lock_guard<std::mutex> lock(shards_[s].mutex);
      total += shards_[s].index.size();
    }
    return total;
  }

  /// Upper bound on resident entries (shards round up individually).
  size_t capacity() const {
    return shard_capacity_ * static_cast<size_t>(num_shards_);
  }

  void Clear() {
    for (int s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[s];
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.order.clear();
      shard.index.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// front = most recently used.
    std::list<std::pair<Key, Value>> order;
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[hash_(key) % static_cast<size_t>(num_shards_)];
  }

  static void Bump(std::atomic<uint64_t>* counter) {
    if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
  }

  int num_shards_;
  size_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  Hash hash_;
  std::atomic<uint64_t>* external_hits_ = nullptr;
  std::atomic<uint64_t>* external_misses_ = nullptr;
  std::atomic<uint64_t>* external_evictions_ = nullptr;
};

}  // namespace pws

#endif  // PWS_UTIL_SHARDED_LRU_H_
