#include "util/crc32.h"

#include <array>

namespace pws {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t crc, std::string_view data) {
  const auto& table = Table();
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32Finalize(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t Crc32(std::string_view data) {
  return Crc32Finalize(Crc32Update(Crc32Init(), data));
}

}  // namespace pws
