#ifndef PWS_UTIL_FILE_UTIL_H_
#define PWS_UTIL_FILE_UTIL_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

#include "util/status.h"

namespace pws {

/// Reads a whole file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Crash-safe file replacement: writes `contents` to `path + ".tmp"`,
/// fsyncs it, renames it over `path`, then fsyncs the parent directory.
/// A reader (or a post-crash restart) sees either the complete old file
/// or the complete new file, never a torn mix. Failures after bytes hit
/// the disk (fsync, rename, directory sync) return kDataLoss; failures
/// before (open, write) return kInternal. The temp file is removed on
/// any failure path.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Writes (replaces) a file with `contents`. Routed through
/// WriteFileAtomic — an interrupted write can no longer corrupt the only
/// copy of the previous contents.
Status WriteStringToFile(const std::string& path,
                         const std::string& contents);

/// True when `path` exists and is a regular file.
bool FileExists(const std::string& path);

/// Fault-injection seam for durability tests. Every write-path boundary
/// in this module and in io::WriteAheadLog (write, fsync, rename,
/// truncate, directory sync) consults the process-global injector before
/// touching the disk. Disarmed — the default, and the only production
/// state — each boundary costs one relaxed atomic load.
///
/// Armed with Arm(fail_at, crash), the fail_at-th intercepted operation
/// (0-based, counted from the Arm call) fails with kDataLoss/kInternal;
/// with crash=true every later operation fails too, emulating a process
/// that died at that point: nothing after the crash reaches the disk. A
/// failing write can first persist a prefix of its payload
/// (`partial_write_fraction`), emulating a torn/short write. The
/// failing operation can also stall for `fail_delay_us` before
/// reporting (a slow dying device) — the stall runs outside the
/// injector mutex, so concurrent writers proceed during it; tests use
/// this to land operations inside another thread's failing fsync.
///
/// Tests sweep crash points by first running the scenario with
/// Arm(-1, false) — count-only mode: no op index ever matches -1, so
/// nothing fails, but every boundary is counted in ops_seen() — then
/// re-running it once per fail_at in [0, count). Arm/Disarm are for
/// single-threaded test orchestration; concurrent file writers while
/// armed see a consistent (mutex-guarded) op sequence.
class FileFaultInjector {
 public:
  enum class Op { kWrite, kSync, kRename, kTruncate };

  static FileFaultInjector& Global();

  void Arm(int fail_at, bool crash, double partial_write_fraction = 0.0,
           int fail_delay_us = 0);
  void Disarm();

  /// Operations intercepted since the last Arm/Disarm.
  int ops_seen() const { return ops_seen_.load(std::memory_order_relaxed); }

  /// Internal: consulted by the hooked primitives. Returns true when the
  /// current operation must fail; `*partial_bytes` (for kWrite, given
  /// `requested` payload bytes) is how many leading bytes to persist
  /// anyway before failing.
  bool ShouldFail(Op op, size_t requested, size_t* partial_bytes);

 private:
  std::atomic<bool> armed_{false};
  std::atomic<int> ops_seen_{0};
  std::mutex mutex_;
  int fail_at_ = -1;
  bool crash_ = false;
  bool tripped_ = false;
  double partial_write_fraction_ = 0.0;
  int fail_delay_us_ = 0;
};

namespace internal_file {

/// The injectable primitives WriteFileAtomic and the WAL build on. Each
/// checks the fault injector, then performs the real operation; errors
/// carry the path. HookedWrite does not flush; HookedFlushAndSync is
/// fflush + fsync(fileno) and returns kDataLoss on failure.
Status HookedWrite(std::FILE* file, std::string_view data,
                   const std::string& path);
Status HookedFlushAndSync(std::FILE* file, const std::string& path);
Status HookedRename(const std::string& from, const std::string& to);
Status HookedTruncate(std::FILE* file, size_t size, const std::string& path);
/// Fsyncs the directory containing `path` so a rename into it is itself
/// durable. Counted as a kSync boundary.
Status HookedSyncParentDir(const std::string& path);

}  // namespace internal_file

}  // namespace pws

#endif  // PWS_UTIL_FILE_UTIL_H_
