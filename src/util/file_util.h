#ifndef PWS_UTIL_FILE_UTIL_H_
#define PWS_UTIL_FILE_UTIL_H_

#include <string>

#include "util/status.h"

namespace pws {

/// Reads a whole file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes (replaces) a file with `contents`.
Status WriteStringToFile(const std::string& path,
                         const std::string& contents);

/// True when `path` exists and is a regular file.
bool FileExists(const std::string& path);

}  // namespace pws

#endif  // PWS_UTIL_FILE_UTIL_H_
