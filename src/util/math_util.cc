#include "util/math_util.h"

#include <cmath>

#include "util/check.h"

namespace pws {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  PWS_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double L2Norm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = L2Norm(a);
  const double nb = L2Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

double Entropy(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    PWS_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double w : weights) {
    if (w <= 0.0) continue;
    const double p = w / total;
    h -= p * std::log(p);
  }
  return h;
}

void NormalizeInPlace(std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return;
  for (double& w : weights) w /= total;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) sum_sq += (v - mean) * (v - mean);
  return std::sqrt(sum_sq / static_cast<double>(values.size() - 1));
}

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double Clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

}  // namespace pws
