#include "util/random.h"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace pws {
namespace {

// SplitMix64, used to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::UniformUint64(uint64_t bound) {
  PWS_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  PWS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Random::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  PWS_CHECK_LT(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Random::Gaussian() {
  // Box–Muller; discards the second variate for simplicity.
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Random::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Random::Exponential(double rate) {
  PWS_CHECK_GT(rate, 0.0);
  double u = UniformDouble();
  while (u <= 1e-300) u = UniformDouble();
  return -std::log(u) / rate;
}

int Random::Categorical(const std::vector<double>& weights) {
  PWS_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    PWS_CHECK_GE(w, 0.0);
    total += w;
  }
  PWS_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return static_cast<int>(i - 1);
  }
  return 0;
}

int Random::Zipf(int n, double s) {
  PWS_CHECK_GT(n, 0);
  double total = 0.0;
  for (int r = 0; r < n; ++r) total += 1.0 / std::pow(r + 1, s);
  double target = UniformDouble() * total;
  for (int r = 0; r < n; ++r) {
    target -= 1.0 / std::pow(r + 1, s);
    if (target < 0.0) return r;
  }
  return n - 1;
}

std::vector<int> Random::SampleWithoutReplacement(int n, int k) {
  PWS_CHECK_GE(n, 0);
  PWS_CHECK_GE(k, 0);
  PWS_CHECK_LE(k, n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    std::vector<int> indices(n);
    std::iota(indices.begin(), indices.end(), 0);
    Shuffle(indices);
    indices.resize(k);
    return indices;
  }
  std::unordered_set<int> seen;
  std::vector<int> out;
  out.reserve(k);
  while (static_cast<int>(out.size()) < k) {
    int candidate = static_cast<int>(UniformUint64(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace pws
