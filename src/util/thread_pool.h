#ifndef PWS_UTIL_THREAD_POOL_H_
#define PWS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pws {

/// A fixed-size FIFO thread pool: one shared queue, no work stealing.
/// Tasks are dequeued in submission order, so scheduling is easy to
/// reason about; determinism comes from task *independence*, not from
/// scheduling. A caller that writes each task's result into a slot owned
/// by that task alone gets output identical to a sequential loop no
/// matter how the tasks interleave — the property the parallel
/// evaluation harness builds its bit-identical guarantee on.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Runs the queue dry, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. The future resolves when the task finishes and
  /// carries any exception it threw. A Submit that races shutdown (the
  /// destructor has begun) is rejected with a future carrying
  /// std::runtime_error instead of aborting the process — a long-running
  /// server drains gracefully: late submitters observe the failure and
  /// shed, while everything already queued still runs to completion.
  std::future<void> Submit(std::function<void()> task);

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::deque<std::packaged_task<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// The worker count a `threads` knob requests: the value itself when
/// >= 1, otherwise the hardware concurrency (the "0 = all cores"
/// convention used by SimulationOptions::threads and --threads).
int ResolveThreadCount(int threads);

/// Runs fn(0) .. fn(n - 1) across up to `threads` pool workers and
/// returns when every call has finished. With threads <= 1 or n <= 1 the
/// calls run inline on the caller, so a ParallelFor nested inside pool
/// work degrades to a plain loop instead of oversubscribing. The index
/// range is chunked contiguously, one task per worker — a million-item
/// sweep costs a handful of futures, not a million — and chunks execute
/// their indices in ascending order, so exceptions from `fn` propagate
/// exactly as before: the first one, by index.
void ParallelFor(int threads, int n, const std::function<void(int)>& fn);

/// Same, but on an existing pool (no per-call pool construction or
/// teardown): chunks [0, n) across the pool's workers. The caller must
/// not invoke this from inside a task running on `pool` — the chunks
/// would wait on workers the caller is occupying.
void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace pws

#endif  // PWS_UTIL_THREAD_POOL_H_
