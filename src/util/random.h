#ifndef PWS_UTIL_RANDOM_H_
#define PWS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace pws {

/// Deterministic, seedable pseudo-random generator (xoshiro256**) with the
/// sampling helpers the simulators need. Not thread-safe; create one per
/// thread or per component. The same seed always yields the same stream,
/// which keeps experiments reproducible.
class Random {
 public:
  /// Seeds the generator; any 64-bit value is acceptable (0 included).
  explicit Random(uint64_t seed);

  /// Returns the next raw 64 random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal sample (Box–Muller).
  double Gaussian();

  /// Returns mean + stddev * Gaussian().
  double Gaussian(double mean, double stddev);

  /// Returns an exponential sample with the given rate (> 0).
  double Exponential(double rate);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// At least one weight must be positive.
  int Categorical(const std::vector<double>& weights);

  /// Samples a rank in [0, n) from a Zipf distribution with exponent s
  /// (probability of rank r proportional to 1/(r+1)^s). Linear-time
  /// inversion; fine for the corpus sizes used here.
  int Zipf(int n, double s);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks `k` distinct indices from [0, n) (reservoir-free, via shuffle of
  /// an index vector when k is a large fraction of n, else rejection).
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
};

}  // namespace pws

#endif  // PWS_UTIL_RANDOM_H_
