#ifndef PWS_UTIL_LOGGING_H_
#define PWS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pws {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will actually be emitted (default kInfo).
/// The level is a single atomic, so SetLogLevel/GetLogLevel and every
/// LogMessage's level check are data-race-free across threads.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// "debug" | "info" | "warning" | "error" (case-insensitive; "warn" is
/// accepted for "warning"). Returns false and leaves `out` untouched on
/// anything else — the --log-level flag parser.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// The canonical spelling ParseLogLevel accepts, for help text.
const char* LogLevelName(LogLevel level);

namespace internal_logging {

/// One log statement: buffers a line and flushes it to stderr (with a
/// level tag and source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace pws

#define PWS_LOG(level)                                        \
  ::pws::internal_logging::LogMessage(::pws::LogLevel::level, \
                                      __FILE__, __LINE__)

#endif  // PWS_UTIL_LOGGING_H_
