#ifndef PWS_UTIL_LOGGING_H_
#define PWS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pws {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will actually be emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// One log statement: buffers a line and flushes it to stderr (with a
/// level tag and source location) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace pws

#define PWS_LOG(level)                                        \
  ::pws::internal_logging::LogMessage(::pws::LogLevel::level, \
                                      __FILE__, __LINE__)

#endif  // PWS_UTIL_LOGGING_H_
