#ifndef PWS_UTIL_CHECK_H_
#define PWS_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace pws {
namespace internal_check {

/// Accumulates an optional "<< ..." message for a failed check and aborts
/// the process when destroyed. Used only via the PWS_CHECK macros.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Gives the check failure stream a void result so it can appear on the
/// false branch of the ternary inside PWS_CHECK. operator& binds more
/// loosely than operator<<, so the streamed message is built first.
class Voidify {
 public:
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace pws

/// Aborts with a diagnostic when `condition` is false. Usable as a stream:
///   PWS_CHECK(n > 0) << "n was " << n;
#define PWS_CHECK(condition)                       \
  (condition) ? static_cast<void>(0)               \
              : ::pws::internal_check::Voidify() & \
                    ::pws::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

#define PWS_CHECK_EQ(a, b) PWS_CHECK((a) == (b))
#define PWS_CHECK_NE(a, b) PWS_CHECK((a) != (b))
#define PWS_CHECK_LT(a, b) PWS_CHECK((a) < (b))
#define PWS_CHECK_LE(a, b) PWS_CHECK((a) <= (b))
#define PWS_CHECK_GT(a, b) PWS_CHECK((a) > (b))
#define PWS_CHECK_GE(a, b) PWS_CHECK((a) >= (b))

#ifdef NDEBUG
#define PWS_DCHECK(condition) \
  while (false) PWS_CHECK(condition)
#else
#define PWS_DCHECK(condition) PWS_CHECK(condition)
#endif

#endif  // PWS_UTIL_CHECK_H_
