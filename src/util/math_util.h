#ifndef PWS_UTIL_MATH_UTIL_H_
#define PWS_UTIL_MATH_UTIL_H_

#include <vector>

namespace pws {

/// Dot product; the vectors must have equal length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double L2Norm(const std::vector<double>& v);

/// Cosine similarity; returns 0 when either vector is all-zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Shannon entropy (natural log) of an unnormalized non-negative weight
/// vector. Zero weights contribute nothing; an empty or all-zero vector
/// has entropy 0.
double Entropy(const std::vector<double>& weights);

/// Normalizes `weights` to sum to 1 in place; no-op if the sum is 0.
void NormalizeInPlace(std::vector<double>& weights);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Sample standard deviation; 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Numerically-stable logistic function 1 / (1 + exp(-x)).
double Sigmoid(double x);

/// Clamps `x` to [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace pws

#endif  // PWS_UTIL_MATH_UTIL_H_
