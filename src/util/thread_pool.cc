#include "util/thread_pool.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/timer.h"

namespace pws {
namespace {

// Shared across every pool in the process: the registry aggregates, and
// handles are resolved once (function-local statics) so the per-task
// cost is a few relaxed atomic ops.
obs::Counter& TasksCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks");
  return *counter;
}

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("threadpool.queue_depth");
  return *gauge;
}

obs::Histogram& TaskLatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("threadpool.task.us");
  return *histogram;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      // Reject, do not abort: a server draining its pool may race a late
      // request onto Submit, and that request must fail cleanly (the
      // caller sheds it) rather than kill every in-flight request with it.
      std::promise<void> rejected;
      rejected.set_exception(std::make_exception_ptr(
          std::runtime_error("ThreadPool is shutting down")));
      return rejected.get_future();
    }
    queue_.push_back(std::move(packaged));
  }
  TasksCounter().Increment();
  QueueDepthGauge().Add(1);
  task_ready_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock,
                       [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge().Add(-1);
    WallTimer timer;
    task();  // Exceptions land in the task's future.
    TaskLatencyHistogram().Record(timer.ElapsedMicros());
  }
}

int ResolveThreadCount(int threads) {
  if (threads >= 1) return threads;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  // One contiguous chunk per worker, not one task per item: the per-call
  // overhead is O(workers) futures however large n grows. Chunks run
  // their indices in ascending order and futures are drained in chunk
  // order, so the first exception by index is the one that propagates —
  // identical semantics to the old task-per-item fan-out.
  const int workers = std::min(pool.size(), n);
  if (workers <= 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  const int chunk = n / workers;
  const int remainder = n % workers;
  int begin = 0;
  for (int w = 0; w < workers; ++w) {
    const int end = begin + chunk + (w < remainder ? 1 : 0);
    futures.push_back(pool.Submit([&fn, begin, end] {
      for (int i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  for (auto& future : futures) future.get();
}

void ParallelFor(int threads, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = std::min(ResolveThreadCount(threads), n);
  if (workers <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  ParallelFor(pool, n, fn);
}

}  // namespace pws
