#ifndef PWS_UTIL_CRC32_H_
#define PWS_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace pws {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/gzip checksum)
/// of `data`. Used to frame WAL records and to checksum snapshot files —
/// it detects torn writes and bit rot, not adversarial tampering.
uint32_t Crc32(std::string_view data);

/// Incremental form: feed chunks with the previous return value as
/// `seed` (start from Crc32Init()).
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, std::string_view data);
uint32_t Crc32Finalize(uint32_t crc);

}  // namespace pws

#endif  // PWS_UTIL_CRC32_H_
