#ifndef PWS_UTIL_JSON_H_
#define PWS_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pws {

/// Minimal read-only JSON value tree — just enough for consumers of the
/// documents this repo itself emits (the obs metrics report, Chrome
/// trace exports, bench result files): objects, arrays, strings,
/// numbers, bools, null. Parsing is strict on structure (unbalanced
/// braces, trailing garbage, bad escapes all fail) and lenient on
/// nothing; numbers are held as double, which is exact for every
/// counter this repo emits below 2^53.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Value accessors return the natural zero value on type mismatch —
  /// callers poking at optional fields read `doc["a"]["b"].Number()`
  /// without null checks at every level.
  double Number() const { return type_ == Type::kNumber ? number_ : 0.0; }
  bool Bool() const { return type_ == Type::kBool && bool_; }
  const std::string& String() const;
  const std::vector<JsonValue>& Items() const;

  /// Object member by key; a shared null value when absent or not an
  /// object, so lookups chain safely.
  const JsonValue& operator[](const std::string& key) const;
  /// Array element by index, same null-on-miss behaviour.
  const JsonValue& operator[](size_t index) const;
  bool Has(const std::string& key) const;
  /// Object keys in document order.
  const std::vector<std::string>& Keys() const { return keys_; }

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
  std::vector<std::string> keys_;
};

/// Parses `text` into `*out`. Returns false (and leaves *out null) on
/// malformed input, including trailing non-whitespace.
bool ParseJson(std::string_view text, JsonValue* out);

}  // namespace pws

#endif  // PWS_UTIL_JSON_H_
