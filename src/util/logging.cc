#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace pws {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lowered;
  lowered.reserve(text.size());
  for (char c : text) {
    lowered.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c);
  }
  if (lowered == "debug") {
    *out = LogLevel::kDebug;
  } else if (lowered == "info") {
    *out = LogLevel::kInfo;
  } else if (lowered == "warning" || lowered == "warn") {
    *out = LogLevel::kWarning;
  } else if (lowered == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // One write per line (newline included) so lines from concurrent
  // harness threads never interleave mid-message; stderr is unbuffered,
  // making a single fwrite effectively atomic per line.
  stream_ << '\n';
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging
}  // namespace pws
