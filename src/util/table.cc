#include "util/table.h"

#include <algorithm>

#include "util/check.h"
#include "util/string_util.h"

namespace pws {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PWS_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  PWS_CHECK_EQ(cells.size(), headers_.size())
      << "row width mismatch (" << cells.size() << " vs " << headers_.size()
      << ")";
  rows_.push_back(std::move(cells));
}

void Table::AddNumericRow(const std::string& label,
                          const std::vector<double>& values, int digits) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(FormatDouble(v, digits));
  AddRow(std::move(cells));
}

std::string Table::ToAligned() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line;
  };
  std::string out = render_row(headers_);
  out += '\n';
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
    out += '\n';
  }
  return out;
}

std::string Table::ToTsv() const {
  std::string out = StrJoin(headers_, "\t");
  out += '\n';
  for (const auto& row : rows_) {
    out += StrJoin(row, "\t");
    out += '\n';
  }
  return out;
}

void Table::Print(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n" << ToAligned() << "\n";
}

}  // namespace pws
