#ifndef PWS_UTIL_TIMER_H_
#define PWS_UTIL_TIMER_H_

#include <chrono>

namespace pws {

/// Elapsed-time stopwatch for experiment timing and the obs span layer
/// (the microbench binaries use google-benchmark instead). Reads
/// std::chrono::steady_clock — guaranteed monotonic, never the system
/// wall clock — so measured intervals are immune to clock adjustments.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed — the unit every ".us" latency histogram
  /// records (see obs/metrics.h).
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady, "timers must not follow the wall clock");
  Clock::time_point start_;
};

}  // namespace pws

#endif  // PWS_UTIL_TIMER_H_
