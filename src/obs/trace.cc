#include "obs/trace.h"

#include <algorithm>

namespace pws::obs {

namespace internal_trace {
thread_local ActiveTrace g_active_trace;
}  // namespace internal_trace

std::string TraceRecord::ToString() const {
  std::string out = label;
  out += " " + std::to_string(total_us) + "us |";
  for (const TraceEvent& event : events) {
    out += " ";
    out += event.name;
    out += "@" + std::to_string(event.start_us) + "+" +
           std::to_string(event.duration_us) + "us";
  }
  return out;
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  resident_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceCollector::Add(TraceRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  resident_ = std::min(resident_ + 1, capacity_);
}

std::vector<TraceRecord> TraceCollector::Dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(resident_);
  // Oldest-first: when the ring wrapped, the oldest record sits at
  // next_; before wrapping it sits at index 0.
  const size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < resident_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  resident_ = 0;
}

ScopedQueryTrace::ScopedQueryTrace(const std::string& label) {
  if (!TraceCollector::Global().enabled()) return;
  internal_trace::ActiveTrace& active = internal_trace::g_active_trace;
  if (active.record != nullptr) return;  // One open trace per thread.
  active_ = true;
  record_.label = label;
  start_ = std::chrono::steady_clock::now();
  active.record = &record_;
  active.start = start_;
}

ScopedQueryTrace::~ScopedQueryTrace() {
  if (!active_) return;
  internal_trace::g_active_trace.record = nullptr;
  record_.total_us = static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start_)
          .count());
  TraceCollector::Global().Add(std::move(record_));
}

}  // namespace pws::obs
