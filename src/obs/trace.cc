#include "obs/trace.h"

#include <algorithm>
#include <functional>

namespace pws::obs {

namespace internal_trace {
thread_local ActiveTrace g_active_trace;
}  // namespace internal_trace

namespace {

int64_t EpochUsOf(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             tp.time_since_epoch())
      .count();
}

}  // namespace

std::string TraceRecord::ToString() const {
  std::string out = label;
  out += " " + std::to_string(total_us) + "us |";
  for (const TraceEvent& event : events) {
    out += " ";
    out += event.name;
    out += "@" + std::to_string(event.start_us) + "+" +
           std::to_string(event.duration_us) + "us";
  }
  return out;
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceCollector& TraceCollector::GlobalExemplars() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  resident_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceCollector::Add(TraceRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  resident_ = std::min(resident_ + 1, capacity_);
}

std::vector<TraceRecord> TraceCollector::Dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(resident_);
  // Oldest-first: when the ring wrapped, the oldest record sits at
  // next_; before wrapping it sits at index 0.
  const size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < resident_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  resident_ = 0;
}

std::string ChromeTraceJson(const std::vector<TraceRecord>& records) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append_event = [&](const char* name, uint64_t tid, int64_t ts_us,
                          uint64_t dur_us, const TraceRecord& record,
                          bool top_level) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(&out, top_level ? "request" : "stage");
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += std::to_string(ts_us);
    out += ",\"dur\":";
    out += std::to_string(dur_us);
    if (top_level) {
      out += ",\"args\":{\"label\":\"";
      AppendJsonEscaped(&out, record.label);
      out += "\",\"request_id\":";
      out += std::to_string(record.request_id);
      out += ",\"verb\":\"";
      AppendJsonEscaped(&out, record.verb);
      out += "\"}";
    }
    out += "}";
  };
  for (const TraceRecord& record : records) {
    // tid groups one request's events on its own track; fall back to
    // the label hash for engine-opened traces without a request id.
    const uint64_t tid =
        record.request_id != 0
            ? record.request_id
            : std::hash<std::string>{}(record.label) % 1'000'000 + 1'000'000;
    const char* top_name = record.verb[0] != '\0' ? record.verb : "query";
    append_event(top_name, tid, record.epoch_us, record.total_us, record,
                 /*top_level=*/true);
    for (const TraceEvent& event : record.events) {
      append_event(event.name, tid,
                   record.epoch_us + static_cast<int64_t>(event.start_us),
                   event.duration_us, record, /*top_level=*/false);
    }
  }
  out += "]}";
  return out;
}

ScopedQueryTrace::ScopedQueryTrace(const std::string& label) {
  if (!TraceCollector::Global().enabled()) return;
  internal_trace::ActiveTrace& active = internal_trace::g_active_trace;
  if (active.record != nullptr) return;  // One open trace per thread.
  active_ = true;
  record_.label = label;
  start_ = std::chrono::steady_clock::now();
  record_.epoch_us = EpochUsOf(start_);
  active.record = &record_;
  active.start = start_;
}

ScopedQueryTrace::~ScopedQueryTrace() {
  if (!active_) return;
  internal_trace::g_active_trace.record = nullptr;
  record_.total_us = static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start_)
          .count());
  TraceCollector::Global().Add(std::move(record_));
}

RequestTrace::~RequestTrace() {
  if (open_ && !closed_) CloseUs();
}

void RequestTrace::Open(const char* verb, std::string label,
                        uint64_t request_id,
                        std::chrono::steady_clock::time_point origin) {
  internal_trace::ActiveTrace& active = internal_trace::g_active_trace;
  if (active.record != nullptr) return;  // One open trace per thread.
  open_ = true;
  closed_ = false;
  record_.label = std::move(label);
  record_.request_id = request_id;
  record_.verb = verb;
  origin_ = origin;
  record_.epoch_us = EpochUsOf(origin);
  active.record = &record_;
  active.start = origin;
}

void RequestTrace::AddStage(const char* name,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  if (!open_ || closed_) return;
  TraceEvent event;
  event.name = name;
  const double start_us =
      std::chrono::duration<double, std::micro>(start - origin_).count();
  event.start_us = start_us > 0 ? static_cast<uint64_t>(start_us) : 0;
  event.duration_us = static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(end - start).count());
  record_.events.push_back(event);
}

uint64_t RequestTrace::CloseUs() {
  if (!open_) return 0;
  if (closed_) return record_.total_us;
  closed_ = true;
  internal_trace::g_active_trace.record = nullptr;
  record_.total_us = static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - origin_)
          .count());
  return record_.total_us;
}

}  // namespace pws::obs
