#include "obs/report.h"

namespace pws::obs {

std::string ExemplarsJson(const std::vector<TraceRecord>& records) {
  std::string out = "[";
  bool first_record = true;
  for (const TraceRecord& record : records) {
    if (!first_record) out += ",";
    first_record = false;
    out += "{\"label\":\"";
    AppendJsonEscaped(&out, record.label);
    out += "\",\"request_id\":";
    out += std::to_string(record.request_id);
    out += ",\"verb\":\"";
    AppendJsonEscaped(&out, record.verb);
    out += "\",\"total_us\":";
    out += std::to_string(record.total_us);
    out += ",\"stages\":[";
    bool first_stage = true;
    for (const TraceEvent& event : record.events) {
      if (!first_stage) out += ",";
      first_stage = false;
      out += "{\"name\":\"";
      AppendJsonEscaped(&out, event.name);
      out += "\",\"start_us\":";
      out += std::to_string(event.start_us);
      out += ",\"dur_us\":";
      out += std::to_string(event.duration_us);
      out += "}";
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string MetricsJson(const RegistrySnapshot& snapshot,
                        const SloTracker::Snapshot& slo,
                        const std::vector<TraceRecord>& exemplars) {
  std::string out = "{\n";
  snapshot.AppendJsonSections(&out);
  out += ",\n  \"slo\": ";
  out += slo.ToJson();
  out += ",\n  \"exemplars\": ";
  out += ExemplarsJson(exemplars);
  out += "\n}\n";
  return out;
}

std::string GlobalMetricsJson() { return GlobalMetricsJson(SteadyNowUs()); }

std::string GlobalMetricsJson(int64_t now_us) {
  return MetricsJson(MetricsRegistry::Global().Snapshot(now_us),
                     SloTracker::Global().Snap(now_us),
                     TraceCollector::GlobalExemplars().Dump());
}

}  // namespace pws::obs
