#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pws::obs {
namespace {

// C++17-portable relaxed add / max for atomic<double>.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double seen = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double candidate) {
  double seen = target.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !target.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
  }
}

std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Metric names are dot-separated identifiers, but escape defensively so
// the JSON stays well-formed for any name.
void AppendJsonString(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
  out << '"';
}

// Pads every column to its widest cell; headers underline-free to keep
// the report compact.
std::string RenderAligned(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace

uint64_t HistogramSnapshot::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

double HistogramSnapshot::Mean() const {
  const uint64_t total = TotalCount();
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double HistogramSnapshot::Percentile(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = i < bounds.size() ? bounds[i] : std::max(max, lower);
    const double fraction =
        (target - before) / static_cast<double>(counts[i]);
    const double interpolated =
        lower + std::clamp(fraction, 0.0, 1.0) * (upper - lower);
    // In-bucket interpolation can overshoot the largest recorded value;
    // never report a percentile above the exact observed max.
    return max > 0.0 ? std::min(interpolated, max) : interpolated;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty()) return;
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return;  // Incompatible layouts never merge silently into nonsense.
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  max = std::max(max, other.max);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (bounds_[i] >= bounds_[i + 1]) {
      bounds_.clear();  // Defensive: fall back to a single overflow bucket.
      break;
    }
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 67'108'864.0; b *= 2.0) bounds.push_back(b);
  return bounds;  // 1us .. ~67s in 27 power-of-two buckets.
}

void Histogram::Record(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, gauge] : other.gauges) {
    GaugeSnapshot& mine = gauges[name];
    mine.value += gauge.value;
    mine.max = std::max(mine.max, gauge.max);
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].Merge(histogram);
  }
}

std::string RegistrySnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": " << value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": {\"value\": " << gauge.value << ", \"max\": " << gauge.max
        << "}";
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": {\"count\": " << histogram.TotalCount()
        << ", \"sum\": " << FormatNumber(histogram.sum)
        << ", \"mean\": " << FormatNumber(histogram.Mean())
        << ", \"p50\": " << FormatNumber(histogram.Percentile(50.0))
        << ", \"p95\": " << FormatNumber(histogram.Percentile(95.0))
        << ", \"p99\": " << FormatNumber(histogram.Percentile(99.0))
        << ", \"max\": " << FormatNumber(histogram.max) << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (histogram.counts[i] == 0) continue;  // Sparse: skip empty buckets.
      const bool overflow = i >= histogram.bounds.size();
      out << (first_bucket ? "[" : ", [")
          << (overflow ? "null" : FormatNumber(histogram.bounds[i])) << ", "
          << histogram.counts[i] << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  if (!histograms.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"histogram", "count", "mean", "p50", "p95", "p99",
                    "max"});
    for (const auto& [name, h] : histograms) {
      rows.push_back({name, std::to_string(h.TotalCount()),
                      FormatNumber(h.Mean()), FormatNumber(h.Percentile(50)),
                      FormatNumber(h.Percentile(95)),
                      FormatNumber(h.Percentile(99)), FormatNumber(h.max)});
    }
    out += RenderAligned(rows);
  }
  if (!counters.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"counter", "value"});
    for (const auto& [name, value] : counters) {
      rows.push_back({name, std::to_string(value)});
    }
    out += "\n" + RenderAligned(rows);
  }
  if (!gauges.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"gauge", "value", "max"});
    for (const auto& [name, gauge] : gauges) {
      rows.push_back({name, std::to_string(gauge.value),
                      std::to_string(gauge.max)});
    }
    out += "\n" + RenderAligned(rows);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBoundsUs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = {gauge->Value(), gauge->Max()};
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace pws::obs
