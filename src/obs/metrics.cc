#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace pws::obs {
namespace {

// C++17-portable relaxed add / max for atomic<double>.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double seen = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double candidate) {
  double seen = target.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !target.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
  }
}

std::string FormatNumber(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// Metric names are dot-separated identifiers, but escape defensively so
// the JSON stays well-formed for any name.
void AppendJsonString(std::ostringstream& out, const std::string& text) {
  std::string buffer = "\"";
  AppendJsonEscaped(&buffer, text);
  buffer.push_back('"');
  out << buffer;
}

// Pads every column to its widest cell; headers underline-free to keep
// the report compact.
std::string RenderAligned(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
}

uint64_t HistogramSnapshot::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

double HistogramSnapshot::Mean() const {
  const uint64_t total = TotalCount();
  return total == 0 ? 0.0 : sum / static_cast<double>(total);
}

double HistogramSnapshot::Percentile(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = i < bounds.size() ? bounds[i] : std::max(max, lower);
    const double fraction =
        (target - before) / static_cast<double>(counts[i]);
    const double interpolated =
        lower + std::clamp(fraction, 0.0, 1.0) * (upper - lower);
    // In-bucket interpolation can overshoot the largest recorded value;
    // never report a percentile above the exact observed max.
    return max > 0.0 ? std::min(interpolated, max) : interpolated;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (counts.empty()) {
    *this = other;
    return;
  }
  if (other.counts.empty()) return;
  if (bounds != other.bounds || counts.size() != other.counts.size()) {
    return;  // Incompatible layouts never merge silently into nonsense.
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sum += other.sum;
  max = std::max(max, other.max);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (bounds_[i] >= bounds_[i + 1]) {
      bounds_.clear();  // Defensive: fall back to a single overflow bucket.
      break;
    }
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 67'108'864.0; b *= 2.0) bounds.push_back(b);
  return bounds;  // 1us .. ~67s in 27 power-of-two buckets.
}

void Histogram::Record(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMax(max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     int num_slots, int64_t slot_width_us)
    : bounds_(std::move(bounds)),
      num_slots_(std::max(1, num_slots)),
      slot_width_us_(std::max<int64_t>(1, slot_width_us)) {
  for (size_t i = 0; i + 1 < bounds_.size(); ++i) {
    if (bounds_[i] >= bounds_[i + 1]) {
      bounds_.clear();  // Defensive: fall back to a single overflow bucket.
      break;
    }
  }
  slots_.reset(new Slot[num_slots_]);
  for (int s = 0; s < num_slots_; ++s) {
    slots_[s].counts.reset(new std::atomic<uint64_t>[bounds_.size() + 1]);
    for (size_t i = 0; i <= bounds_.size(); ++i) slots_[s].counts[i].store(0);
  }
}

WindowedHistogram::Slot& WindowedHistogram::SlotFor(int64_t window_index) {
  Slot& slot = slots_[static_cast<size_t>(window_index) %
                      static_cast<size_t>(num_slots_)];
  if (slot.stamp.load(std::memory_order_acquire) != window_index) {
    // Rotation edge: recycle the slot for the new window. The mutex only
    // serializes the reset itself; recorders that raced past the stamp
    // check land in whichever window owns the slot — one sample of skew
    // at a window boundary, invisible at monitoring granularity.
    std::lock_guard<std::mutex> lock(rotate_mutex_);
    if (slot.stamp.load(std::memory_order_relaxed) != window_index) {
      for (size_t i = 0; i <= bounds_.size(); ++i) {
        slot.counts[i].store(0, std::memory_order_relaxed);
      }
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.max.store(0.0, std::memory_order_relaxed);
      slot.stamp.store(window_index, std::memory_order_release);
    }
  }
  return slot;
}

void WindowedHistogram::Record(double value, int64_t now_us) {
  Slot& slot = SlotFor(now_us / slot_width_us_);
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(slot.sum, value);
  AtomicMax(slot.max, value);
}

HistogramSnapshot WindowedHistogram::Snapshot(int64_t now_us) const {
  const int64_t current = now_us / slot_width_us_;
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (int s = 0; s < num_slots_; ++s) {
    const Slot& slot = slots_[s];
    const int64_t stamp = slot.stamp.load(std::memory_order_acquire);
    // Live sub-windows only: the current partial window plus complete
    // predecessors still inside the window. Stale slots (left over from
    // an idle stretch) and never-used slots are skipped.
    if (stamp < 0 || stamp > current || stamp <= current - num_slots_) {
      continue;
    }
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snapshot.counts[i] += slot.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += slot.sum.load(std::memory_order_relaxed);
    snapshot.max =
        std::max(snapshot.max, slot.max.load(std::memory_order_relaxed));
  }
  return snapshot;
}

void WindowedHistogram::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mutex_);
  for (int s = 0; s < num_slots_; ++s) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slots_[s].counts[i].store(0, std::memory_order_relaxed);
    }
    slots_[s].sum.store(0.0, std::memory_order_relaxed);
    slots_[s].max.store(0.0, std::memory_order_relaxed);
    slots_[s].stamp.store(-1, std::memory_order_relaxed);
  }
}

WindowedCounter::WindowedCounter(int num_slots, int64_t slot_width_us)
    : num_slots_(std::max(1, num_slots)),
      slot_width_us_(std::max<int64_t>(1, slot_width_us)) {
  slots_.reset(new Slot[num_slots_]);
}

void WindowedCounter::Increment(int64_t now_us, uint64_t n) {
  const int64_t window_index = now_us / slot_width_us_;
  Slot& slot = slots_[static_cast<size_t>(window_index) %
                      static_cast<size_t>(num_slots_)];
  if (slot.stamp.load(std::memory_order_acquire) != window_index) {
    std::lock_guard<std::mutex> lock(rotate_mutex_);
    if (slot.stamp.load(std::memory_order_relaxed) != window_index) {
      slot.count.store(0, std::memory_order_relaxed);
      slot.stamp.store(window_index, std::memory_order_release);
    }
  }
  slot.count.fetch_add(n, std::memory_order_relaxed);
}

uint64_t WindowedCounter::Sum(int64_t now_us) const {
  const int64_t current = now_us / slot_width_us_;
  uint64_t sum = 0;
  for (int s = 0; s < num_slots_; ++s) {
    const int64_t stamp = slots_[s].stamp.load(std::memory_order_acquire);
    if (stamp < 0 || stamp > current || stamp <= current - num_slots_) {
      continue;
    }
    sum += slots_[s].count.load(std::memory_order_relaxed);
  }
  return sum;
}

void WindowedCounter::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mutex_);
  for (int s = 0; s < num_slots_; ++s) {
    slots_[s].count.store(0, std::memory_order_relaxed);
    slots_[s].stamp.store(-1, std::memory_order_relaxed);
  }
}

void RegistrySnapshot::Merge(const RegistrySnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, gauge] : other.gauges) {
    GaugeSnapshot& mine = gauges[name];
    mine.value += gauge.value;
    mine.max = std::max(mine.max, gauge.max);
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].Merge(histogram);
  }
  for (const auto& [name, window] : other.windowed) {
    WindowedSnapshot& mine = windowed[name];
    mine.window_s = std::max(mine.window_s, window.window_s);
    mine.hist.Merge(window.hist);
  }
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\n";
  AppendJsonSections(&out);
  out += "\n}\n";
  return out;
}

void RegistrySnapshot::AppendJsonSections(std::string* result) const {
  std::ostringstream out;
  out << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": " << value;
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": {\"value\": " << gauge.value << ", \"max\": " << gauge.max
        << "}";
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": {\"count\": " << histogram.TotalCount()
        << ", \"sum\": " << FormatNumber(histogram.sum)
        << ", \"mean\": " << FormatNumber(histogram.Mean())
        << ", \"p50\": " << FormatNumber(histogram.Percentile(50.0))
        << ", \"p95\": " << FormatNumber(histogram.Percentile(95.0))
        << ", \"p99\": " << FormatNumber(histogram.Percentile(99.0))
        << ", \"max\": " << FormatNumber(histogram.max) << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      if (histogram.counts[i] == 0) continue;  // Sparse: skip empty buckets.
      const bool overflow = i >= histogram.bounds.size();
      out << (first_bucket ? "[" : ", [")
          << (overflow ? "null" : FormatNumber(histogram.bounds[i])) << ", "
          << histogram.counts[i] << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << "\n  },\n  \"windowed\": {";
  first = true;
  for (const auto& [name, window] : windowed) {
    out << (first ? "\n    " : ",\n    ");
    AppendJsonString(out, name);
    out << ": {\"window_s\": " << FormatNumber(window.window_s)
        << ", \"count\": " << window.hist.TotalCount()
        << ", \"mean\": " << FormatNumber(window.hist.Mean())
        << ", \"p50\": " << FormatNumber(window.hist.Percentile(50.0))
        << ", \"p95\": " << FormatNumber(window.hist.Percentile(95.0))
        << ", \"p99\": " << FormatNumber(window.hist.Percentile(99.0))
        << ", \"max\": " << FormatNumber(window.hist.max) << "}";
    first = false;
  }
  out << "\n  }";
  *result += out.str();
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  if (!histograms.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"histogram", "count", "mean", "p50", "p95", "p99",
                    "max"});
    for (const auto& [name, h] : histograms) {
      rows.push_back({name, std::to_string(h.TotalCount()),
                      FormatNumber(h.Mean()), FormatNumber(h.Percentile(50)),
                      FormatNumber(h.Percentile(95)),
                      FormatNumber(h.Percentile(99)), FormatNumber(h.max)});
    }
    out += RenderAligned(rows);
  }
  if (!windowed.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"windowed", "window_s", "count", "p50", "p95", "p99",
                    "max"});
    for (const auto& [name, w] : windowed) {
      rows.push_back({name, FormatNumber(w.window_s),
                      std::to_string(w.hist.TotalCount()),
                      FormatNumber(w.hist.Percentile(50)),
                      FormatNumber(w.hist.Percentile(95)),
                      FormatNumber(w.hist.Percentile(99)),
                      FormatNumber(w.hist.max)});
    }
    out += "\n" + RenderAligned(rows);
  }
  if (!counters.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"counter", "value"});
    for (const auto& [name, value] : counters) {
      rows.push_back({name, std::to_string(value)});
    }
    out += "\n" + RenderAligned(rows);
  }
  if (!gauges.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"gauge", "value", "max"});
    for (const auto& [name, gauge] : gauges) {
      rows.push_back({name, std::to_string(gauge.value),
                      std::to_string(gauge.max)});
    }
    out += "\n" + RenderAligned(rows);
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, Histogram::DefaultLatencyBoundsUs());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

WindowedHistogram* MetricsRegistry::GetWindowedHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = windowed_[name];
  if (slot == nullptr) {
    slot = std::make_unique<WindowedHistogram>(
        Histogram::DefaultLatencyBoundsUs(), WindowedHistogram::kDefaultSlots,
        WindowedHistogram::kDefaultSlotWidthUs);
  }
  return slot.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  return Snapshot(SteadyNowUs());
}

RegistrySnapshot MetricsRegistry::Snapshot(int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = {gauge->Value(), gauge->Max()};
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  for (const auto& [name, windowed] : windowed_) {
    WindowedSnapshot& view = snapshot.windowed[name];
    view.window_s = static_cast<double>(windowed->window_us()) / 1e6;
    view.hist = windowed->Snapshot(now_us);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, windowed] : windowed_) windowed->Reset();
}

// ---------- SloTracker ----------

double SloTracker::Snapshot::WindowViolationRate() const {
  return window_requests == 0 ? 0.0
                              : static_cast<double>(window_violations) /
                                    static_cast<double>(window_requests);
}

double SloTracker::Snapshot::WindowErrorRate() const {
  return window_requests == 0 ? 0.0
                              : static_cast<double>(window_errors) /
                                    static_cast<double>(window_requests);
}

double SloTracker::Snapshot::WindowShedRate() const {
  const uint64_t offered = window_requests + window_shed;
  return offered == 0 ? 0.0
                      : static_cast<double>(window_shed) /
                            static_cast<double>(offered);
}

double SloTracker::Snapshot::BurnRate() const {
  if (!enabled || goal >= 1.0) return 0.0;
  return WindowViolationRate() / (1.0 - goal);
}

std::string SloTracker::Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"enabled\": " << (enabled ? "true" : "false")
      << ", \"target_us\": " << FormatNumber(target_us)
      << ", \"goal\": " << FormatNumber(goal)
      << ", \"window_s\": " << FormatNumber(window_s)
      << ", \"window\": {\"requests\": " << window_requests
      << ", \"violations\": " << window_violations
      << ", \"errors\": " << window_errors << ", \"shed\": " << window_shed
      << ", \"violation_rate\": " << FormatNumber(WindowViolationRate())
      << ", \"error_rate\": " << FormatNumber(WindowErrorRate())
      << ", \"shed_rate\": " << FormatNumber(WindowShedRate())
      << ", \"burn_rate\": " << FormatNumber(BurnRate())
      << "}, \"total\": {\"requests\": " << total_requests
      << ", \"violations\": " << total_violations
      << ", \"errors\": " << total_errors << ", \"shed\": " << total_shed
      << "}}";
  return out.str();
}

SloTracker& SloTracker::Global() {
  static SloTracker* tracker = new SloTracker();
  return *tracker;
}

SloTracker::SloTracker() = default;

void SloTracker::Configure(const Config& config) {
  target_us_.store(config.target_us, std::memory_order_relaxed);
  goal_.store(config.goal, std::memory_order_relaxed);
}

void SloTracker::RecordRequest(double latency_us, bool error,
                               int64_t now_us) {
  requests_.Increment(now_us);
  total_requests_.Increment();
  const double target = target_us_.load(std::memory_order_relaxed);
  if (target > 0.0 && latency_us > target) {
    violations_.Increment(now_us);
    total_violations_.Increment();
  }
  if (error) {
    errors_.Increment(now_us);
    total_errors_.Increment();
  }
}

void SloTracker::RecordShed(int64_t now_us) {
  shed_.Increment(now_us);
  total_shed_.Increment();
}

SloTracker::Snapshot SloTracker::Snap(int64_t now_us) const {
  Snapshot snapshot;
  snapshot.target_us = target_us_.load(std::memory_order_relaxed);
  snapshot.enabled = snapshot.target_us > 0.0;
  snapshot.goal = goal_.load(std::memory_order_relaxed);
  snapshot.window_s = static_cast<double>(requests_.window_us()) / 1e6;
  snapshot.window_requests = requests_.Sum(now_us);
  snapshot.window_violations = violations_.Sum(now_us);
  snapshot.window_errors = errors_.Sum(now_us);
  snapshot.window_shed = shed_.Sum(now_us);
  snapshot.total_requests = total_requests_.Value();
  snapshot.total_violations = total_violations_.Value();
  snapshot.total_errors = total_errors_.Value();
  snapshot.total_shed = total_shed_.Value();
  return snapshot;
}

void SloTracker::Reset() {
  target_us_.store(0.0, std::memory_order_relaxed);
  goal_.store(0.99, std::memory_order_relaxed);
  requests_.Reset();
  violations_.Reset();
  errors_.Reset();
  shed_.Reset();
  total_requests_.Reset();
  total_violations_.Reset();
  total_errors_.Reset();
  total_shed_.Reset();
}

}  // namespace pws::obs
