#ifndef PWS_OBS_REPORT_H_
#define PWS_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pws::obs {

/// Serializes slow-request exemplar records as a JSON array (label,
/// request id, verb, total, per-stage offsets/durations) — the
/// "exemplars" section of the metrics document.
std::string ExemplarsJson(const std::vector<TraceRecord>& records);

/// The single metrics-JSON writer every surface uses (pws_cli `metrics
/// json`, bench/loadgen `--metrics-out`, the server `metrics` verb):
/// one document with the snapshot's "counters"/"gauges"/"histograms"/
/// "windowed" sections plus "slo" and "exemplars". Callers that merged
/// extra registries in (loadgen folds server metrics into its own) pass
/// the merged snapshot.
std::string MetricsJson(const RegistrySnapshot& snapshot,
                        const SloTracker::Snapshot& slo,
                        const std::vector<TraceRecord>& exemplars);

/// MetricsJson over the process-wide state: the global registry,
/// SloTracker::Global(), and TraceCollector::GlobalExemplars(), all
/// evaluated at `now_us` (no-arg overload uses SteadyNowUs).
std::string GlobalMetricsJson();
std::string GlobalMetricsJson(int64_t now_us);

}  // namespace pws::obs

#endif  // PWS_OBS_REPORT_H_
