#ifndef PWS_OBS_METRICS_H_
#define PWS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pws::obs {

/// Monotonic event counter. Increment is a single relaxed atomic add, so
/// counters are safe (and cheap) to bump from any number of threads on
/// the serve hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// The underlying atomic, for components (e.g. ShardedLruCache) that
  /// bump externally owned counters without depending on this header.
  std::atomic<uint64_t>& raw() { return value_; }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, resident entries). Tracks the
/// high-water mark seen since the last Reset alongside the current value.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }
  void Add(int64_t delta) {
    const int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) UpdateMax(now);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t candidate) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Read-only copy of a Histogram's state, cheap to merge and to extract
/// percentiles from. `counts` has one slot per bound plus a final
/// overflow slot; slot i counts values <= bounds[i] (and > bounds[i-1]).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  double sum = 0.0;
  double max = 0.0;

  uint64_t TotalCount() const;
  double Mean() const;
  /// Linear interpolation inside the bucket holding the p-th percentile
  /// (p in [0, 100]); 0 when empty. The overflow bucket interpolates
  /// toward the observed max.
  double Percentile(double p) const;
  /// Adds `other`'s counts in; bucket layouts must match.
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram with a lock-free record path: one relaxed
/// atomic add on the bucket plus relaxed CAS accumulation of sum/max.
/// Bounds are immutable after construction, so Record never takes a
/// lock and never allocates.
class Histogram {
 public:
  /// `bounds` must be strictly increasing bucket upper bounds.
  explicit Histogram(std::vector<double> bounds);

  /// Power-of-two microsecond bounds from 1us to ~67s — the default
  /// layout every latency histogram (".us" metrics) uses.
  static std::vector<double> DefaultLatencyBoundsUs();

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Microseconds on the steady clock — the time base every windowed
/// metric rotates on. Callers on a hot path that already read the clock
/// pass their own value; tests inject synthetic times for determinism.
int64_t SteadyNowUs();

/// Rolling-window histogram: N fixed sub-windows of `slot_width_us`
/// each, rotated lazily on the caller-supplied time base. A snapshot
/// merges only the sub-windows still inside the window, so percentiles
/// answer "how is p99 *right now*" instead of since process start.
///
/// The record path is lock-free in the steady state (one stamp load
/// plus the same relaxed adds as Histogram); a mutex is taken only on
/// the rotation edge, once per slot width. Rotation races can
/// misattribute a sample to the slot being recycled — acceptable for
/// monitoring data, and every access is atomic so the race is benign.
class WindowedHistogram {
 public:
  /// 8 sub-windows of 1.25s — live percentiles over the last ~10s.
  static constexpr int kDefaultSlots = 8;
  static constexpr int64_t kDefaultSlotWidthUs = 1'250'000;

  WindowedHistogram(std::vector<double> bounds, int num_slots,
                    int64_t slot_width_us);

  void Record(double value, int64_t now_us);
  /// Merged view of the sub-windows live at `now_us` (the current
  /// partial window plus up to N-1 complete predecessors).
  HistogramSnapshot Snapshot(int64_t now_us) const;

  int64_t window_us() const { return slot_width_us_ * num_slots_; }
  void Reset();

 private:
  struct Slot {
    /// Window index this slot currently holds (-1 = never used).
    std::atomic<int64_t> stamp{-1};
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };

  Slot& SlotFor(int64_t window_index);

  std::vector<double> bounds_;
  std::unique_ptr<Slot[]> slots_;
  int num_slots_;
  int64_t slot_width_us_;
  std::mutex rotate_mutex_;
};

/// Rolling-window event counter with the same sub-window rotation as
/// WindowedHistogram; Sum() is the event count over the live window.
class WindowedCounter {
 public:
  WindowedCounter(int num_slots = WindowedHistogram::kDefaultSlots,
                  int64_t slot_width_us =
                      WindowedHistogram::kDefaultSlotWidthUs);

  void Increment(int64_t now_us, uint64_t n = 1);
  uint64_t Sum(int64_t now_us) const;
  int64_t window_us() const { return slot_width_us_ * num_slots_; }
  void Reset();

 private:
  struct Slot {
    std::atomic<int64_t> stamp{-1};
    std::atomic<uint64_t> count{0};
  };

  std::unique_ptr<Slot[]> slots_;
  int num_slots_;
  int64_t slot_width_us_;
  std::mutex rotate_mutex_;
};

/// Current value of one gauge in a snapshot.
struct GaugeSnapshot {
  int64_t value = 0;
  int64_t max = 0;
};

/// One windowed histogram's live view plus the window it covers.
struct WindowedSnapshot {
  double window_s = 0.0;
  HistogramSnapshot hist;
};

/// A consistent-enough view of a whole registry: every individual metric
/// is read atomically (concurrent writers never tear a value), and the
/// result is a plain value type that can be merged across registries or
/// processes and serialized.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Live rolling-window views, keyed by the same names as the
  /// cumulative histograms they shadow.
  std::map<std::string, WindowedSnapshot> windowed;

  /// Folds `other` in: counters/histograms add, gauges take the sum of
  /// values and the max of maxima.
  void Merge(const RegistrySnapshot& other);

  /// JSON object with "counters", "gauges" and "histograms" sections;
  /// each histogram carries count/mean/p50/p95/p99/max plus raw buckets.
  std::string ToJson() const;

  /// The body of ToJson without the enclosing braces — lets callers
  /// (obs::GlobalMetricsJson) append extra sections to one document.
  void AppendJsonSections(std::string* out) const;

  /// Human-readable aligned tables (histograms first, then counters and
  /// gauges) for stdout reports.
  std::string ToText() const;
};

/// Process-wide, thread-safe registry of named metrics. Lookup by name
/// takes a mutex and is meant for initialization (cache the returned
/// pointer — the PWS_SPAN macro does this with a function-local static);
/// the returned handles are stable for the registry's lifetime and all
/// updates through them are lock-free.
///
/// Metric naming scheme: `component.stage.unit`, e.g.
/// `engine.serve.rank.us` (latency histogram, microseconds) or
/// `engine.query_cache.hits` (counter).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The singleton every subsystem and the PWS_SPAN macro register into.
  static MetricsRegistry& Global();

  /// Finds or creates; a given name always maps to the same handle.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// With the default microsecond latency bounds.
  Histogram* GetHistogram(const std::string& name);
  /// With explicit bucket upper bounds (ignored if `name` exists).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);
  /// The rolling-window sibling of GetHistogram: default latency bounds,
  /// default ~10s window. Named like the cumulative histogram it shadows.
  WindowedHistogram* GetWindowedHistogram(const std::string& name);

  RegistrySnapshot Snapshot() const;
  /// Snapshot with the windowed section evaluated at `now_us` (tests
  /// inject a synthetic time; the no-arg overload uses SteadyNowUs).
  RegistrySnapshot Snapshot(int64_t now_us) const;

  /// Zeroes every metric in place. Handles (and cached PWS_SPAN statics)
  /// stay valid. For tests and between-run isolation only.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windowed_;
};

/// Latency-SLO accounting for the serving front end: a target latency
/// plus rolling-window counts of requests, violations, errors, and shed
/// requests. Window rates answer "are we burning error budget right
/// now"; cumulative totals survive for the process lifetime. Request/
/// error/shed tracking is always on; the target (and so violation and
/// burn accounting) only engages after Configure with target_us > 0.
class SloTracker {
 public:
  struct Config {
    /// End-to-end latency target, microseconds (<= 0: no latency SLO).
    double target_us = 0.0;
    /// Fraction of requests that must meet the target. Burn rate is
    /// window violation rate over the allowance (1 - goal): burn > 1
    /// means the error budget is being spent faster than it accrues.
    double goal = 0.99;
  };

  struct Snapshot {
    bool enabled = false;
    double target_us = 0.0;
    double goal = 0.99;
    double window_s = 0.0;
    uint64_t window_requests = 0;
    uint64_t window_violations = 0;
    uint64_t window_errors = 0;
    uint64_t window_shed = 0;
    uint64_t total_requests = 0;
    uint64_t total_violations = 0;
    uint64_t total_errors = 0;
    uint64_t total_shed = 0;

    double WindowViolationRate() const;
    double WindowErrorRate() const;
    double WindowShedRate() const;
    /// Window violation rate / (1 - goal); 0 when the SLO is off.
    double BurnRate() const;
    std::string ToJson() const;
  };

  static SloTracker& Global();

  SloTracker();
  void Configure(const Config& config);

  void RecordRequest(double latency_us, bool error, int64_t now_us);
  void RecordShed(int64_t now_us);
  Snapshot Snap(int64_t now_us) const;
  void Reset();

 private:
  std::atomic<double> target_us_{0.0};
  std::atomic<double> goal_{0.99};
  WindowedCounter requests_;
  WindowedCounter violations_;
  WindowedCounter errors_;
  WindowedCounter shed_;
  Counter total_requests_;
  Counter total_violations_;
  Counter total_errors_;
  Counter total_shed_;
};

/// JSON string-content escaping shared by every obs serializer (metrics
/// report, Chrome trace export). Appends the escaped characters only —
/// the caller supplies the surrounding quotes.
void AppendJsonEscaped(std::string* out, const std::string& text);

}  // namespace pws::obs

#endif  // PWS_OBS_METRICS_H_
