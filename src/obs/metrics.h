#ifndef PWS_OBS_METRICS_H_
#define PWS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pws::obs {

/// Monotonic event counter. Increment is a single relaxed atomic add, so
/// counters are safe (and cheap) to bump from any number of threads on
/// the serve hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  /// The underlying atomic, for components (e.g. ShardedLruCache) that
  /// bump externally owned counters without depending on this header.
  std::atomic<uint64_t>& raw() { return value_; }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, resident entries). Tracks the
/// high-water mark seen since the last Reset alongside the current value.
class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    UpdateMax(value);
  }
  void Add(int64_t delta) {
    const int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (delta > 0) UpdateMax(now);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t candidate) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !max_.compare_exchange_weak(seen, candidate,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Read-only copy of a Histogram's state, cheap to merge and to extract
/// percentiles from. `counts` has one slot per bound plus a final
/// overflow slot; slot i counts values <= bounds[i] (and > bounds[i-1]).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  double sum = 0.0;
  double max = 0.0;

  uint64_t TotalCount() const;
  double Mean() const;
  /// Linear interpolation inside the bucket holding the p-th percentile
  /// (p in [0, 100]); 0 when empty. The overflow bucket interpolates
  /// toward the observed max.
  double Percentile(double p) const;
  /// Adds `other`'s counts in; bucket layouts must match.
  void Merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram with a lock-free record path: one relaxed
/// atomic add on the bucket plus relaxed CAS accumulation of sum/max.
/// Bounds are immutable after construction, so Record never takes a
/// lock and never allocates.
class Histogram {
 public:
  /// `bounds` must be strictly increasing bucket upper bounds.
  explicit Histogram(std::vector<double> bounds);

  /// Power-of-two microsecond bounds from 1us to ~67s — the default
  /// layout every latency histogram (".us" metrics) uses.
  static std::vector<double> DefaultLatencyBoundsUs();

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Current value of one gauge in a snapshot.
struct GaugeSnapshot {
  int64_t value = 0;
  int64_t max = 0;
};

/// A consistent-enough view of a whole registry: every individual metric
/// is read atomically (concurrent writers never tear a value), and the
/// result is a plain value type that can be merged across registries or
/// processes and serialized.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Folds `other` in: counters/histograms add, gauges take the sum of
  /// values and the max of maxima.
  void Merge(const RegistrySnapshot& other);

  /// JSON object with "counters", "gauges" and "histograms" sections;
  /// each histogram carries count/mean/p50/p95/p99/max plus raw buckets.
  std::string ToJson() const;

  /// Human-readable aligned tables (histograms first, then counters and
  /// gauges) for stdout reports.
  std::string ToText() const;
};

/// Process-wide, thread-safe registry of named metrics. Lookup by name
/// takes a mutex and is meant for initialization (cache the returned
/// pointer — the PWS_SPAN macro does this with a function-local static);
/// the returned handles are stable for the registry's lifetime and all
/// updates through them are lock-free.
///
/// Metric naming scheme: `component.stage.unit`, e.g.
/// `engine.serve.rank.us` (latency histogram, microseconds) or
/// `engine.query_cache.hits` (counter).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The singleton every subsystem and the PWS_SPAN macro register into.
  static MetricsRegistry& Global();

  /// Finds or creates; a given name always maps to the same handle.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// With the default microsecond latency bounds.
  Histogram* GetHistogram(const std::string& name);
  /// With explicit bucket upper bounds (ignored if `name` exists).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  RegistrySnapshot Snapshot() const;

  /// Zeroes every metric in place. Handles (and cached PWS_SPAN statics)
  /// stay valid. For tests and between-run isolation only.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pws::obs

#endif  // PWS_OBS_METRICS_H_
