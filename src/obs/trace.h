#ifndef PWS_OBS_TRACE_H_
#define PWS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace pws::obs {

/// One completed span inside a query trace. `name` points at the static
/// string literal the PWS_SPAN site was declared with.
struct TraceEvent {
  const char* name = "";
  /// Offset of the span start from the trace start, microseconds.
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
};

/// The per-request trace record: every span that closed while the trace
/// was the thread's active one, in completion order. Server-opened
/// traces carry the request id and verb so one slow response can be
/// tied back to the stages that made it slow.
struct TraceRecord {
  std::string label;
  /// 64-bit request id assigned by the server at accept time (0 for
  /// traces opened outside the serving stack, e.g. bare engine calls).
  uint64_t request_id = 0;
  /// Protocol verb ("serve", "click", ...) for server traces; a static
  /// string literal, "" elsewhere.
  const char* verb = "";
  /// Steady-clock microseconds at trace start — places the record on
  /// the process timeline in Chrome trace exports.
  int64_t epoch_us = 0;
  uint64_t total_us = 0;
  std::vector<TraceEvent> events;

  /// "label total_us | name@start+duration ..." one-liner for dumps.
  std::string ToString() const;
};

/// Bounded ring buffer of recent query traces, disabled by default so
/// the serve path pays one relaxed atomic load when tracing is off.
/// Enable(capacity) turns collection on; Dump() returns the resident
/// records oldest-first (collection keeps running).
class TraceCollector {
 public:
  /// Sampled traces (the 1-in-N ring the server fills).
  static TraceCollector& Global();
  /// Slow-request exemplars: requests over the server's latency
  /// threshold land here regardless of sampling, so tail outliers are
  /// always explained. Same ring semantics, separate bound.
  static TraceCollector& GlobalExemplars();

  void Enable(size_t capacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Add(TraceRecord record);
  std::vector<TraceRecord> Dump() const;
  void Clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;
  size_t capacity_ = 0;
  size_t next_ = 0;      // Slot the next record lands in.
  size_t resident_ = 0;  // min(records added, capacity_).
};

/// Chrome trace_event JSON ("X" complete events, microsecond
/// timestamps) for a set of trace records — loadable in chrome://tracing
/// and Perfetto. Each record becomes one "request" event plus one event
/// per stage, all on tid = request id, ts laid out on the process
/// steady-clock timeline via TraceRecord::epoch_us.
std::string ChromeTraceJson(const std::vector<TraceRecord>& records);

namespace internal_trace {

/// The thread's open query trace, appended to by closing spans. Spans
/// and the trace always live on one thread (request execution is
/// synchronous on its worker), so plain thread_local access needs no
/// synchronization.
struct ActiveTrace {
  TraceRecord* record = nullptr;
  std::chrono::steady_clock::time_point start;
};
extern thread_local ActiveTrace g_active_trace;

}  // namespace internal_trace

/// Times a scope and records the elapsed microseconds into the
/// cumulative `histogram` and the rolling `windowed` sibling on
/// destruction; also appends a TraceEvent to the thread's active
/// request trace, if one is open. Use via PWS_SPAN rather than directly.
class ScopedSpan {
 public:
  ScopedSpan(Histogram* histogram, WindowedHistogram* windowed,
             const char* name)
      : histogram_(histogram),
        windowed_(windowed),
        name_(name),
        start_(std::chrono::steady_clock::now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    const auto end = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(end - start_).count();
    histogram_->Record(us);
    windowed_->Record(
        us, std::chrono::duration_cast<std::chrono::microseconds>(
                end.time_since_epoch())
                .count());
    internal_trace::ActiveTrace& active = internal_trace::g_active_trace;
    if (active.record != nullptr) {
      TraceEvent event;
      event.name = name_;
      event.start_us = static_cast<uint64_t>(
          std::chrono::duration<double, std::micro>(start_ - active.start)
              .count());
      event.duration_us = static_cast<uint64_t>(us);
      active.record->events.push_back(event);
    }
  }

 private:
  Histogram* histogram_;
  WindowedHistogram* windowed_;
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Opens a query trace on this thread for the scope's duration when the
/// global TraceCollector is enabled (and no trace is already open); the
/// finished record is pushed into the collector's ring. When the
/// collector is disabled the constructor is a single relaxed load.
class ScopedQueryTrace {
 public:
  explicit ScopedQueryTrace(const std::string& label);
  ~ScopedQueryTrace();

  ScopedQueryTrace(const ScopedQueryTrace&) = delete;
  ScopedQueryTrace& operator=(const ScopedQueryTrace&) = delete;

 private:
  bool active_ = false;
  TraceRecord record_;
  std::chrono::steady_clock::time_point start_;
};

/// The server-side request trace: opened explicitly on the worker
/// executing a request, with the trace origin backdated to the moment
/// the request line arrived — so stages that ran before the worker
/// picked the request up (parse on the reader thread, the admission
/// queue wait) can be stitched in as manual events, and every PWS_SPAN
/// that closes while it is open (server stages and the engine's own
/// spans alike) lands in the same record. Close() finalizes the total;
/// the caller then decides which rings (sampled, exemplar) get the
/// record. Destruction abandons an unclosed trace safely.
class RequestTrace {
 public:
  RequestTrace() = default;
  ~RequestTrace();

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// No-op if another trace is already open on this thread.
  void Open(const char* verb, std::string label, uint64_t request_id,
            std::chrono::steady_clock::time_point origin);
  bool open() const { return open_; }

  /// Appends a stage that was timed manually (possibly on another
  /// thread, before Open). `name` must be a static string literal.
  void AddStage(const char* name,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end);

  /// Stops span capture and finalizes total_us (now - origin). Returns
  /// the total; idempotent.
  uint64_t CloseUs();

  /// Moves the finished record out (call after CloseUs).
  TraceRecord Take() { return std::move(record_); }

 private:
  bool open_ = false;
  bool closed_ = false;
  TraceRecord record_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace pws::obs

#define PWS_OBS_CONCAT_INNER(a, b) a##b
#define PWS_OBS_CONCAT(a, b) PWS_OBS_CONCAT_INNER(a, b)

#if defined(PWS_OBS_DISABLED)

// Spans compile away entirely (the baseline for overhead measurements).
#define PWS_SPAN(name) \
  do {                 \
  } while (false)
#define PWS_QUERY_TRACE(label) \
  do {                         \
  } while (false)

#else

/// Times the enclosing scope into the latency histogram `name + ".us"`
/// of the global registry — both the cumulative histogram and its
/// rolling-window sibling, so `metrics` reports live percentiles per
/// stage. The handles are resolved once per call site (function-local
/// statics), so steady-state cost is two steady_clock reads plus a few
/// relaxed atomic adds.
///
///   PWS_SPAN("engine.serve.rank");
#define PWS_SPAN(name)                                                  \
  static ::pws::obs::Histogram* PWS_OBS_CONCAT(pws_span_hist_,          \
                                               __LINE__) =              \
      ::pws::obs::MetricsRegistry::Global().GetHistogram(               \
          std::string(name) + ".us");                                   \
  static ::pws::obs::WindowedHistogram* PWS_OBS_CONCAT(pws_span_win_,   \
                                                       __LINE__) =      \
      ::pws::obs::MetricsRegistry::Global().GetWindowedHistogram(       \
          std::string(name) + ".us");                                   \
  ::pws::obs::ScopedSpan PWS_OBS_CONCAT(pws_span_, __LINE__)(           \
      PWS_OBS_CONCAT(pws_span_hist_, __LINE__),                         \
      PWS_OBS_CONCAT(pws_span_win_, __LINE__), name)

/// Opens a per-query trace (see ScopedQueryTrace) for the scope.
#define PWS_QUERY_TRACE(label) \
  ::pws::obs::ScopedQueryTrace PWS_OBS_CONCAT(pws_qtrace_, __LINE__)(label)

#endif  // PWS_OBS_DISABLED

#endif  // PWS_OBS_TRACE_H_
