#ifndef PWS_RANKING_FEATURE_SLAB_H_
#define PWS_RANKING_FEATURE_SLAB_H_

#include <cstring>
#include <vector>

#include "ranking/features.h"
#include "util/check.h"

namespace pws::ranking {

/// A chunked arena of kFeatureCount-wide feature rows with stable
/// addresses — the backing store for a user's training set. TrainUser
/// copies each distinct query's FeatureBlock into the slab once and
/// points every TrainingPair of that query at the copied rows, instead of
/// duplicating two full feature vectors into every pair.
///
/// Chunks are fixed-size heap buffers that are never reallocated, so row
/// pointers stay valid for the slab's lifetime (until Clear). Clear keeps
/// the chunks and rewinds the cursor, so a slab reused across training
/// rounds stops allocating once it has reached its working-set size.
class FeatureSlab {
 public:
  explicit FeatureSlab(int rows_per_chunk = 1024)
      : rows_per_chunk_(rows_per_chunk) {
    PWS_CHECK_GE(rows_per_chunk_, 1);
  }

  /// Copies all rows of `block` into the slab, contiguously, and returns
  /// the address of the copied first row (row i of the block is at
  /// `returned + i * kFeatureCount`). The block's row width is
  /// kFeatureCount by construction — this is the one-time dimension
  /// validation point for everything that later flows into
  /// RankSvm::Train as raw row pointers.
  const double* CopyBlock(const FeatureBlock& block) {
    return CopyRows(block.data().data(), block.rows());
  }

  /// Copies `n` contiguous kFeatureCount-wide rows starting at `rows`.
  const double* CopyRows(const double* rows, int n) {
    PWS_CHECK_GE(n, 0);
    if (n == 0) return nullptr;
    double* dst = Allocate(n);
    std::memcpy(dst, rows,
                static_cast<size_t>(n) * kFeatureCount * sizeof(double));
    return dst;
  }

  /// Rewinds the slab, invalidating previously returned pointers but
  /// keeping chunk storage for reuse.
  void Clear() {
    active_chunk_ = 0;
    used_rows_ = 0;
  }

  /// Total rows currently stored: chunks before the active one count in
  /// full (their tail slack was skipped, not filled — this is an upper
  /// bound used only for inspection), plus the active chunk's cursor.
  size_t row_count() const {
    size_t total = 0;
    for (size_t c = 0; c < active_chunk_ && c < chunk_rows_.size(); ++c) {
      total += chunk_rows_[c];
    }
    return total + used_rows_;
  }

 private:
  double* Allocate(int n) {
    // A block must stay contiguous: if it doesn't fit in the active
    // chunk's remainder, move to the next chunk (allocating an oversized
    // one when a single block exceeds rows_per_chunk_).
    while (active_chunk_ < chunks_.size() &&
           used_rows_ + static_cast<size_t>(n) >
               chunk_rows_[active_chunk_]) {
      ++active_chunk_;
      used_rows_ = 0;
    }
    if (active_chunk_ == chunks_.size()) {
      const size_t rows = static_cast<size_t>(
          n > rows_per_chunk_ ? n : rows_per_chunk_);
      chunks_.emplace_back(rows * kFeatureCount);
      chunk_rows_.push_back(rows);
      used_rows_ = 0;
    }
    double* out =
        chunks_[active_chunk_].data() + used_rows_ * kFeatureCount;
    used_rows_ += static_cast<size_t>(n);
    return out;
  }

  int rows_per_chunk_;
  /// Chunk heap buffers; the vector of chunks may grow, but each chunk's
  /// buffer address is fixed once allocated.
  std::vector<std::vector<double>> chunks_;
  std::vector<size_t> chunk_rows_;
  size_t active_chunk_ = 0;
  size_t used_rows_ = 0;
};

}  // namespace pws::ranking

#endif  // PWS_RANKING_FEATURE_SLAB_H_
