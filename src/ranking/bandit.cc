#include "ranking/bandit.h"

#include <cmath>

namespace pws::ranking {
namespace {

// splitmix64 finalizer: full-avalanche 64-bit mixing, the same primitive
// util::Random seeds with.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from one mixed key.
double UnitDouble(uint64_t key) {
  return static_cast<double>(Mix64(key) >> 11) * 0x1.0p-53;
}

}  // namespace

double ArmAlpha(int arm, const BanditOptions& options) {
  if (options.arms <= 1) {
    return 0.5 * (options.min_alpha + options.max_alpha);
  }
  const double t = static_cast<double>(arm) /
                   static_cast<double>(options.arms - 1);
  return options.min_alpha + t * (options.max_alpha - options.min_alpha);
}

uint64_t BanditDrawKey(uint64_t seed, int64_t user, int query_id,
                       int64_t total_pulls) {
  uint64_t h = Mix64(seed ^ static_cast<uint64_t>(user));
  h = Mix64(h ^ static_cast<uint64_t>(static_cast<uint32_t>(query_id)));
  return Mix64(h ^ static_cast<uint64_t>(total_pulls));
}

int SelectArm(std::span<const BanditArm> arms, const BanditOptions& options,
              uint64_t draw_key) {
  const int n = static_cast<int>(arms.size());
  if (n <= 1) return 0;
  int64_t total = 0;
  for (const BanditArm& arm : arms) total += arm.pulls;
  // Every arm gets one forced pull before any policy kicks in — both
  // UCB1's initialization step and a cheap way to seed the means.
  for (int i = 0; i < n; ++i) {
    if (arms[i].pulls == 0) return i;
  }
  if (options.ucb_c > 0.0) {
    const double log_total = std::log(static_cast<double>(total));
    int best = 0;
    double best_score = -1.0;
    for (int i = 0; i < n; ++i) {
      const double mean =
          arms[i].reward_sum / static_cast<double>(arms[i].pulls);
      const double bonus = options.ucb_c *
          std::sqrt(log_total / static_cast<double>(arms[i].pulls));
      const double score = mean + bonus;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }
  // Epsilon-greedy: explore uniformly with probability epsilon,
  // otherwise exploit the best empirical mean. The explore draw reuses
  // the key through a second mix so it is independent of the
  // explore/exploit coin.
  if (UnitDouble(draw_key) < options.epsilon) {
    return static_cast<int>(Mix64(draw_key ^ 0x517cc1b727220a95ull) %
                            static_cast<uint64_t>(n));
  }
  int best = 0;
  double best_mean = -1.0;
  for (int i = 0; i < n; ++i) {
    const double mean =
        arms[i].reward_sum / static_cast<double>(arms[i].pulls);
    if (mean > best_mean) {
      best_mean = mean;
      best = i;
    }
  }
  return best;
}

}  // namespace pws::ranking
