#include "ranking/rank_svm.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace pws::ranking {

RankSvm::RankSvm(int dimension)
    : weights_(dimension, 0.0), prior_(dimension, 0.0) {
  PWS_CHECK_GT(dimension, 0);
}

void RankSvm::SetPrior(std::vector<double> prior) {
  PWS_CHECK_EQ(prior.size(), weights_.size());
  prior_ = std::move(prior);
  weights_ = prior_;
  trained_ = true;
}

double RankSvm::Train(std::span<const TrainingPair> pairs,
                      const RankSvmOptions& options) {
  // epochs <= 0 would "train" nothing yet mark the model trained and
  // reset its weights to the prior — a silent no-op that reports 0.0
  // loss. Reject the configuration instead.
  PWS_CHECK_GE(options.epochs, 1) << "RankSvmOptions::epochs must be >= 1";
  PWS_SPAN("ranksvm.train");
  static obs::Counter* epochs_counter =
      obs::MetricsRegistry::Global().GetCounter("ranksvm.train.epochs");
  static obs::Counter* pairs_counter =
      obs::MetricsRegistry::Global().GetCounter("ranksvm.train.pairs");
  epochs_counter->Increment(static_cast<uint64_t>(options.epochs));
  pairs_counter->Increment(pairs.size());
  trained_ = true;
  weights_ = prior_;  // Retraining starts from the prior each time.
  if (pairs.empty()) return 0.0;
  const int dim = dimension();
  double* const w = weights_.data();
  const double* const prior = prior_.data();
  Random rng(options.shuffle_seed);
  std::vector<int> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);

  double final_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    PWS_SPAN("ranksvm.train.epoch");
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    for (int index : order) {
      const TrainingPair& pair = pairs[index];
      const double* const p = pair.preferred;
      const double* const o = pair.other;
      double margin = 0.0;
      for (int d = 0; d < dim; ++d) {
        margin += w[d] * (p[d] - o[d]);
      }
      const double hinge = std::max(0.0, 1.0 - margin);
      epoch_loss += pair.weight * hinge;
      // L2 pull toward the prior (Pegasos-style step; prior defaults to
      // zero, giving plain shrinkage), fused with the hinge step into one
      // pass over the weights. Both updates touch only element d, and the
      // per-element order (pull, then step) matches the old two-loop
      // form, so the fusion is bit-identical.
      const double pull = options.learning_rate * options.l2_lambda;
      if (hinge > 0.0) {
        const double step = options.learning_rate * pair.weight;
        for (int d = 0; d < dim; ++d) {
          w[d] -= pull * (w[d] - prior[d]);
          w[d] += step * (p[d] - o[d]);
        }
      } else {
        for (int d = 0; d < dim; ++d) {
          w[d] -= pull * (w[d] - prior[d]);
        }
      }
    }
    final_epoch_loss = epoch_loss / pairs.size();
  }
  return final_epoch_loss;
}

double RankSvm::TrainIncremental(std::span<const TrainingPair> pairs,
                                 const RankSvmOptions& options) {
  PWS_CHECK_GE(options.epochs, 1) << "RankSvmOptions::epochs must be >= 1";
  PWS_SPAN("ranksvm.train_incremental");
  static obs::Counter* pairs_counter = obs::MetricsRegistry::Global()
      .GetCounter("ranksvm.incremental.pairs");
  pairs_counter->Increment(pairs.size());
  trained_ = true;
  if (pairs.empty()) return 0.0;
  const int dim = dimension();
  double* const w = weights_.data();
  const double* const prior = prior_.data();
  const double pull = options.learning_rate * options.l2_lambda;
  double final_epoch_loss = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (const TrainingPair& pair : pairs) {
      const double* const p = pair.preferred;
      const double* const o = pair.other;
      double margin = 0.0;
      for (int d = 0; d < dim; ++d) {
        margin += w[d] * (p[d] - o[d]);
      }
      const double hinge = std::max(0.0, 1.0 - margin);
      epoch_loss += pair.weight * hinge;
      // Same fused L2-pull + hinge step as Train's inner loop.
      if (hinge > 0.0) {
        const double step = options.learning_rate * pair.weight;
        for (int d = 0; d < dim; ++d) {
          w[d] -= pull * (w[d] - prior[d]);
          w[d] += step * (p[d] - o[d]);
        }
      } else {
        for (int d = 0; d < dim; ++d) {
          w[d] -= pull * (w[d] - prior[d]);
        }
      }
    }
    final_epoch_loss = epoch_loss / pairs.size();
  }
  return final_epoch_loss;
}

double RankSvm::Score(const double* x) const {
  return ScoreRange(x, 0, dimension());
}

double RankSvm::Score(const std::vector<double>& x) const {
  PWS_CHECK_EQ(static_cast<int>(x.size()), dimension());
  return ScoreRange(x.data(), 0, dimension());
}

double RankSvm::ScoreRange(const double* x, int begin, int end) const {
  PWS_CHECK_GE(begin, 0);
  PWS_CHECK_LE(end, dimension());
  double sum = 0.0;
  for (int d = begin; d < end; ++d) sum += weights_[d] * x[d];
  return sum;
}

double RankSvm::ScoreRange(const std::vector<double>& x, int begin,
                           int end) const {
  PWS_CHECK_EQ(static_cast<int>(x.size()), dimension());
  return ScoreRange(x.data(), begin, end);
}

void RankSvm::set_weights(std::vector<double> weights) {
  PWS_CHECK_EQ(weights.size(), weights_.size());
  weights_ = std::move(weights);
  trained_ = true;
}

}  // namespace pws::ranking
