#include "ranking/features.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pws::ranking {
namespace {

// Squashes an unbounded non-negative signal into [0, 1).
double Squash(double x) { return x / (1.0 + x); }

}  // namespace

double PageLocationDensity(const concepts::QueryLocationConcepts& locations) {
  if (locations.per_result.empty()) return 0.0;
  int located = 0;
  for (const auto& locs : locations.per_result) {
    if (!locs.empty()) ++located;
  }
  return static_cast<double>(located) / locations.per_result.size();
}

double LocationGate(double density, double lo, double hi) {
  PWS_CHECK_LT(lo, hi);
  if (density <= lo) return 0.0;
  if (density >= hi) return 1.0;
  const double t = (density - lo) / (hi - lo);
  return t * t * (3.0 - 2.0 * t);
}

void MaskFeatureRange(std::vector<double>& x, int begin, int end) {
  PWS_CHECK_GE(begin, 0);
  PWS_CHECK_LE(end, static_cast<int>(x.size()));
  for (int i = begin; i < end; ++i) x[i] = 0.0;
}

FeatureMatrix ExtractFeatures(const backend::ResultPage& page,
                              const FeatureContext& context) {
  PWS_CHECK(context.ontology != nullptr);
  const int n = static_cast<int>(page.results.size());
  FeatureMatrix features(n, std::vector<double>(kFeatureCount, 0.0));
  if (n == 0) return features;

  if (context.content_terms_per_result != nullptr) {
    PWS_CHECK_EQ(context.content_terms_per_result->size(),
                 static_cast<size_t>(n));
  }
  if (context.query_locations != nullptr) {
    PWS_CHECK_EQ(context.query_locations->per_result.size(),
                 static_cast<size_t>(n));
  }

  // Profile scale normalizers keep features scale-free as the profile's
  // raw weights grow with observation count.
  double content_norm = 1.0;
  double location_norm = 1.0;
  if (context.user_profile != nullptr) {
    content_norm = std::max(1e-9, context.user_profile->MaxContentWeight());
    location_norm = std::max(1e-9, context.user_profile->MaxLocationWeight());
  }

  for (int i = 0; i < n; ++i) {
    std::vector<double>& x = features[i];

    // --- Content block ---
    if (context.user_profile != nullptr &&
        context.content_terms_per_result != nullptr) {
      const auto& terms = (*context.content_terms_per_result)[i];
      double sum_weight = 0.0;
      int positive = 0;
      for (const auto& term : terms) {
        const double w = context.user_profile->ContentWeight(term);
        sum_weight += w;
        if (w > 0.0) ++positive;
      }
      x[0] = Squash(std::max(0.0, sum_weight) / content_norm);
      x[1] = terms.empty() ? 0.0
                           : static_cast<double>(positive) / terms.size();
    }

    // --- Location block ---
    if (context.query_locations != nullptr) {
      const double gate =
          LocationGate(PageLocationDensity(*context.query_locations));
      // When the query names a place, the *query* fixes the location
      // aspect: the user's standing location preference (and their
      // physical position) must not fight it. Only the query-match
      // feature stays live on such queries.
      const double preference_gate =
          context.query_mentioned_locations.empty() ? gate : 0.0;
      const auto& locations = context.query_locations->per_result[i];
      double query_match = 0.0;
      for (geo::LocationId loc : locations) {
        for (geo::LocationId qloc : context.query_mentioned_locations) {
          query_match = std::max(query_match,
                                 context.ontology->Similarity(loc, qloc));
        }
      }
      x[kQueryLocationMatchIndex] = query_match;

      if (context.user_profile != nullptr) {
        double affinity = 0.0;
        double direct = 0.0;
        for (geo::LocationId loc : locations) {
          affinity = std::max(affinity,
                              context.user_profile->LocationAffinity(loc));
          direct += std::max(0.0, context.user_profile->LocationWeight(loc));
        }
        x[3] = preference_gate * std::min(1.0, affinity / location_norm);
        x[4] = preference_gate * Squash(direct / location_norm);
      }

      double page_weight = 0.0;
      for (geo::LocationId loc : locations) {
        page_weight =
            std::max(page_weight, context.query_locations->WeightOf(loc));
      }
      x[5] = gate * page_weight;
      x[6] = locations.empty() ? 0.0 : gate;

      if (context.gps_position.has_value() && !locations.empty()) {
        double best_decay = 0.0;
        for (geo::LocationId loc : locations) {
          const double km = geo::HaversineKm(
              *context.gps_position, context.ontology->node(loc).coords);
          best_decay = std::max(
              best_decay, geo::DistanceDecay(km, context.gps_decay_scale_km));
        }
        x[kGpsFeatureIndex] = preference_gate * best_decay;
      }
    }
  }
  return features;
}

}  // namespace pws::ranking
