#include "ranking/features.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/id_map.h"

namespace pws::ranking {
namespace {

// Squashes an unbounded non-negative signal into [0, 1).
double Squash(double x) { return x / (1.0 + x); }

}  // namespace

double PageLocationDensity(const concepts::QueryLocationConcepts& locations) {
  if (locations.per_result.empty()) return 0.0;
  int located = 0;
  for (const auto& locs : locations.per_result) {
    if (!locs.empty()) ++located;
  }
  return static_cast<double>(located) / locations.per_result.size();
}

double LocationGate(double density, double lo, double hi) {
  PWS_CHECK_LT(lo, hi);
  if (density <= lo) return 0.0;
  if (density >= hi) return 1.0;
  const double t = (density - lo) / (hi - lo);
  return t * t * (3.0 - 2.0 * t);
}

void MaskFeatureRange(double* x, int begin, int end) {
  PWS_CHECK_GE(begin, 0);
  PWS_CHECK_LE(end, kFeatureCount);
  for (int i = begin; i < end; ++i) x[i] = 0.0;
}

void MaskFeatureRange(std::vector<double>& x, int begin, int end) {
  PWS_CHECK_LE(end, static_cast<int>(x.size()));
  MaskFeatureRange(x.data(), begin, end);
}

FeatureBlock ExtractFeatures(const backend::ResultPage& page,
                             const FeatureContext& context) {
  FeatureBlock block;
  ExtractFeaturesInto(page, context, block);
  return block;
}

void ExtractFeaturesInto(const backend::ResultPage& page,
                         const FeatureContext& context, FeatureBlock& out) {
  PWS_CHECK(context.ontology != nullptr);
  const int n = static_cast<int>(page.results.size());
  out.Reset(n);
  if (n == 0) return;

  if (context.impression != nullptr) {
    PWS_CHECK_EQ(context.impression->result_count(), n);
  }
  if (context.query_locations != nullptr) {
    PWS_CHECK_EQ(context.query_locations->per_result.size(),
                 static_cast<size_t>(n));
  }

  // Profile scale normalizers keep features scale-free as the profile's
  // raw weights grow with observation count.
  double content_norm = 1.0;
  double location_norm = 1.0;
  if (context.user_profile != nullptr) {
    content_norm =
        context.content_norm.has_value()
            ? *context.content_norm
            : std::max(1e-9, context.user_profile->MaxContentWeight());
    location_norm =
        context.location_norm.has_value()
            ? *context.location_norm
            : std::max(1e-9, context.user_profile->MaxLocationWeight());
  }

  // The location gate depends only on the page, not the result: hoisted
  // out of the per-result loop (PageLocationDensity walks every result).
  double gate = 0.0;
  double preference_gate = 0.0;
  if (context.query_locations != nullptr) {
    gate = LocationGate(PageLocationDensity(*context.query_locations));
    // When the query names a place, the *query* fixes the location
    // aspect: the user's standing location preference (and their
    // physical position) must not fight it. Only the query-match
    // feature stays live on such queries.
    preference_gate = context.query_mentioned_locations.empty() ? gate : 0.0;
  }

  // Per-location scores are pure functions of (location, page, profile),
  // all constant for the duration of one extraction, and the same
  // location recurs across a page's results — memoize them. Max-of-maxes
  // and per-occurrence sums of memoized values are bit-identical to the
  // direct computation (comparisons and the original summation order are
  // unchanged).
  struct LocationScores {
    double query_match = 0.0;  // best Similarity vs query locations
    double affinity = 0.0;     // profile->LocationAffinity
    double direct = 0.0;       // max(0, profile->LocationWeight)
    double page_weight = 0.0;  // query_locations->WeightOf
    double gps_decay = 0.0;    // DistanceDecay from gps_position
  };
  pws::IdMap<geo::LocationId, LocationScores> location_memo;
  const auto scores_of = [&](geo::LocationId loc) -> LocationScores {
    if (const LocationScores* found = location_memo.Find(loc)) return *found;
    LocationScores s;
    for (geo::LocationId qloc : context.query_mentioned_locations) {
      s.query_match =
          std::max(s.query_match, context.ontology->Similarity(loc, qloc));
    }
    if (context.user_profile != nullptr) {
      s.affinity = context.user_profile->LocationAffinity(loc);
      s.direct = std::max(0.0, context.user_profile->LocationWeight(loc));
    }
    s.page_weight = context.query_locations->WeightOf(loc);
    if (context.gps_position.has_value()) {
      const double km = geo::HaversineKm(*context.gps_position,
                                         context.ontology->node(loc).coords);
      s.gps_decay = geo::DistanceDecay(km, context.gps_decay_scale_km);
    }
    location_memo[loc] = s;
    return s;
  };

  for (int i = 0; i < n; ++i) {
    double* x = out.row(i);

    // --- Content block ---
    if (context.user_profile != nullptr && context.impression != nullptr) {
      const auto ids = context.impression->content_ids(i);
      double sum_weight = 0.0;
      int positive = 0;
      for (concepts::ConceptId id : ids) {
        const double w = context.user_profile->ContentWeight(id);
        sum_weight += w;
        if (w > 0.0) ++positive;
      }
      x[0] = Squash(std::max(0.0, sum_weight) / content_norm);
      x[1] = ids.empty() ? 0.0
                         : static_cast<double>(positive) / ids.size();
    }

    // --- Location block ---
    if (context.query_locations != nullptr) {
      const auto& locations = context.query_locations->per_result[i];
      double query_match = 0.0;
      double affinity = 0.0;
      double direct = 0.0;
      double page_weight = 0.0;
      double best_decay = 0.0;
      for (geo::LocationId loc : locations) {
        const LocationScores s = scores_of(loc);
        query_match = std::max(query_match, s.query_match);
        affinity = std::max(affinity, s.affinity);
        direct += s.direct;
        page_weight = std::max(page_weight, s.page_weight);
        best_decay = std::max(best_decay, s.gps_decay);
      }
      x[kQueryLocationMatchIndex] = query_match;
      if (context.user_profile != nullptr) {
        x[3] = preference_gate * std::min(1.0, affinity / location_norm);
        x[4] = preference_gate * Squash(direct / location_norm);
      }
      x[5] = gate * page_weight;
      x[6] = locations.empty() ? 0.0 : gate;
      if (context.gps_position.has_value() && !locations.empty()) {
        x[kGpsFeatureIndex] = preference_gate * best_decay;
      }
    }
  }
}

}  // namespace pws::ranking
