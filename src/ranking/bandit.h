#ifndef PWS_RANKING_BANDIT_H_
#define PWS_RANKING_BANDIT_H_

#include <cstdint>
#include <span>

namespace pws::ranking {

/// Contextual-bandit controller over the content/location blend weight α
/// (DESIGN.md §17): instead of the fixed or entropy-adaptive rule, α is
/// chosen per query from a small set of discretized arms whose empirical
/// click rewards are learned online, per user. Selection is a pure
/// function of (arm statistics, options, draw key), so WAL replay —
/// which reconstructs the arm statistics click by click — re-selects
/// exactly the arms the original process played.
struct BanditOptions {
  /// Off by default: the engine keeps its fixed/entropy α rule.
  bool enabled = false;
  /// Number of discretized α arms spread evenly over
  /// [min_alpha, max_alpha].
  int arms = 5;
  double min_alpha = 0.1;
  double max_alpha = 0.75;
  /// Epsilon-greedy exploration rate (used when ucb_c == 0).
  double epsilon = 0.1;
  /// > 0 selects UCB1 with this exploration constant; epsilon is then
  /// ignored. UCB1 is the default policy: on the E14 session workload it
  /// matches the entropy rule online while epsilon-greedy pays a small
  /// exploration tax (set ucb_c = 0 to get epsilon-greedy back).
  double ucb_c = 0.5;
  /// Seed of the deterministic exploration stream. Draws are keyed on
  /// (seed, user, query id, the user's total pull count), so identical
  /// histories explore identically.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// Running statistics of one α arm. Lives in core::UserState so it
/// tiers, snapshots, and WAL-replays like the rest of a user's state.
struct BanditArm {
  int64_t pulls = 0;
  double reward_sum = 0.0;
};

/// The α value arm `arm` plays: arms spread evenly over
/// [min_alpha, max_alpha] (a single arm sits at the midpoint).
double ArmAlpha(int arm, const BanditOptions& options);

/// Deterministic 64-bit draw key for one selection; mixing in
/// `total_pulls` advances the stream one step per observed impression
/// without storing a cursor.
uint64_t BanditDrawKey(uint64_t seed, int64_t user, int query_id,
                       int64_t total_pulls);

/// Picks the arm to play: untried arms first (lowest index), then UCB1
/// when ucb_c > 0, else epsilon-greedy on the empirical means (ties go
/// to the lowest index). Read-only — the caller records the pull and
/// reward after observing the impression.
int SelectArm(std::span<const BanditArm> arms, const BanditOptions& options,
              uint64_t draw_key);

}  // namespace pws::ranking

#endif  // PWS_RANKING_BANDIT_H_
