#ifndef PWS_RANKING_RANKER_H_
#define PWS_RANKING_RANKER_H_

#include <string>
#include <vector>

#include "ranking/features.h"
#include "ranking/rank_svm.h"

namespace pws::ranking {

/// The personalization strategies compared throughout the evaluation.
enum class Strategy {
  /// Backend order, untouched.
  kBaseline = 0,
  /// Re-rank with content-concept preferences only.
  kContentOnly = 1,
  /// Re-rank with location-concept preferences only.
  kLocationOnly = 2,
  /// The paper's full method: blend of content and location preference.
  kCombined = 3,
  /// Combined plus the GPS proximity feature (mobile scenario).
  kCombinedGps = 4,
  /// Combined plus a session-context boost: a bounded window of the
  /// user's recent in-session clicked concepts re-weights each result's
  /// score at serve time (DESIGN.md §17). Feature masking matches
  /// kCombined; the boost arrives via RankerOptions::session_boost.
  kSession = 5,
};

const char* StrategyToString(Strategy strategy);

/// Inverse of StrategyToString (accepts exactly its spellings, e.g.
/// "combined+gps", "session"). Returns false and leaves `out` untouched
/// on an unknown name — tools use this to parse --strategy flags.
bool StrategyFromString(const std::string& name, Strategy* out);

/// How the content and location preference signals are combined.
enum class BlendMode {
  /// Convex combination of the two block scores (the default):
  ///   score = prior + 2(1−α)·content_block + 2α·location_block.
  kScoreBlend = 0,
  /// Reciprocal-rank fusion: rank the page separately by the content
  /// block and by the location block, then combine
  ///   score = prior + (1−α)/(60+rank_c) · 60 + α/(60+rank_l) · 60.
  /// Less sensitive to block score scales; an E9-style alternative.
  kRankFusion = 1,
};

/// Serve-time ranking knobs.
struct RankerOptions {
  /// Location blend weight α in [0, 1] (see BlendMode).
  double alpha = 0.5;
  /// Weight of the fixed backend-order prior rank_prior_weight/(1+rank).
  /// The prior is NOT learned (see features.h on skip-above bias); it
  /// anchors the ranking to the backend until the learned correction is
  /// confident enough to move results.
  double rank_prior_weight = 0.6;
  BlendMode blend_mode = BlendMode::kScoreBlend;
  /// Optional per-result additive score boost (backend order, one entry
  /// per row) from the serve-time session model; null for the five
  /// non-session strategies. Not owned; must outlive the RankResults
  /// call. A non-null boost re-ranks even an untrained model — the
  /// session signal exists before the first training sweep.
  const std::vector<double>* session_boost = nullptr;
};

/// Masks the feature blocks a strategy must not see, in place on one
/// kFeatureCount-wide row. Applied both to training pairs and serve-time
/// rows so train and serve agree.
///  kBaseline     -> everything masked (model unused anyway)
///  kContentOnly  -> location block masked
///  kLocationOnly -> content block masked
///  kCombined     -> GPS feature masked
///  kCombinedGps  -> nothing masked
///  kSession      -> GPS feature masked (same blocks as kCombined)
void MaskForStrategy(double* x, Strategy strategy);
void MaskForStrategy(std::vector<double>& x, Strategy strategy);

/// Applies MaskForStrategy to every row.
void MaskBlockForStrategy(FeatureBlock& features, Strategy strategy);

/// The learned (blended) part of the score for one masked row.
double BlendedScore(const RankSvm& model, const double* x,
                    const RankerOptions& options);

/// Full serve-time score of the result at backend rank `backend_rank`.
double ServeScore(const RankSvm& model, const double* x, int backend_rank,
                  const RankerOptions& options);

/// Returns the result order (a permutation of [0, n)) for a page with the
/// given masked feature block (row i = backend rank i): descending serve
/// score, backend order as tie-break. kBaseline, or an untrained model,
/// returns the identity.
std::vector<int> RankResults(const RankSvm& model,
                             const FeatureBlock& features, Strategy strategy,
                             const RankerOptions& options);

}  // namespace pws::ranking

#endif  // PWS_RANKING_RANKER_H_
