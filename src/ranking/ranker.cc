#include "ranking/ranker.h"

#include <algorithm>
#include <numeric>

#include "obs/trace.h"
#include "util/check.h"
#include "util/math_util.h"

namespace pws::ranking {

const char* StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kBaseline:
      return "baseline";
    case Strategy::kContentOnly:
      return "content-only";
    case Strategy::kLocationOnly:
      return "location-only";
    case Strategy::kCombined:
      return "combined";
    case Strategy::kCombinedGps:
      return "combined+gps";
    case Strategy::kSession:
      return "session";
  }
  return "unknown";
}

bool StrategyFromString(const std::string& name, Strategy* out) {
  for (const Strategy s :
       {Strategy::kBaseline, Strategy::kContentOnly, Strategy::kLocationOnly,
        Strategy::kCombined, Strategy::kCombinedGps, Strategy::kSession}) {
    if (name == StrategyToString(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void MaskForStrategy(double* x, Strategy strategy) {
  switch (strategy) {
    case Strategy::kBaseline:
      MaskFeatureRange(x, 0, kFeatureCount);
      break;
    case Strategy::kContentOnly:
      MaskFeatureRange(x, kLocationFeatureBegin, kLocationFeatureEnd);
      break;
    case Strategy::kLocationOnly:
      MaskFeatureRange(x, kContentFeatureBegin, kContentFeatureEnd);
      x[kGpsFeatureIndex] = 0.0;
      break;
    case Strategy::kCombined:
      x[kGpsFeatureIndex] = 0.0;
      break;
    case Strategy::kCombinedGps:
      break;
    case Strategy::kSession:
      // The session boost is a score-level addition, not a feature: the
      // model sees exactly the kCombined blocks.
      x[kGpsFeatureIndex] = 0.0;
      break;
  }
}

void MaskForStrategy(std::vector<double>& x, Strategy strategy) {
  PWS_CHECK_EQ(static_cast<int>(x.size()), kFeatureCount);
  MaskForStrategy(x.data(), strategy);
}

void MaskBlockForStrategy(FeatureBlock& features, Strategy strategy) {
  for (int i = 0; i < features.rows(); ++i) {
    MaskForStrategy(features.row(i), strategy);
  }
}

double BlendedScore(const RankSvm& model, const double* x,
                    const RankerOptions& options) {
  const double alpha = Clamp(options.alpha, 0.0, 1.0);
  const double content =
      model.ScoreRange(x, kContentFeatureBegin, kContentFeatureEnd);
  const double location =
      model.ScoreRange(x, kLocationFeatureBegin, kLocationFeatureEnd);
  return 2.0 * (1.0 - alpha) * content + 2.0 * alpha * location;
}

double ServeScore(const RankSvm& model, const double* x, int backend_rank,
                  const RankerOptions& options) {
  return options.rank_prior_weight / (1.0 + backend_rank) +
         BlendedScore(model, x, options);
}

namespace {

// Positions of each row when sorted descending by `scores` (stable).
std::vector<int> RanksOf(const std::vector<double>& scores) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<int> ranks(scores.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    ranks[order[pos]] = static_cast<int>(pos);
  }
  return ranks;
}

}  // namespace

std::vector<int> RankResults(const RankSvm& model,
                             const FeatureBlock& features, Strategy strategy,
                             const RankerOptions& options) {
  const int n = features.rows();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  // A session boost re-ranks even before the first training sweep; the
  // boost-free paths keep the old early-out (and so stay bit-identical).
  const std::vector<double>* boost = options.session_boost;
  if (boost != nullptr && boost->empty()) boost = nullptr;
  if (strategy == Strategy::kBaseline ||
      (!model.is_trained() && boost == nullptr)) {
    return order;
  }
  // Two spans split the serve-side ranking cost: the RankSVM scoring
  // pass and the re-rank sort.
  std::vector<double> scores(n);
  {
    PWS_SPAN("ranker.score");
    if (options.blend_mode == BlendMode::kScoreBlend) {
      for (int i = 0; i < n; ++i) {
        scores[i] = ServeScore(model, features.row(i), i, options);
      }
    } else {
      // Reciprocal-rank fusion over the two block rankings.
      constexpr double kRrfK = 60.0;
      const double alpha = Clamp(options.alpha, 0.0, 1.0);
      std::vector<double> content_scores(n);
      std::vector<double> location_scores(n);
      for (int i = 0; i < n; ++i) {
        content_scores[i] = model.ScoreRange(
            features.row(i), kContentFeatureBegin, kContentFeatureEnd);
        location_scores[i] = model.ScoreRange(
            features.row(i), kLocationFeatureBegin, kLocationFeatureEnd);
      }
      const std::vector<int> content_ranks = RanksOf(content_scores);
      const std::vector<int> location_ranks = RanksOf(location_scores);
      for (int i = 0; i < n; ++i) {
        scores[i] =
            options.rank_prior_weight / (1.0 + static_cast<double>(i)) +
            kRrfK * (1.0 - alpha) / (kRrfK + content_ranks[i]) +
            kRrfK * alpha / (kRrfK + location_ranks[i]);
      }
    }
    if (boost != nullptr) {
      const int m = std::min(n, static_cast<int>(boost->size()));
      for (int i = 0; i < m; ++i) scores[i] += (*boost)[i];
    }
  }
  PWS_SPAN("ranker.rerank");
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace pws::ranking
