#ifndef PWS_RANKING_RANK_SVM_H_
#define PWS_RANKING_RANK_SVM_H_

#include <span>
#include <vector>

#include "util/random.h"

namespace pws::ranking {

/// One pairwise training example: the row at `preferred` should outscore
/// the row at `other`. The pair does not own its rows — both point at
/// kFeatureCount-wide rows inside a FeatureBlock or FeatureSlab that must
/// outlive the Train call. This keeps the training set two pointers and a
/// weight per pair instead of two heap-allocated vectors, and lets the
/// engine's pair store reference one shared per-query feature row instead
/// of duplicating it into every pair.
struct TrainingPair {
  const double* preferred = nullptr;
  const double* other = nullptr;
  double weight = 1.0;
};

/// RankSVM hyperparameters.
struct RankSvmOptions {
  double learning_rate = 0.05;
  double l2_lambda = 3e-3;
  int epochs = 10;
  /// Pairs are visited in a shuffled order each epoch.
  uint64_t shuffle_seed = 17;
};

/// Linear pairwise ranking SVM, trained by SGD on the hinge loss
///   L = Σ w_p · max(0, 1 − w·(x⁺ − x⁻)) + λ/2 ‖w‖²
/// — the learning component the paper trains on clickthrough preference
/// pairs. Linear scoring keeps serve-time re-ranking at one dot product
/// per result and makes the learned content/location weight blocks
/// separable (needed for the α-blend and the ablations).
class RankSvm {
 public:
  /// Creates a zero-weight model of the given dimensionality.
  explicit RankSvm(int dimension);

  /// Runs SGD over `pairs`. Every pair's rows must be dimension() wide —
  /// the caller (FeatureSlab / FeatureBlock construction) is the
  /// validation point; Train itself no longer walks the pairs checking
  /// sizes. options.epochs < 1 aborts (a zero-epoch "training" would
  /// silently reset the weights while reporting 0.0 loss).
  /// Returns the final epoch's average hinge loss (before regularizer).
  double Train(std::span<const TrainingPair> pairs,
               const RankSvmOptions& options);

  /// Online update: options.epochs in-order SGD passes over `pairs`,
  /// continuing from the *current* weights instead of resetting to the
  /// prior (contrast Train, whose retrain-from-prior contract makes a
  /// full sweep independent of earlier sweeps). This is the per-click
  /// training path: the handful of pairs mined from one impression is
  /// folded into the model at observe time for O(pairs) cost, instead of
  /// waiting for the next O(all pairs · epochs) retrain. No shuffling —
  /// visiting the fresh pairs in mined order keeps the update
  /// deterministic without an RNG cursor in the model. Marks the model
  /// trained. Returns the final pass's average hinge loss.
  double TrainIncremental(std::span<const TrainingPair> pairs,
                          const RankSvmOptions& options);

  /// w · x over the full vector (x must have dimension() entries).
  double Score(const double* x) const;
  double Score(const std::vector<double>& x) const;

  /// w · x restricted to indices [begin, end) — block scores for the
  /// content/location blend.
  double ScoreRange(const double* x, int begin, int end) const;
  double ScoreRange(const std::vector<double>& x, int begin, int end) const;

  int dimension() const { return static_cast<int>(weights_.size()); }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& prior() const { return prior_; }
  void set_weights(std::vector<double> weights);

  /// Installs a prior weight vector: weights are initialized to it and L2
  /// regularization pulls *toward* it rather than toward zero. Used to
  /// encode domain knowledge (e.g. "matching the query's named city is
  /// good") that training refines instead of relearning from scratch.
  /// Marks the model trained so the prior takes effect immediately.
  void SetPrior(std::vector<double> prior);

  /// True until the first Train call (engines fall back to the backend
  /// order for untrained models).
  bool is_trained() const { return trained_; }

 private:
  std::vector<double> weights_;
  std::vector<double> prior_;
  bool trained_ = false;
};

}  // namespace pws::ranking

#endif  // PWS_RANKING_RANK_SVM_H_
