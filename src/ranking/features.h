#ifndef PWS_RANKING_FEATURES_H_
#define PWS_RANKING_FEATURES_H_

#include <optional>
#include <vector>

#include "backend/search_backend.h"
#include "concepts/location_concepts.h"
#include "geo/geo_point.h"
#include "geo/location_ontology.h"
#include "profile/user_profile.h"

namespace pws::ranking {

/// Fixed feature layout: a content block and a location block. Backend
/// evidence (BM25 score / original rank) is deliberately NOT a learned
/// feature: skip-above preference pairs always prefer a lower-ranked
/// result over a higher-ranked one, so any feature monotone in backend
/// rank would be pushed strongly negative and the model would learn to
/// invert the backend. Instead the backend order enters the serve-time
/// score as a fixed prior (see RankerOptions::rank_prior_weight); the
/// learned score is a *correction* on top of it.
///
/// index  meaning
///  0  sum of profile weights over the result's content concepts,
///     normalized by the profile's current max weight (squashed)
///  1  fraction of the result's concepts with positive profile weight
///  2  query-location match: best ontology similarity between the
///     result's locations and locations named in the query text
///  3  profile location affinity (similarity-weighted, normalized)
///  4  sum of direct profile weights over the result's locations
///     (normalized, squashed)
///  5  page-dominant-location weight: how much of the page mentions the
///     result's locations
///  6  has-location indicator
///  7  GPS proximity: distance decay from the user's position to the
///     result's nearest location
///
/// Features 3..7 are scaled by the page's LOCATION GATE — a smoothstep of
/// the fraction of results that mention any place. Pages of non-geo
/// verticals carry locations only incidentally; clicks there say nothing
/// about location preference, and leaving the features live would let
/// skip-above pairs from such pages teach anti-location weights that
/// then demote near-home results exactly where location matters
/// (query-dependent personalization, the paper's central argument).
inline constexpr int kContentFeatureBegin = 0;
inline constexpr int kContentFeatureEnd = 2;
inline constexpr int kLocationFeatureBegin = 2;
inline constexpr int kLocationFeatureEnd = 8;
inline constexpr int kQueryLocationMatchIndex = 2;
inline constexpr int kProfileLocationAffinityIndex = 3;
inline constexpr int kGpsFeatureIndex = 7;
inline constexpr int kFeatureCount = 8;

/// Everything the extractor needs besides the page itself. Pointers are
/// borrowed; null profile / null impression disable the respective block
/// (features stay 0).
struct FeatureContext {
  const geo::LocationOntology* ontology = nullptr;  // Required.
  const profile::UserProfile* user_profile = nullptr;
  /// Content concepts present in each result's title+snippet, as interned
  /// id slices of the impression's flat pool (profile::ImpressionConcepts)
  /// — the extractor reads only content_ids(i).
  const profile::ImpressionConcepts* impression = nullptr;
  /// Location concepts of the page (per result + aggregated).
  const concepts::QueryLocationConcepts* query_locations = nullptr;
  /// Locations named in the query text itself.
  std::vector<geo::LocationId> query_mentioned_locations;
  /// The user's physical position (mobile scenario), if known.
  std::optional<geo::GeoPoint> gps_position;
  /// Distance scale for the GPS proximity feature, in km.
  double gps_decay_scale_km = 150.0;
  /// Precomputed profile normalizers. When set, they MUST equal
  /// max(1e-9, user_profile->MaxContentWeight() / MaxLocationWeight());
  /// TrainUser sets them once per retrain so the per-page profile scan
  /// is hoisted out of the per-query feature refresh.
  std::optional<double> content_norm;
  std::optional<double> location_norm;
};

/// One feature row per result, aligned with backend rank order, stored as
/// one flat row-major rows() x kFeatureCount double array. Replaces the
/// old vector<vector<double>> FeatureMatrix: one allocation per page
/// instead of rows+1, rows contiguous in memory for the scoring and SGD
/// loops, and row pointers are directly usable as TrainingPair sides.
class FeatureBlock {
 public:
  FeatureBlock() = default;
  explicit FeatureBlock(int rows) { Reset(rows); }

  /// Resizes to `rows` zero-filled rows (reuses capacity).
  void Reset(int rows) {
    rows_ = rows;
    data_.assign(static_cast<size_t>(rows) * kFeatureCount, 0.0);
  }

  int rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  double* row(int i) {
    return data_.data() + static_cast<size_t>(i) * kFeatureCount;
  }
  const double* row(int i) const {
    return data_.data() + static_cast<size_t>(i) * kFeatureCount;
  }

  const std::vector<double>& data() const { return data_; }

  /// Row i as a vector copy — test/inspection convenience, not a hot path.
  std::vector<double> RowVector(int i) const {
    return std::vector<double>(row(i), row(i) + kFeatureCount);
  }

  friend bool operator==(const FeatureBlock& a, const FeatureBlock& b) {
    return a.rows_ == b.rows_ && a.data_ == b.data_;
  }

 private:
  int rows_ = 0;
  std::vector<double> data_;
};

/// Fraction of results carrying at least one location concept.
double PageLocationDensity(const concepts::QueryLocationConcepts& locations);

/// Smoothstep gate on location density: 0 below `lo`, 1 above `hi`.
double LocationGate(double density, double lo = 0.25, double hi = 0.55);

/// Computes the kFeatureCount-dimensional row for every result of a
/// page. Pure function of (page, context); deterministic.
FeatureBlock ExtractFeatures(const backend::ResultPage& page,
                             const FeatureContext& context);

/// In-place variant reusing `out`'s storage across pages.
void ExtractFeaturesInto(const backend::ResultPage& page,
                         const FeatureContext& context, FeatureBlock& out);

/// Zeroes x[begin, end) of one kFeatureCount-wide row — used to ablate
/// feature blocks.
void MaskFeatureRange(double* x, int begin, int end);

/// Vector overload (tests build rows as vectors).
void MaskFeatureRange(std::vector<double>& x, int begin, int end);

}  // namespace pws::ranking

#endif  // PWS_RANKING_FEATURES_H_
