#ifndef PWS_RANKING_FEATURES_H_
#define PWS_RANKING_FEATURES_H_

#include <optional>
#include <string>
#include <vector>

#include "backend/search_backend.h"
#include "concepts/location_concepts.h"
#include "geo/geo_point.h"
#include "geo/location_ontology.h"
#include "profile/user_profile.h"

namespace pws::ranking {

/// Fixed feature layout: a content block and a location block. Backend
/// evidence (BM25 score / original rank) is deliberately NOT a learned
/// feature: skip-above preference pairs always prefer a lower-ranked
/// result over a higher-ranked one, so any feature monotone in backend
/// rank would be pushed strongly negative and the model would learn to
/// invert the backend. Instead the backend order enters the serve-time
/// score as a fixed prior (see RankerOptions::rank_prior_weight); the
/// learned score is a *correction* on top of it.
///
/// index  meaning
///  0  sum of profile weights over the result's content concepts,
///     normalized by the profile's current max weight (squashed)
///  1  fraction of the result's concepts with positive profile weight
///  2  query-location match: best ontology similarity between the
///     result's locations and locations named in the query text
///  3  profile location affinity (similarity-weighted, normalized)
///  4  sum of direct profile weights over the result's locations
///     (normalized, squashed)
///  5  page-dominant-location weight: how much of the page mentions the
///     result's locations
///  6  has-location indicator
///  7  GPS proximity: distance decay from the user's position to the
///     result's nearest location
///
/// Features 3..7 are scaled by the page's LOCATION GATE — a smoothstep of
/// the fraction of results that mention any place. Pages of non-geo
/// verticals carry locations only incidentally; clicks there say nothing
/// about location preference, and leaving the features live would let
/// skip-above pairs from such pages teach anti-location weights that
/// then demote near-home results exactly where location matters
/// (query-dependent personalization, the paper's central argument).
inline constexpr int kContentFeatureBegin = 0;
inline constexpr int kContentFeatureEnd = 2;
inline constexpr int kLocationFeatureBegin = 2;
inline constexpr int kLocationFeatureEnd = 8;
inline constexpr int kQueryLocationMatchIndex = 2;
inline constexpr int kProfileLocationAffinityIndex = 3;
inline constexpr int kGpsFeatureIndex = 7;
inline constexpr int kFeatureCount = 8;

/// Everything the extractor needs besides the page itself. Pointers are
/// borrowed; null profile / null concepts disable the respective block
/// (features stay 0).
struct FeatureContext {
  const geo::LocationOntology* ontology = nullptr;  // Required.
  const profile::UserProfile* user_profile = nullptr;
  /// Content concepts present in each result's title+snippet.
  const std::vector<std::vector<std::string>>* content_terms_per_result =
      nullptr;
  /// Location concepts of the page (per result + aggregated).
  const concepts::QueryLocationConcepts* query_locations = nullptr;
  /// Locations named in the query text itself.
  std::vector<geo::LocationId> query_mentioned_locations;
  /// The user's physical position (mobile scenario), if known.
  std::optional<geo::GeoPoint> gps_position;
  /// Distance scale for the GPS proximity feature, in km.
  double gps_decay_scale_km = 150.0;
};

/// One feature vector per result, aligned with backend rank order.
using FeatureMatrix = std::vector<std::vector<double>>;

/// Fraction of results carrying at least one location concept.
double PageLocationDensity(const concepts::QueryLocationConcepts& locations);

/// Smoothstep gate on location density: 0 below `lo`, 1 above `hi`.
double LocationGate(double density, double lo = 0.25, double hi = 0.55);

/// Computes the kFeatureCount-dimensional vector for every result of a
/// page. Pure function of (page, context); deterministic.
FeatureMatrix ExtractFeatures(const backend::ResultPage& page,
                              const FeatureContext& context);

/// Zeroes `x[begin, end)` — used to ablate feature blocks.
void MaskFeatureRange(std::vector<double>& x, int begin, int end);

}  // namespace pws::ranking

#endif  // PWS_RANKING_FEATURES_H_
