#ifndef PWS_SERVE_SOCKET_IO_H_
#define PWS_SERVE_SOCKET_IO_H_

#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pws::serve {

/// Opens a loopback TCP listener on `port` (0 = kernel-assigned
/// ephemeral port) and returns the listening fd. SO_REUSEADDR is set so
/// restarts do not trip over TIME_WAIT sockets.
StatusOr<int> ListenOnLoopback(int port, int backlog = 128);

/// The local port a bound socket listens on — how a caller that asked
/// for port 0 learns what it got.
StatusOr<int> LocalPort(int fd);

/// Connects to 127.0.0.1:`port` and returns the connected fd.
StatusOr<int> ConnectToLoopback(int port);

/// close(2), ignoring errors (used on teardown paths).
void CloseFd(int fd);

/// Buffered newline-framed reader/writer over one connected socket —
/// the framing every request and reply in serve/protocol.h travels in.
/// Reads are single-threaded (one reader per connection); writes are
/// serialized by an internal mutex so pool workers finishing out of
/// order never interleave bytes of two replies.
class LineChannel {
 public:
  /// Takes ownership of `fd`; the destructor closes it.
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Reads the next '\n'-terminated line (terminator and any trailing
  /// '\r' stripped). Returns false on EOF or a read error; a final
  /// unterminated fragment before EOF is discarded — a line that never
  /// ended was never a complete request.
  bool ReadLine(std::string* line);

  /// Writes `line` plus '\n', looping until every byte is accepted.
  Status WriteLine(std::string_view line);

  /// shutdown(SHUT_RD): wakes a blocked ReadLine with EOF while leaving
  /// the write side open — the drain path: no new requests come in, but
  /// replies to everything already queued still go out.
  void ShutdownRead();

  int fd() const { return fd_; }

 private:
  int fd_;
  std::mutex write_mutex_;
  std::string read_buffer_;
};

}  // namespace pws::serve

#endif  // PWS_SERVE_SOCKET_IO_H_
