#ifndef PWS_SERVE_PROTOCOL_H_
#define PWS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "click/click_log.h"
#include "core/pws_engine.h"
#include "corpus/document.h"

namespace pws::serve {

/// The wire protocol is one line per request and one line per reply,
/// tab-separated fields, matching the repo's persisted-text idiom (and
/// trivially exercisable with netcat):
///
///   serve\t<user>\t<limit>\t<query...>      -> ok\tserve\t<alpha>\t<docs>
///   click\t<user>\t<position>\t<query...>   -> ok\tclick\t<pair count>
///   train\t<user>                           -> ok\ttrain\t<hinge loss>
///   trainall                                -> ok\ttrainall
///   save                                    -> ok\tsave
///   metrics                                 -> ok\tmetrics\t<escaped json>
///   trace                                   -> ok\ttrace\t<escaped json>
///   queries                                 -> ok\tqueries\t<n>\t<escaped>
///   ping                                    -> ok\tping
///   shutdown                                -> ok\tshutdown
///
/// The query (requests) and the payload (replies) are always the LAST
/// field and run to the end of the line, so embedded tabs survive;
/// multi-line payloads (metrics JSON, the query pool) are flattened with
/// EscapeLineBreaks. Errors are `err\t<code>\t<message>` with codes
/// `bad_request`, `overloaded`, `unavailable`, and `internal`.
///
/// Keep one request in flight per connection: requests from one
/// connection may execute on different workers, so replies to pipelined
/// requests can arrive out of submission order (and carry no request
/// tag to rematch them). Clients wanting concurrency open more
/// connections — that is what the load generator does.
enum class RequestType {
  kServe,
  kClick,
  kTrain,
  kTrainAll,
  kSave,
  kMetrics,
  kTrace,
  kQueries,
  kPing,
  kShutdown,
  kInvalid,
};

/// Wire verb for a request type ("serve", "click", ...; "invalid" for
/// kInvalid). Returns a static string, safe to hold indefinitely —
/// trace records key on it.
const char* RequestTypeName(RequestType type);

/// One parsed request line.
struct Request {
  RequestType type = RequestType::kInvalid;
  int64_t user = 0;
  /// `click`: 1-based shown position to click.
  int64_t position = 0;
  /// `serve`: max doc ids to return (0 = the whole page).
  int64_t limit = 0;
  std::string query;
};

/// Formats a request as one wire line (no trailing newline).
std::string FormatRequest(const Request& request);

/// Parses one wire line. A malformed line yields type kInvalid.
Request ParseRequest(std::string_view line);

/// `ok\t<verb>` plus any extra fields.
std::string FormatOkReply(std::string_view verb,
                          const std::vector<std::string>& fields = {});
/// `err\t<code>\t<message>` (message line-break-escaped).
std::string FormatErrReply(std::string_view code, std::string_view message);

/// One parsed reply line.
struct Reply {
  bool ok = false;
  /// The verb echoed on success, the error code on failure.
  std::string verb_or_code;
  std::vector<std::string> fields;
};

/// Parses a reply line; a line with no ok/err prefix parses as an
/// internal error so clients fail loud, not silent.
Reply ParseReply(std::string_view line);

/// Doc-id list codec for serve replies: comma-joined decimal ids.
std::string EncodeDocIds(const std::vector<corpus::DocId>& docs);
bool DecodeDocIds(std::string_view text, std::vector<corpus::DocId>* out);

/// The ClickRecord a satisfied click at `position` (1-based shown rank)
/// on `page` produces — dwell long enough to grade satisfied, last click
/// of its session. One definition shared by the server's stateless
/// `click` handler, the demo CLI path it mirrors, and the tests that
/// compare server rankings against direct engine calls.
click::ClickRecord BuildSatisfiedClickRecord(click::UserId user,
                                             const core::PersonalizedPage& page,
                                             int position);

}  // namespace pws::serve

#endif  // PWS_SERVE_PROTOCOL_H_
