#include "serve/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pws::serve {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<int> ListenOnLoopback(int port, int backlog) {
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("port out of range: " + std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError(Errno("socket"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = InternalError(Errno("bind"));
    CloseFd(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = InternalError(Errno("listen"));
    CloseFd(fd);
    return status;
  }
  return fd;
}

StatusOr<int> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return InternalError(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

StatusOr<int> ConnectToLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = InternalError(Errno("connect"));
    CloseFd(fd);
    return status;
  }
  // Requests and replies are one short line each; latency matters more
  // than segment coalescing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

LineChannel::~LineChannel() { CloseFd(fd_); }

bool LineChannel::ReadLine(std::string* line) {
  for (;;) {
    size_t newline = read_buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(read_buffer_, 0, newline);
      read_buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[4096];
    ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      read_buffer_.append(chunk, static_cast<size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // EOF or error; any unterminated tail is dropped.
  }
}

Status LineChannel::WriteLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  std::lock_guard<std::mutex> lock(write_mutex_);
  size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here, not SIGPIPE
    // killing the whole server.
    ssize_t got =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (got < 0) {
      if (errno == EINTR) continue;
      return InternalError(Errno("send"));
    }
    sent += static_cast<size_t>(got);
  }
  return OkStatus();
}

void LineChannel::ShutdownRead() { ::shutdown(fd_, SHUT_RD); }

}  // namespace pws::serve
