#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <exception>
#include <iterator>
#include <utility>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace pws::serve {
namespace {

/// Holds every user-lock shard exclusively — the whole-engine verbs
/// (trainall, save) exclude all serves and mutations at once. Shards are
/// taken in index order, the same order everywhere, so two whole-engine
/// verbs cannot deadlock each other.
class AllShardsLock {
 public:
  explicit AllShardsLock(
      const std::vector<std::unique_ptr<std::shared_mutex>>& shards) {
    locks_.reserve(shards.size());
    for (const auto& shard : shards) locks_.emplace_back(*shard);
  }

 private:
  std::vector<std::unique_lock<std::shared_mutex>> locks_;
};

}  // namespace

PwsServer::PwsServer(core::PwsEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  const int lock_shards = engine_->store_shard_count();
  user_locks_.reserve(lock_shards);
  for (int i = 0; i < lock_shards; ++i) {
    user_locks_.push_back(std::make_unique<std::shared_mutex>());
  }
  auto& registry = obs::MetricsRegistry::Global();
  for (size_t i = 0; i < verb_metrics_.size(); ++i) {
    const std::string name =
        std::string("serve.request.") +
        RequestTypeName(static_cast<RequestType>(i)) + ".us";
    verb_metrics_[i].total = registry.GetHistogram(name);
    verb_metrics_[i].windowed = registry.GetWindowedHistogram(name);
  }
}

PwsServer::~PwsServer() { Stop(); }

std::shared_mutex& PwsServer::ShardOf(int64_t user) {
  // Delegate to the store's mapping so lock shards and store shards
  // cover exactly the same users (see the class comment).
  return *user_locks_[engine_->StoreShardOf(
      static_cast<click::UserId>(user))];
}

Status PwsServer::Start() {
  StatusOr<int> listen_fd = ListenOnLoopback(options_.port);
  PWS_RETURN_IF_ERROR(listen_fd.status());
  listen_fd_ = *listen_fd;
  StatusOr<int> port = LocalPort(listen_fd_);
  if (!port.ok()) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  start_time_ = std::chrono::steady_clock::now();
  {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("serve.start_unix_s")
        ->Set(std::chrono::duration_cast<std::chrono::seconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count());
    registry.GetGauge("serve.uptime_s")->Set(0);
    registry.GetGauge("serve.queue_capacity")->Set(options_.queue_capacity);
  }
  if (options_.trace_sample_every > 0) {
    obs::TraceCollector::Global().Enable(
        static_cast<size_t>(std::max(1, options_.trace_capacity)));
    enabled_trace_ring_ = true;
  }
  if (options_.slow_request_us > 0) {
    obs::TraceCollector::GlobalExemplars().Enable(
        static_cast<size_t>(std::max(1, options_.exemplar_capacity)));
    enabled_exemplar_ring_ = true;
  }
  {
    obs::SloTracker::Config slo;
    slo.target_us = options_.slo_target_us;
    slo.goal = options_.slo_goal;
    obs::SloTracker::Global().Configure(slo);
  }
  workers_ = std::make_unique<ThreadPool>(
      options_.num_workers >= 1 ? options_.num_workers : 1);
  accept_thread_ = std::thread(&PwsServer::AcceptLoop, this);
  if (!options_.state_path.empty() && options_.snapshot_every_s > 0) {
    snapshot_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      const auto period = std::chrono::duration<double>(
          options_.snapshot_every_s);
      while (!stop_cv_.wait_for(lock, period,
                                [this] { return stopping_.load(); })) {
        lock.unlock();
        {
          AllShardsLock all(user_locks_);
          if (const Status status = engine_->SaveState(options_.state_path);
              !status.ok()) {
            PWS_LOG(kWarning) << "periodic snapshot failed: " << status;
          }
        }
        lock.lock();
      }
    });
  }
  PWS_LOG(kInfo) << "pws server listening on 127.0.0.1:" << port_ << " with "
                << workers_->size() << " workers (queue capacity "
                << options_.queue_capacity << ")";
  return OkStatus();
}

void PwsServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      if (errno == EINTR) continue;
      return;  // Listener gone; Stop is tearing us down.
    }
    if (stopping_.load()) {
      CloseFd(fd);
      return;
    }
    auto connection = std::make_unique<Connection>(fd);
    Connection* raw = connection.get();
    raw->reader = std::thread(&PwsServer::ReaderLoop, this, raw);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void PwsServer::ReaderLoop(Connection* connection) {
  auto& registry = obs::MetricsRegistry::Global();
  auto* requests = registry.GetCounter("serve.requests");
  auto* shed = registry.GetCounter("serve.shed");
  auto* rejected = registry.GetCounter("serve.rejected");
  auto* bad = registry.GetCounter("serve.bad_requests");
  auto* depth = registry.GetGauge("serve.queue_depth");

  std::string line;
  while (connection->channel.ReadLine(&line)) {
    RequestContext context;
    context.arrival = std::chrono::steady_clock::now();
    context.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    requests->Increment();
    Request request;
    {
      PWS_SPAN("serve.parse");
      request = ParseRequest(line);
    }
    context.parsed = std::chrono::steady_clock::now();
    if (request.type == RequestType::kInvalid) {
      bad->Increment();
      (void)connection->channel.WriteLine(
          FormatErrReply("bad_request", "unparseable request: " + line));
      continue;
    }
    // Admission gate: admitted-but-unfinished requests are capped, and
    // overflow is shed *here*, in one round trip, rather than queued
    // behind an unbounded backlog.
    const int admitted = in_flight_.fetch_add(1) + 1;
    if (admitted > options_.queue_capacity) {
      in_flight_.fetch_sub(1);
      shed->Increment();
      obs::SloTracker::Global().RecordShed(obs::SteadyNowUs());
      (void)connection->channel.WriteLine(
          FormatErrReply("overloaded", "request queue full"));
      continue;
    }
    depth->Set(admitted);
    context.admitted = std::chrono::steady_clock::now();
    std::future<void> enqueue = workers_->Submit(
        [this, connection, request = std::move(request), context]() {
          HandleRequest(connection, request, context);
        });
    // A Submit racing pool shutdown resolves immediately with the
    // rejection exception (HandleRequest itself never throws); shed the
    // request with a reply instead of aborting or going silent.
    if (enqueue.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      try {
        enqueue.get();
      } catch (const std::exception&) {
        in_flight_.fetch_sub(1);
        rejected->Increment();
        (void)connection->channel.WriteLine(
            FormatErrReply("unavailable", "server is shutting down"));
      }
    }
  }
}

void PwsServer::HandleRequest(Connection* connection, Request request,
                              RequestContext context) {
  auto& registry = obs::MetricsRegistry::Global();
  const auto started = std::chrono::steady_clock::now();
  const double queue_wait_us =
      std::chrono::duration<double, std::micro>(started - context.admitted)
          .count();
  registry
      .GetHistogram("serve.queue_wait.us",
                    obs::Histogram::DefaultLatencyBoundsUs())
      ->Record(queue_wait_us);
  registry.GetWindowedHistogram("serve.queue_wait.us")
      ->Record(queue_wait_us, obs::SteadyNowUs());

  // Open the per-request trace whenever either ring is collecting: a
  // sampled-out request must still open one, or the engine's own
  // PWS_QUERY_TRACE would open a trace of its own and push it into the
  // sampled ring, breaking the 1-in-N contract. Which rings actually
  // get the record is decided after close, from the sample gate and the
  // measured latency. The origin is backdated to arrival so the parse
  // and queue stages (timed on the reader thread) stitch in.
  const bool sampled = enabled_trace_ring_ &&
                       options_.trace_sample_every > 0 &&
                       context.id % options_.trace_sample_every == 0;
  obs::RequestTrace trace;
  if (obs::TraceCollector::Global().enabled() ||
      obs::TraceCollector::GlobalExemplars().enabled()) {
    trace.Open(RequestTypeName(request.type), FormatRequest(request),
               context.id, context.arrival);
    trace.AddStage("serve.parse", context.arrival, context.parsed);
    trace.AddStage("serve.queue_wait", context.admitted, started);
  }

  std::string reply;
  try {
    reply = Dispatch(request);
  } catch (const std::exception& e) {
    reply = FormatErrReply("internal", e.what());
  }
  const bool error = StartsWith(reply, "err\t");
  if (error) {
    registry.GetCounter("serve.errors")->Increment();
  }
  {
    PWS_SPAN("serve.write");
    (void)connection->channel.WriteLine(reply);
  }

  const auto finished = std::chrono::steady_clock::now();
  const int64_t now_us = obs::SteadyNowUs();
  const double admitted_us =
      std::chrono::duration<double, std::micro>(finished - context.admitted)
          .count();
  const double end_to_end_us =
      std::chrono::duration<double, std::micro>(finished - context.arrival)
          .count();
  registry
      .GetHistogram("serve.request.us",
                    obs::Histogram::DefaultLatencyBoundsUs())
      ->Record(admitted_us);
  registry.GetWindowedHistogram("serve.request.us")
      ->Record(admitted_us, now_us);
  VerbMetrics& verb = verb_metrics_[static_cast<size_t>(request.type)];
  verb.total->Record(end_to_end_us);
  verb.windowed->Record(end_to_end_us, now_us);
  obs::SloTracker::Global().RecordRequest(end_to_end_us, error, now_us);

  if (trace.open()) {
    const uint64_t total_us = trace.CloseUs();
    obs::TraceRecord record = trace.Take();
    const bool slow = options_.slow_request_us > 0 &&
                      total_us >= static_cast<uint64_t>(
                                      options_.slow_request_us);
    if (sampled && slow) {
      obs::TraceCollector::Global().Add(record);
      obs::TraceCollector::GlobalExemplars().Add(std::move(record));
    } else if (sampled) {
      obs::TraceCollector::Global().Add(std::move(record));
    } else if (slow) {
      obs::TraceCollector::GlobalExemplars().Add(std::move(record));
    }
  }

  const int remaining = in_flight_.fetch_sub(1) - 1;
  registry.GetGauge("serve.queue_depth")->Set(remaining);
}

std::string PwsServer::Dispatch(const Request& request) {
  switch (request.type) {
    case RequestType::kServe: {
      const auto user = static_cast<click::UserId>(request.user);
      engine_->RegisterUser(user);
      core::PersonalizedPage page;
      {
        std::shared_lock<std::shared_mutex> lock(ShardOf(request.user),
                                                 std::defer_lock);
        {
          PWS_SPAN("serve.lock_wait");
          lock.lock();
        }
        PWS_SPAN("serve.engine");
        page = engine_->Serve(user, request.query);
      }
      std::vector<corpus::DocId> docs;
      const auto& results = page.backend_page().results;
      const size_t limit =
          request.limit > 0 &&
                  request.limit < static_cast<int64_t>(page.order.size())
              ? static_cast<size_t>(request.limit)
              : page.order.size();
      docs.reserve(limit);
      for (size_t j = 0; j < limit; ++j) {
        docs.push_back(results[page.order[j]].doc);
      }
      return FormatOkReply(
          "serve", {FormatDouble(page.alpha_used, 6), EncodeDocIds(docs)});
    }
    case RequestType::kClick: {
      const auto user = static_cast<click::UserId>(request.user);
      engine_->RegisterUser(user);
      std::unique_lock<std::shared_mutex> lock(ShardOf(request.user),
                                               std::defer_lock);
      {
        PWS_SPAN("serve.lock_wait");
        lock.lock();
      }
      PWS_SPAN("serve.engine");
      // Stateless click: re-serve the query (deterministic and cached),
      // then observe a satisfied click at the requested shown position —
      // the client never has to hold page state between calls.
      const core::PersonalizedPage page = engine_->Serve(user, request.query);
      if (request.position > static_cast<int64_t>(page.order.size())) {
        return FormatErrReply(
            "bad_request",
            "click position " + std::to_string(request.position) +
                " beyond page of " + std::to_string(page.order.size()));
      }
      const click::ClickRecord record = BuildSatisfiedClickRecord(
          user, page, static_cast<int>(request.position));
      engine_->Observe(user, page, record);
      return FormatOkReply(
          "click", {std::to_string(engine_->training_pair_count(user))});
    }
    case RequestType::kTrain: {
      const auto user = static_cast<click::UserId>(request.user);
      engine_->RegisterUser(user);
      std::unique_lock<std::shared_mutex> lock(ShardOf(request.user),
                                               std::defer_lock);
      {
        PWS_SPAN("serve.lock_wait");
        lock.lock();
      }
      PWS_SPAN("serve.engine");
      const double loss = engine_->TrainUser(user);
      return FormatOkReply("train", {FormatDouble(loss, 6)});
    }
    case RequestType::kTrainAll: {
      std::unique_ptr<AllShardsLock> all;
      {
        PWS_SPAN("serve.lock_wait");
        all = std::make_unique<AllShardsLock>(user_locks_);
      }
      PWS_SPAN("serve.engine");
      engine_->TrainAllUsers();
      return FormatOkReply("trainall");
    }
    case RequestType::kSave: {
      if (options_.state_path.empty()) {
        return FormatErrReply("bad_request",
                              "server started without --state; nowhere to "
                              "save");
      }
      std::unique_ptr<AllShardsLock> all;
      {
        PWS_SPAN("serve.lock_wait");
        all = std::make_unique<AllShardsLock>(user_locks_);
      }
      PWS_SPAN("serve.engine");
      if (const Status status = engine_->SaveState(options_.state_path);
          !status.ok()) {
        return FormatErrReply("internal", status.ToString());
      }
      return FormatOkReply("save");
    }
    case RequestType::kMetrics: {
      obs::MetricsRegistry::Global()
          .GetGauge("serve.uptime_s")
          ->Set(std::chrono::duration_cast<std::chrono::seconds>(
                    std::chrono::steady_clock::now() - start_time_)
                    .count());
      return FormatOkReply(
          "metrics", {EscapeLineBreaks(obs::GlobalMetricsJson())});
    }
    case RequestType::kTrace: {
      // Sampled traces first, then the slow-request exemplars; trace
      // viewers lay events out by timestamp and track, so record order
      // in the export does not matter.
      std::vector<obs::TraceRecord> records =
          obs::TraceCollector::Global().Dump();
      std::vector<obs::TraceRecord> exemplars =
          obs::TraceCollector::GlobalExemplars().Dump();
      records.insert(records.end(),
                     std::make_move_iterator(exemplars.begin()),
                     std::make_move_iterator(exemplars.end()));
      return FormatOkReply(
          "trace", {EscapeLineBreaks(obs::ChromeTraceJson(records))});
    }
    case RequestType::kQueries:
      return FormatOkReply(
          "queries", {std::to_string(options_.query_pool.size()),
                      EscapeLineBreaks(StrJoin(options_.query_pool, "\n"))});
    case RequestType::kPing:
      return FormatOkReply("ping");
    case RequestType::kShutdown:
      RequestShutdown();
      return FormatOkReply("shutdown");
    case RequestType::kInvalid:
      break;
  }
  return FormatErrReply("bad_request", "unknown request");
}

void PwsServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool PwsServer::WaitShutdownRequested(int poll_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                        [this] { return shutdown_requested_; });
  return shutdown_requested_;
}

void PwsServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stopped_ = true;
    stopping_.store(true);
  }
  stop_cv_.notify_all();

  // 1. No new connections: wake the blocked accept with shutdown(2),
  //    then join the accept thread before closing the fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;

  // 2. No new requests: EOF every connection's read side. In-flight
  //    requests keep the write side for their replies.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->channel.ShutdownRead();
  }
  for (auto& connection : connections_) {
    if (connection->reader.joinable()) connection->reader.join();
  }

  // 3. Drain: the pool destructor runs every queued request to
  //    completion, so every admitted request gets its reply.
  workers_.reset();

  // 4. Final snapshot (the snapshot thread is already parked).
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  if (!options_.state_path.empty()) {
    if (const Status status = engine_->SaveState(options_.state_path);
        !status.ok()) {
      PWS_LOG(kWarning) << "final snapshot failed: " << status;
    }
  }

  // 5. Trace collection stops with the server (rings keep their
  //    contents so post-Stop readers — tests, a final export — still
  //    see the records).
  if (enabled_trace_ring_) obs::TraceCollector::Global().Disable();
  if (enabled_exemplar_ring_) obs::TraceCollector::GlobalExemplars().Disable();

  // 6. Now the sockets can go.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connections_.clear();
  PWS_LOG(kInfo) << "pws server drained and stopped";
}

}  // namespace pws::serve
