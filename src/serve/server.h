#ifndef PWS_SERVE_SERVER_H_
#define PWS_SERVE_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pws_engine.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/socket_io.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pws::serve {

struct ServerOptions {
  /// TCP port to listen on (loopback only). 0 = ephemeral; read the
  /// assigned port back with PwsServer::port().
  int port = 0;
  /// Worker threads executing requests.
  int num_workers = 4;
  /// Admission cap: requests admitted but not yet completed. Beyond it,
  /// new requests are shed immediately with `err overloaded` instead of
  /// queueing without bound — the client learns in one round trip that
  /// the server is saturated, and latency for admitted work stays
  /// bounded by the queue, not by the arrival rate.
  int queue_capacity = 256;
  /// Snapshot path for the `save` command and periodic snapshots; empty
  /// disables both (the WAL, enabled by the caller on the engine before
  /// Start, still covers every mutation).
  std::string state_path;
  /// Seconds between automatic SaveState calls (0 = only on demand and
  /// at shutdown). Requires state_path.
  double snapshot_every_s = 0;
  /// Query texts returned by the `queries` command — the pool a load
  /// generator samples from, served from the engine's world so clients
  /// never rebuild it.
  std::vector<std::string> query_pool;

  /// Request-trace sampling: every Nth request id gets its full
  /// per-stage trace captured into the global sampled ring (the `trace`
  /// verb serves it as Chrome trace JSON). 0 disables sampling.
  int trace_sample_every = 0;
  /// Sampled-trace ring capacity (records retained, oldest evicted).
  int trace_capacity = 256;
  /// Slow-request exemplar threshold, microseconds: any request whose
  /// end-to-end latency reaches it gets its trace captured into the
  /// exemplar ring regardless of sampling, so tail outliers are always
  /// explained. 0 disables exemplars.
  int64_t slow_request_us = 0;
  /// Exemplar ring capacity.
  int exemplar_capacity = 32;
  /// End-to-end latency SLO target, microseconds, surfaced by the
  /// `metrics` verb as violation counts and burn rate (0 = no latency
  /// SLO; request/error/shed rates are tracked regardless).
  double slo_target_us = 0.0;
  /// Fraction of requests that must meet the target (burn rate 1.0 =
  /// spending error budget exactly as fast as it accrues).
  double slo_goal = 0.99;
};

/// The persistent serving front end: a loopback TCP listener speaking
/// the line protocol of serve/protocol.h, a bounded admission gate, and
/// a ThreadPool of workers dispatching into one shared PwsEngine.
///
/// Concurrency: the engine's contract (Serve concurrent-safe; Observe/
/// TrainUser per-user serialized; TrainAllUsers/SaveState exclusive) is
/// enforced with sharded reader-writer locks keyed by user id — one
/// lock per engine store shard, using the store's own shard mapping, so
/// a lock shard and a store shard cover exactly the same users (an
/// exclusive hold on a user's lock also serializes every user whose
/// state shares the store shard's mutex and LRU). Serves take a shard
/// shared, mutations take it exclusive, and the whole-engine verbs take
/// every shard exclusive. Readers (one thread
/// per connection) only parse and enqueue; all engine work happens on
/// pool workers.
///
/// Shutdown: Stop() closes the listener, shuts down the read side of
/// every connection (in-flight requests keep their write side), joins
/// the readers, drains the worker pool, writes a final snapshot when
/// state_path is set, then closes the connections — a drain, not an
/// abort: every admitted request gets its reply.
class PwsServer {
 public:
  /// `engine` must outlive the server. Call EnableWal/RestoreState on
  /// the engine before Start; the server never reconfigures durability.
  PwsServer(core::PwsEngine* engine, ServerOptions options);
  ~PwsServer();

  PwsServer(const PwsServer&) = delete;
  PwsServer& operator=(const PwsServer&) = delete;

  /// Binds, listens, and starts the accept/worker threads.
  Status Start();

  /// Graceful drain (see class comment). Idempotent.
  void Stop();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Flags that a client asked the server to exit (the `shutdown` verb).
  /// The serving loop in the binary waits on this and then calls Stop —
  /// a worker cannot Stop() the pool it runs on.
  void RequestShutdown();
  /// Blocks until RequestShutdown (returns immediately if already
  /// requested). `poll_ms` bounds each wait so callers can interleave
  /// signal checks; returns true once shutdown was requested.
  bool WaitShutdownRequested(int poll_ms);

 private:
  struct Connection {
    explicit Connection(int fd) : channel(fd) {}
    LineChannel channel;
    std::thread reader;
  };

  /// The request's identity and lifecycle timestamps, assigned on the
  /// reader thread and carried to the worker so the per-request trace
  /// can stitch in the stages that ran before the worker took over
  /// (parse on the reader, the admission-queue wait).
  struct RequestContext {
    uint64_t id = 0;
    std::chrono::steady_clock::time_point arrival;
    std::chrono::steady_clock::time_point parsed;
    std::chrono::steady_clock::time_point admitted;
  };

  /// Cached per-verb latency handles (registry lookup takes a mutex, so
  /// resolve once at construction, record lock-free per request).
  struct VerbMetrics {
    obs::Histogram* total = nullptr;
    obs::WindowedHistogram* windowed = nullptr;
  };

  void AcceptLoop();
  void ReaderLoop(Connection* connection);
  /// Executes one admitted request on a pool worker and writes the
  /// reply.
  void HandleRequest(Connection* connection, Request request,
                     RequestContext context);
  std::string Dispatch(const Request& request);

  std::shared_mutex& ShardOf(int64_t user);

  core::PwsEngine* engine_;
  ServerOptions options_;

  /// Monotonic request ids (0 is reserved for "no request").
  std::atomic<uint64_t> next_request_id_{1};
  std::chrono::steady_clock::time_point start_time_;
  /// Which global collectors Start() enabled (so Stop() only disables
  /// what this server turned on).
  bool enabled_trace_ring_ = false;
  bool enabled_exemplar_ring_ = false;
  std::array<VerbMetrics, static_cast<size_t>(RequestType::kInvalid)>
      verb_metrics_{};

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread snapshot_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Admitted-but-not-finished request count (the admission gate).
  std::atomic<int> in_flight_{0};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::mutex stop_mutex_;
  /// Wakes the periodic-snapshot thread when Stop begins.
  std::condition_variable stop_cv_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  /// One lock per engine store shard (aligned with the store's own
  /// user→shard mapping; sized in the constructor).
  std::vector<std::unique_ptr<std::shared_mutex>> user_locks_;
};

}  // namespace pws::serve

#endif  // PWS_SERVE_SERVER_H_
