#include "serve/protocol.h"

#include <cstdint>
#include <iterator>
#include <utility>

#include "util/string_util.h"

namespace pws::serve {
namespace {

/// Splits off the first `count` tab-separated fields; the remainder of
/// the line (which may itself contain tabs) lands in `rest`. Returns
/// false when fewer than `count` fields precede the end of the line.
bool SplitFields(std::string_view line, int count,
                 std::vector<std::string_view>* fields,
                 std::string_view* rest) {
  fields->clear();
  for (int i = 0; i < count; ++i) {
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) return false;
    fields->push_back(line.substr(0, tab));
    line.remove_prefix(tab + 1);
  }
  *rest = line;
  return true;
}

bool ParseUser(std::string_view text, int64_t* out) {
  return ParseInt64(text, out);
}

}  // namespace

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kServe:
      return "serve";
    case RequestType::kClick:
      return "click";
    case RequestType::kTrain:
      return "train";
    case RequestType::kTrainAll:
      return "trainall";
    case RequestType::kSave:
      return "save";
    case RequestType::kMetrics:
      return "metrics";
    case RequestType::kTrace:
      return "trace";
    case RequestType::kQueries:
      return "queries";
    case RequestType::kPing:
      return "ping";
    case RequestType::kShutdown:
      return "shutdown";
    case RequestType::kInvalid:
      break;
  }
  return "invalid";
}

std::string FormatRequest(const Request& request) {
  switch (request.type) {
    case RequestType::kServe:
      return "serve\t" + std::to_string(request.user) + "\t" +
             std::to_string(request.limit) + "\t" + request.query;
    case RequestType::kClick:
      return "click\t" + std::to_string(request.user) + "\t" +
             std::to_string(request.position) + "\t" + request.query;
    case RequestType::kTrain:
      return "train\t" + std::to_string(request.user);
    case RequestType::kTrainAll:
      return "trainall";
    case RequestType::kSave:
      return "save";
    case RequestType::kMetrics:
      return "metrics";
    case RequestType::kTrace:
      return "trace";
    case RequestType::kQueries:
      return "queries";
    case RequestType::kPing:
      return "ping";
    case RequestType::kShutdown:
      return "shutdown";
    case RequestType::kInvalid:
      break;
  }
  return "";
}

Request ParseRequest(std::string_view line) {
  Request request;
  const size_t first_tab = line.find('\t');
  const std::string_view verb = line.substr(0, first_tab);
  const std::string_view args =
      first_tab == std::string_view::npos ? std::string_view()
                                          : line.substr(first_tab + 1);

  if (verb == "trainall" && first_tab == std::string_view::npos) {
    request.type = RequestType::kTrainAll;
    return request;
  }
  if (verb == "save" && first_tab == std::string_view::npos) {
    request.type = RequestType::kSave;
    return request;
  }
  if (verb == "metrics" && first_tab == std::string_view::npos) {
    request.type = RequestType::kMetrics;
    return request;
  }
  if (verb == "trace" && first_tab == std::string_view::npos) {
    request.type = RequestType::kTrace;
    return request;
  }
  if (verb == "queries" && first_tab == std::string_view::npos) {
    request.type = RequestType::kQueries;
    return request;
  }
  if (verb == "ping" && first_tab == std::string_view::npos) {
    request.type = RequestType::kPing;
    return request;
  }
  if (verb == "shutdown" && first_tab == std::string_view::npos) {
    request.type = RequestType::kShutdown;
    return request;
  }

  std::vector<std::string_view> fields;
  std::string_view rest;
  if (verb == "serve" || verb == "click") {
    if (!SplitFields(args, 2, &fields, &rest) || rest.empty()) return request;
    int64_t number = 0;
    if (!ParseUser(fields[0], &request.user) ||
        !ParseInt64(fields[1], &number)) {
      return request;
    }
    request.query = std::string(rest);
    if (verb == "serve") {
      request.type = RequestType::kServe;
      request.limit = number;
    } else {
      if (number < 1) return request;
      request.type = RequestType::kClick;
      request.position = number;
    }
    return request;
  }
  if (verb == "train") {
    if (args.empty() || args.find('\t') != std::string_view::npos ||
        !ParseUser(args, &request.user)) {
      return request;
    }
    request.type = RequestType::kTrain;
    return request;
  }
  return request;  // kInvalid
}

std::string FormatOkReply(std::string_view verb,
                          const std::vector<std::string>& fields) {
  std::string reply = "ok\t";
  reply.append(verb);
  for (const std::string& field : fields) {
    reply.push_back('\t');
    reply.append(field);
  }
  return reply;
}

std::string FormatErrReply(std::string_view code, std::string_view message) {
  std::string reply = "err\t";
  reply.append(code);
  reply.push_back('\t');
  reply.append(EscapeLineBreaks(message));
  return reply;
}

Reply ParseReply(std::string_view line) {
  // Reply payload fields never contain tabs (doc ids are comma-joined,
  // free-form payloads are single escaped fields), so a plain split is
  // exact.
  Reply reply;
  std::vector<std::string> pieces = StrSplit(line, '\t');
  if (pieces.size() < 2 || (pieces[0] != "ok" && pieces[0] != "err")) {
    reply.verb_or_code = "malformed";
    return reply;
  }
  reply.ok = pieces[0] == "ok";
  reply.verb_or_code = std::move(pieces[1]);
  reply.fields.assign(std::make_move_iterator(pieces.begin() + 2),
                      std::make_move_iterator(pieces.end()));
  return reply;
}

std::string EncodeDocIds(const std::vector<corpus::DocId>& docs) {
  std::string out;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(docs[i]);
  }
  return out;
}

bool DecodeDocIds(std::string_view text, std::vector<corpus::DocId>* out) {
  out->clear();
  if (text.empty()) return true;
  for (const std::string& piece : StrSplit(text, ',')) {
    int64_t value = 0;
    if (!ParseInt64(piece, &value) || value > INT32_MAX) return false;
    out->push_back(static_cast<corpus::DocId>(value));
  }
  return true;
}

click::ClickRecord BuildSatisfiedClickRecord(click::UserId user,
                                             const core::PersonalizedPage& page,
                                             int position) {
  click::ClickRecord record;
  record.user = user;
  record.query_text = page.backend_page().query;
  for (size_t j = 0; j < page.order.size(); ++j) {
    click::Interaction interaction;
    interaction.doc = page.backend_page().results[page.order[j]].doc;
    interaction.rank = static_cast<int>(j);
    if (static_cast<int>(j) == position - 1) {
      interaction.clicked = true;
      interaction.dwell_units = 420.0;
      interaction.last_click_in_session = true;
    }
    record.interactions.push_back(interaction);
  }
  return record;
}

}  // namespace pws::serve
