// E2 — Top-N precision curves (reconstruction of the paper's P@N
// figure): P@1..P@10 for each strategy on the shared world.
//
// Expected shape: personalized strategies dominate the baseline at small
// N (that's where re-ranking concentrates relevant results); curves
// converge as N approaches the page size.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  const ranking::Strategy strategies[] = {
      ranking::Strategy::kBaseline, ranking::Strategy::kContentOnly,
      ranking::Strategy::kLocationOnly, ranking::Strategy::kCombined,
      ranking::Strategy::kCombinedGps};

  std::vector<core::EngineOptions> configs;
  for (ranking::Strategy strategy : strategies) {
    configs.push_back(bench::MakeEngineOptions(strategy));
  }
  WallTimer timer;
  const std::vector<eval::StrategyMetrics> results =
      harness.RunManyAveraged(configs, config.repetitions);

  std::vector<std::string> headers = {"strategy"};
  for (int k = 1; k <= 10; ++k) headers.push_back("P@" + std::to_string(k));
  Table table(std::move(headers));
  for (size_t i = 0; i < configs.size(); ++i) {
    const eval::StrategyMetrics& m = results[i];
    std::vector<double> row(m.precision_at.begin(), m.precision_at.end());
    table.AddNumericRow(ranking::StrategyToString(strategies[i]), row, 3);
  }
  table.Print(std::cout, "E2: top-N precision by strategy");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
