// E3 — Learning curve (reconstruction of the paper's training-data
// figure): quality of the Combined strategy as the fraction of training
// clickthrough grows from 10% to 100%.
//
// Expected shape: monotone improvement saturating toward the full-data
// point; the baseline is flat by construction.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);

  // Each training fraction needs its own SimulationOptions, hence its
  // own harness; the sweep points (plus the baseline reference) run
  // concurrently on the pool while each point stays sequential inside
  // (threads = 1), so outputs match the old sequential loop exactly.
  const std::vector<double> fractions = {0.1, 0.25, 0.5, 0.75, 1.0};
  const int n = static_cast<int>(fractions.size());
  std::vector<std::unique_ptr<eval::SimulationHarness>> harnesses;
  for (double fraction : fractions) {
    eval::SimulationOptions sim = config.sim;
    sim.training_fraction = fraction;
    sim.threads = 1;
    harnesses.push_back(
        std::make_unique<eval::SimulationHarness>(&world, sim));
  }
  eval::SimulationOptions baseline_sim = config.sim;
  baseline_sim.threads = 1;
  eval::SimulationHarness baseline_harness(&world, baseline_sim);

  WallTimer timer;
  std::vector<eval::StrategyMetrics> results(n);
  eval::StrategyMetrics baseline;
  ParallelFor(ResolveThreadCount(config.sim.threads), n + 1, [&](int t) {
    if (t < n) {
      results[t] = harnesses[t]->RunAveraged(
          bench::MakeEngineOptions(ranking::Strategy::kCombined),
          config.repetitions);
    } else {
      baseline = baseline_harness.Run(
          bench::MakeEngineOptions(ranking::Strategy::kBaseline));
    }
  });

  Table table({"train_fraction", "avg_rank", "MRR", "NDCG@10", "CTR@1"});
  for (int t = 0; t < n; ++t) {
    const eval::StrategyMetrics& m = results[t];
    table.AddNumericRow(FormatDouble(fractions[t], 2),
                        {m.avg_rank_relevant, m.mrr, m.ndcg10, m.ctr_at_1},
                        3);
  }
  // Reference row: the untrained baseline.
  table.AddNumericRow("baseline",
                      {baseline.avg_rank_relevant, baseline.mrr,
                       baseline.ndcg10, baseline.ctr_at_1},
                      3);
  table.Print(std::cout,
              "E3: Combined quality vs fraction of training clickthrough");
  std::cout << "[harness] wall-clock " << FormatDouble(timer.ElapsedSeconds(), 2)
            << " s on " << ResolveThreadCount(config.sim.threads)
            << " thread(s)\n";
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
