// E3 — Learning curve (reconstruction of the paper's training-data
// figure): quality of the Combined strategy as the fraction of training
// clickthrough grows from 10% to 100%.
//
// Expected shape: monotone improvement saturating toward the full-data
// point; the baseline is flat by construction.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);

  Table table({"train_fraction", "avg_rank", "MRR", "NDCG@10", "CTR@1"});
  const double fractions[] = {0.1, 0.25, 0.5, 0.75, 1.0};
  for (double fraction : fractions) {
    eval::SimulationOptions sim = config.sim;
    sim.training_fraction = fraction;
    eval::SimulationHarness harness(&world, sim);
    const eval::StrategyMetrics m = harness.RunAveraged(
        bench::MakeEngineOptions(ranking::Strategy::kCombined),
        config.repetitions);
    table.AddNumericRow(FormatDouble(fraction, 2),
                        {m.avg_rank_relevant, m.mrr, m.ndcg10, m.ctr_at_1},
                        3);
  }
  // Reference row: the untrained baseline.
  {
    eval::SimulationHarness harness(&world, config.sim);
    const eval::StrategyMetrics m = harness.Run(
        bench::MakeEngineOptions(ranking::Strategy::kBaseline));
    table.AddNumericRow("baseline",
                        {m.avg_rank_relevant, m.mrr, m.ndcg10, m.ctr_at_1},
                        3);
  }
  table.Print(std::cout,
              "E3: Combined quality vs fraction of training clickthrough");
  return 0;
}
