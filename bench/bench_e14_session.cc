// E14 — In-session personalization and contextual-bandit blend
// adaptation on session-structured traffic: users issue same-day queries
// in topically coherent bursts (--stickiness), the regime where a
// bounded window of recent in-session clicks carries signal the
// long-term profile hasn't absorbed yet.
//
// Compared head-to-head, all on the same paired traffic:
//   fixed a=0.5        Combined at a fixed blend (floor)
//   entropy-adaptive   the per-query fixed rule (the bar to beat)
//   session            kSession: in-session concept boost on top of the
//                      entropy rule
//   bandit             UCB1 bandit over discretized alpha arms learning
//                      the blend online per user
//   session+bandit     both mechanisms together
//
// Online NDCG/MRR (graded during training, where sessions are live) is
// the headline; frozen test-phase metrics are reported alongside. The
// run is deterministic per seed — the golden tests pin its aggregates.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  // Session-structured traffic plus online grading, the whole point of
  // this experiment; both default-off flags in every other driver.
  config.sim.session_stickiness = args.GetDouble("stickiness", 0.85);
  config.sim.measure_online = true;
  const double session_boost = args.GetDouble("session_boost", 0.5);
  ranking::BanditOptions bandit;
  bandit.enabled = true;
  bandit.arms = static_cast<int>(args.GetInt("bandit_arms", bandit.arms));
  bandit.epsilon = args.GetDouble("bandit_epsilon", bandit.epsilon);
  bandit.ucb_c = args.GetDouble("bandit_ucb", bandit.ucb_c);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  std::vector<std::string> labels;
  std::vector<core::EngineOptions> configs;
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.alpha = 0.5;
    labels.push_back("fixed a=0.5");
    configs.push_back(options);
  }
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.entropy_adaptive_alpha = true;
    labels.push_back("entropy-adaptive");
    configs.push_back(options);
  }
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kSession);
    options.entropy_adaptive_alpha = true;
    options.session_boost_weight = session_boost;
    labels.push_back("session");
    configs.push_back(options);
  }
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.bandit = bandit;
    labels.push_back("bandit");
    configs.push_back(options);
  }
  {
    core::EngineOptions options =
        bench::MakeEngineOptions(ranking::Strategy::kSession);
    options.bandit = bandit;
    options.session_boost_weight = session_boost;
    labels.push_back("session+bandit");
    configs.push_back(options);
  }

  WallTimer timer;
  const std::vector<eval::StrategyMetrics> results =
      harness.RunManyAveraged(configs, config.repetitions);

  Table table({"config", "online_NDCG@10", "online_MRR", "NDCG@10", "MRR",
               "avg_rank"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const eval::StrategyMetrics& m = results[i];
    table.AddNumericRow(labels[i],
                        {m.online_ndcg10, m.online_mrr, m.ndcg10, m.mrr,
                         m.avg_rank_relevant},
                        3);
  }
  table.Print(std::cout,
              "E14: session boost + bandit blend vs fixed entropy rule "
              "(stickiness " + FormatDouble(config.sim.session_stickiness, 2) +
              ")");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
