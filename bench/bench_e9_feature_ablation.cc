// E9 — Design-choice ablations on the Combined strategy (the choices
// DESIGN.md §5 calls out): pair-mining strategy, dwell-grade weighting,
// ontology similarity spreading, the query-location-match prior, and the
// backend-order prior.
//
// Expected shape: skip-above > click-vs-all (less position-bias
// contamination); each removed component costs a little; removing the
// rank prior costs the most (the model then overrides the backend
// everywhere, noise included).

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  eval::SimulationHarness harness(&world, config.sim);

  std::vector<std::string> labels;
  std::vector<core::EngineOptions> configs;
  auto add_config = [&](const std::string& label,
                        const core::EngineOptions& options) {
    labels.push_back(label);
    configs.push_back(options);
  };

  add_config("combined (full)",
             bench::MakeEngineOptions(ranking::Strategy::kCombined));
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.pair_mining.strategy = profile::PairMiningStrategy::kClickVsAll;
    add_config("pairs: click-vs-all", options);
  }
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.pair_mining.grade_weighting = false;
    add_config("no dwell-grade weighting", options);
  }
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.profile_update.ontology_spreading = false;
    add_config("no ontology spreading", options);
  }
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.query_location_match_prior = 0.0;
    add_config("no query-location prior", options);
  }
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.rank_prior_weight = 0.0;
    add_config("no backend-order prior", options);
  }
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.profile_update.daily_decay = 1.0;
    add_config("no profile decay", options);
  }
  {
    auto options = bench::MakeEngineOptions(ranking::Strategy::kCombined);
    options.blend_mode = ranking::BlendMode::kRankFusion;
    add_config("rank fusion blend", options);
  }

  WallTimer timer;
  const std::vector<eval::StrategyMetrics> results =
      harness.RunManyAveraged(configs, config.repetitions);

  Table table({"config", "MRR", "NDCG@10", "avg_rank", "rank_loc"});
  for (size_t i = 0; i < configs.size(); ++i) {
    const eval::StrategyMetrics& m = results[i];
    table.AddNumericRow(labels[i],
                        {m.mrr, m.ndcg10, m.avg_rank_relevant,
                         m.avg_rank_by_class[1]},
                        3);
  }
  table.Print(std::cout, "E9: Combined-strategy ablations");
  bench::PrintHarnessReport(std::cout, harness, timer);
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
