// E8 — Concept extraction quality (reconstruction of the paper's
// extraction-precision table): precision/recall of extracted content
// concepts against the generative topic vocabulary, and of extracted
// location concepts against the planted document locations, as the
// support threshold sweeps.
//
// Expected shape: raising min_support trades recall for precision;
// location extraction is near-exact because the gazetteer is closed.

#include <unordered_set>

#include "bench_common.h"
#include "concepts/content_extractor.h"
#include "concepts/location_concepts.h"
#include "text/porter_stemmer.h"
#include "text/tokenizer.h"

namespace {

using namespace pws;

// A content concept counts as "topical" when every token of it stems to
// a token of some core/filler term of the query's topic (or of any
// topic, for the lenient variant used for secondary topics).
std::unordered_set<std::string> TopicStems(const corpus::TopicModel& topics) {
  std::unordered_set<std::string> stems;
  for (int t = 0; t < topics.num_topics(); ++t) {
    for (const auto& term : topics.topic(t).core_terms) {
      for (const auto& tok : text::Tokenize(term)) {
        stems.insert(text::PorterStem(tok));
      }
    }
    for (const auto& term : topics.topic(t).filler_terms) {
      for (const auto& tok : text::Tokenize(term)) {
        stems.insert(text::PorterStem(tok));
      }
    }
  }
  return stems;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pws;
  bench::BenchConfig config = bench::ParseBenchConfig(argc, argv);
  eval::World world(config.world);
  const auto topic_stems = TopicStems(world.topics());

  Table table({"min_support", "concepts/query", "content_precision",
               "loc_precision", "loc_recall"});
  // Each support threshold re-extracts concepts for every pool query —
  // independent read-only work, one pool task per threshold.
  const std::vector<double> supports = {0.05, 0.08, 0.15, 0.25, 0.4};
  const int num_supports = static_cast<int>(supports.size());
  std::vector<std::vector<double>> rows(num_supports);
  ParallelFor(ResolveThreadCount(config.sim.threads), num_supports,
              [&](int task) {
    const double support = supports[task];
    concepts::ContentExtractorOptions copts;
    copts.min_support = support;
    concepts::ContentConceptExtractor content_extractor(copts);
    concepts::LocationConceptExtractor location_extractor(
        &world.ontology(), concepts::LocationConceptOptions{});

    double concepts_total = 0.0;
    double content_topical = 0.0;
    double content_total = 0.0;
    double loc_correct = 0.0;
    double loc_total = 0.0;
    double loc_found = 0.0;
    double loc_planted = 0.0;
    int queries = 0;
    for (const auto& intent : world.queries()) {
      const auto page = world.search_backend().Search(intent.text);
      if (page.results.empty()) continue;
      ++queries;
      const auto extracted = content_extractor.Extract(page, nullptr);
      concepts_total += static_cast<double>(extracted.size());
      for (const auto& concept_entry : extracted) {
        ++content_total;
        bool topical = true;
        for (const auto& tok : text::Tokenize(concept_entry.term)) {
          if (topic_stems.count(tok) == 0) {
            topical = false;
            break;
          }
        }
        if (topical) ++content_topical;
      }
      // Location concepts: compare per-result extraction against planted
      // ground truth.
      const auto locations =
          location_extractor.Extract(page, world.corpus());
      for (size_t i = 0; i < page.results.size(); ++i) {
        const auto& doc = world.corpus().doc(page.results[i].doc);
        std::unordered_set<geo::LocationId> truth(
            doc.planted_locations_truth.begin(),
            doc.planted_locations_truth.end());
        loc_planted += static_cast<double>(truth.size());
        for (geo::LocationId loc : locations.per_result[i]) {
          ++loc_total;
          if (truth.count(loc) > 0) {
            ++loc_correct;
            ++loc_found;
          }
        }
      }
    }
    rows[task] = {concepts_total / std::max(1, queries),
                  content_total > 0 ? content_topical / content_total : 0.0,
                  loc_total > 0 ? loc_correct / loc_total : 0.0,
                  loc_planted > 0 ? loc_found / loc_planted : 0.0};
  });
  for (int task = 0; task < num_supports; ++task) {
    table.AddNumericRow(FormatDouble(supports[task], 2), rows[task], 3);
  }
  table.Print(std::cout,
              "E8: concept extraction quality vs support threshold");
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
