// E10 — Microbenchmarks (google-benchmark): index build, BM25 search,
// snippet generation, concept extraction, feature extraction, and the
// full personalized Serve path. These bound the serve-time cost of the
// personalization layer relative to plain retrieval.

#include <benchmark/benchmark.h>

#include "backend/search_backend.h"
#include "concepts/content_extractor.h"
#include "concepts/location_concepts.h"
#include "core/pws_engine.h"
#include "corpus/corpus_generator.h"
#include "eval/world.h"
#include "ranking/features.h"
#include "ranking/ranker.h"

#include "bench_common.h"

namespace {

using namespace pws;

// One shared world for all microbenchmarks (built on first use).
const eval::World& SharedWorld() {
  static const eval::World& world = *[] {
    eval::WorldConfig config;
    config.corpus.num_documents = 20000;
    config.users.num_users = 8;
    config.backend.page_size = 30;
    return new eval::World(config);
  }();
  return world;
}

const std::vector<std::string>& BenchQueries() {
  static const auto& queries = *[] {
    auto* out = new std::vector<std::string>();
    for (const auto& intent : SharedWorld().queries()) {
      out->push_back(intent.text);
    }
    return out;
  }();
  return queries;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& world = SharedWorld();
  for (auto _ : state) {
    backend::InvertedIndex index(&world.corpus());
    benchmark::DoNotOptimize(index.num_documents());
  }
  state.SetItemsProcessed(state.iterations() * world.corpus().size());
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_Bm25Search(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    const auto page = world.search_backend().Search(queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.results.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bm25Search)->Unit(benchmark::kMicrosecond);

// ---------- Retrieval fast-path microbenchmarks ----------
// BM_AnalyzeQuery + BM_TopKTermIds decompose BM_Bm25Search: analysis
// (tokenize + stem + intern) vs pure term-id retrieval against the
// precomputed BM25 tables. BM_TopKTermIds is the hot loop the flat
// accumulator and bounded heap exist for.

void BM_AnalyzeQuery(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    const auto analyzed =
        world.search_backend().Analyze(queries[i % queries.size()]);
    benchmark::DoNotOptimize(analyzed.term_ids.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeQuery)->Unit(benchmark::kMicrosecond);

void BM_TopKTermIds(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& index = world.search_backend().index();
  std::vector<backend::AnalyzedQuery> analyzed;
  for (const auto& q : BenchQueries()) analyzed.push_back(index.Analyze(q));
  size_t i = 0;
  for (auto _ : state) {
    const auto top =
        index.TopKScored(analyzed[i % analyzed.size()].term_ids, 30,
                         backend::Bm25Params{});
    benchmark::DoNotOptimize(top.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopKTermIds)->Unit(benchmark::kMicrosecond);

void BM_Snippets(benchmark::State& state) {
  // Snippet generation for a full result page (the other half of
  // BM_Bm25Search beyond retrieval): pre-analyze, then Search reuses the
  // analysis, so the delta vs BM_TopKTermIds is snippets + page assembly.
  const auto& world = SharedWorld();
  std::vector<backend::AnalyzedQuery> analyzed;
  for (const auto& q : BenchQueries()) {
    analyzed.push_back(world.search_backend().Analyze(q));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto page =
        world.search_backend().Search(analyzed[i % analyzed.size()]);
    benchmark::DoNotOptimize(page.results.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Snippets)->Unit(benchmark::kMicrosecond);

void BM_ContentConceptExtraction(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto page = world.search_backend().Search("hotel booking");
  concepts::ContentConceptExtractor extractor(
      concepts::ContentExtractorOptions{});
  for (auto _ : state) {
    concepts::SnippetIncidence incidence;
    const auto concepts_found = extractor.Extract(page, &incidence);
    benchmark::DoNotOptimize(concepts_found.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContentConceptExtraction)->Unit(benchmark::kMicrosecond);

void BM_LocationConceptExtraction(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto page = world.search_backend().Search("hotel booking");
  concepts::LocationConceptExtractor extractor(
      &world.ontology(), concepts::LocationConceptOptions{});
  for (auto _ : state) {
    const auto locations = extractor.Extract(page, world.corpus());
    benchmark::DoNotOptimize(locations.aggregated.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocationConceptExtraction)->Unit(benchmark::kMicrosecond);

void BM_ServeColdCache(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    // Fresh engine per iteration: measures the full analyze+rank path.
    core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                           core::EngineOptions{});
    engine.RegisterUser(0);
    const auto page = engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeColdCache)->Unit(benchmark::kMicrosecond);

// One warm engine shared by the warm-cache and concurrency benchmarks.
core::PwsEngine& WarmSharedEngine() {
  static core::PwsEngine& engine = *[] {
    auto* e = new core::PwsEngine(&SharedWorld().search_backend(),
                                  &SharedWorld().ontology(),
                                  core::EngineOptions{});
    e->RegisterUser(0);
    for (const auto& q : BenchQueries()) {
      (void)e->Serve(0, q);  // Warm the per-query analysis cache.
    }
    return e;
  }();
  return engine;
}

void BM_ServeWarmCache(benchmark::State& state) {
  const auto& queries = BenchQueries();
  core::PwsEngine& engine = WarmSharedEngine();
  size_t i = 0;
  for (auto _ : state) {
    const auto page = engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeWarmCache)->Unit(benchmark::kMicrosecond);

void BM_ServeConcurrentSharedEngine(benchmark::State& state) {
  // All benchmark threads serve from ONE engine instance — the
  // production shape the sharded analysis cache and shared-mutex user
  // map exist for. Throughput should scale with threads; a global lock
  // would flatline it.
  const auto& queries = BenchQueries();
  core::PwsEngine& engine = WarmSharedEngine();
  size_t i = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const auto page = engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    i += static_cast<size_t>(state.threads());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeConcurrentSharedEngine)
    ->Unit(benchmark::kMicrosecond)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void BM_RankSvmTrain(benchmark::State& state) {
  Random rng(3);
  std::vector<ranking::TrainingPair> pairs;
  for (int i = 0; i < 500; ++i) {
    ranking::TrainingPair pair;
    pair.preferred.resize(ranking::kFeatureCount);
    pair.other.resize(ranking::kFeatureCount);
    for (int d = 0; d < ranking::kFeatureCount; ++d) {
      pair.preferred[d] = rng.UniformDouble();
      pair.other[d] = rng.UniformDouble();
    }
    pairs.push_back(std::move(pair));
  }
  for (auto _ : state) {
    ranking::RankSvm model(ranking::kFeatureCount);
    benchmark::DoNotOptimize(model.Train(pairs, ranking::RankSvmOptions{}));
  }
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK(BM_RankSvmTrain)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN plus the shared observability flags: --metrics-out and
// --log-level are consumed here and stripped from the argv handed to
// google-benchmark (which rejects flags it does not know).
int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  bench::ApplyLogLevelFlag(args);
  bench::BenchConfig config;
  config.metrics_out =
      args.GetString("metrics-out", args.GetString("metrics_out", ""));

  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--metrics-out") || StartsWith(arg, "--metrics_out") ||
        StartsWith(arg, "--log-level") || StartsWith(arg, "--log_level")) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
