// E10 — Microbenchmarks (google-benchmark): index build, BM25 search,
// snippet generation, concept extraction, feature extraction, and the
// full personalized Serve path. These bound the serve-time cost of the
// personalization layer relative to plain retrieval.

#include <benchmark/benchmark.h>

#include "backend/search_backend.h"
#include "concepts/content_extractor.h"
#include "concepts/location_concepts.h"
#include "core/pws_engine.h"
#include "corpus/corpus_generator.h"
#include "eval/world.h"
#include "ranking/features.h"
#include "ranking/ranker.h"

#include "bench_common.h"

namespace {

using namespace pws;

// Corpus size for SharedWorld, overridable with --documents=N (the
// 20k/200k/1M sweep in BENCH_RETRIEVAL.json). Set in main() before any
// benchmark runs.
int g_documents = 20000;

// One shared world for all microbenchmarks (built on first use).
const eval::World& SharedWorld() {
  static const eval::World& world = *[] {
    eval::WorldConfig config;
    config.corpus.num_documents = g_documents;
    config.users.num_users = 8;
    config.backend.page_size = 30;
    return new eval::World(config);
  }();
  return world;
}

const std::vector<std::string>& BenchQueries() {
  static const auto& queries = *[] {
    auto* out = new std::vector<std::string>();
    for (const auto& intent : SharedWorld().queries()) {
      out->push_back(intent.text);
    }
    return out;
  }();
  return queries;
}

void BM_IndexBuild(benchmark::State& state) {
  const auto& world = SharedWorld();
  for (auto _ : state) {
    backend::InvertedIndex index(&world.corpus());
    benchmark::DoNotOptimize(index.num_documents());
  }
  state.SetItemsProcessed(state.iterations() * world.corpus().size());
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_Bm25Search(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    const auto page = world.search_backend().Search(queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.results.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bm25Search)->Unit(benchmark::kMicrosecond);

// ---------- Retrieval fast-path microbenchmarks ----------
// BM_AnalyzeQuery + BM_TopKTermIds decompose BM_Bm25Search: analysis
// (tokenize + stem + intern) vs pure term-id retrieval against the
// precomputed BM25 tables. BM_TopKTermIds is the hot loop the flat
// accumulator and bounded heap exist for.

void BM_AnalyzeQuery(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    const auto analyzed =
        world.search_backend().Analyze(queries[i % queries.size()]);
    benchmark::DoNotOptimize(analyzed.term_ids.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeQuery)->Unit(benchmark::kMicrosecond);

void BM_TopKTermIds(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& index = world.search_backend().index();
  std::vector<backend::AnalyzedQuery> analyzed;
  for (const auto& q : BenchQueries()) analyzed.push_back(index.Analyze(q));
  size_t i = 0;
  for (auto _ : state) {
    const auto top =
        index.TopKScored(analyzed[i % analyzed.size()].term_ids, 30,
                         backend::Bm25Params{});
    benchmark::DoNotOptimize(top.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopKTermIds)->Unit(benchmark::kMicrosecond);

void BM_TopKBlockMax(benchmark::State& state) {
  // The explicit Block-Max WAND path (BM_TopKTermIds goes through the
  // dispatcher). Counters report how many posting blocks the pruning
  // decoded vs proved irrelevant per query — blocks_skipped > 0 is what
  // pays for the machinery, and CI asserts it stays that way.
  const auto& world = SharedWorld();
  const auto& index = world.search_backend().index();
  std::vector<backend::AnalyzedQuery> analyzed;
  for (const auto& q : BenchQueries()) analyzed.push_back(index.Analyze(q));
  uint64_t scored = 0;
  uint64_t skipped = 0;
  size_t i = 0;
  for (auto _ : state) {
    backend::RetrievalStats stats;
    const auto top =
        index.TopKScoredBlockMax(analyzed[i % analyzed.size()].term_ids, 30,
                                 backend::Bm25Params{}, &stats);
    benchmark::DoNotOptimize(top.size());
    scored += stats.blocks_scored;
    skipped += stats.blocks_skipped;
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["blocks_scored"] = benchmark::Counter(
      static_cast<double>(scored), benchmark::Counter::kAvgIterations);
  state.counters["blocks_skipped"] = benchmark::Counter(
      static_cast<double>(skipped), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TopKBlockMax)->Unit(benchmark::kMicrosecond);

void BM_DecodeBlock(benchmark::State& state) {
  // Raw block decode throughput over the longest posting list in the
  // index (the widest-fanout term dominates exhaustive scoring cost).
  const auto& world = SharedWorld();
  const auto& index = world.search_backend().index();
  backend::PostingListView longest;
  for (text::TermId t = 0; t < index.vocabulary_size(); ++t) {
    const backend::PostingListView view = index.PostingsFor(t);
    if (view.size() > longest.size()) longest = view;
  }
  uint32_t docs[backend::kPostingBlockSize];
  uint32_t tfs[backend::kPostingBlockSize];
  uint64_t postings = 0;
  for (auto _ : state) {
    for (uint32_t b = 0; b < longest.num_blocks(); ++b) {
      DecodePostingBlock(longest.block(b), longest.block_data(b),
                         longest.block_base(b), docs, tfs);
      benchmark::DoNotOptimize(docs[0]);
    }
    postings += longest.size();
  }
  state.SetItemsProcessed(postings);
  state.counters["blocks"] =
      benchmark::Counter(static_cast<double>(longest.num_blocks()));
}
BENCHMARK(BM_DecodeBlock)->Unit(benchmark::kMicrosecond);

void BM_Snippets(benchmark::State& state) {
  // Snippet generation for a full result page (the other half of
  // BM_Bm25Search beyond retrieval): pre-analyze, then Search reuses the
  // analysis, so the delta vs BM_TopKTermIds is snippets + page assembly.
  const auto& world = SharedWorld();
  std::vector<backend::AnalyzedQuery> analyzed;
  for (const auto& q : BenchQueries()) {
    analyzed.push_back(world.search_backend().Analyze(q));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto page =
        world.search_backend().Search(analyzed[i % analyzed.size()]);
    benchmark::DoNotOptimize(page.results.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Snippets)->Unit(benchmark::kMicrosecond);

void BM_ContentConceptExtraction(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto page = world.search_backend().Search("hotel booking");
  concepts::ContentConceptExtractor extractor(
      concepts::ContentExtractorOptions{});
  for (auto _ : state) {
    concepts::SnippetIncidence incidence;
    const auto concepts_found = extractor.Extract(page, &incidence);
    benchmark::DoNotOptimize(concepts_found.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContentConceptExtraction)->Unit(benchmark::kMicrosecond);

void BM_LocationConceptExtraction(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto page = world.search_backend().Search("hotel booking");
  concepts::LocationConceptExtractor extractor(
      &world.ontology(), concepts::LocationConceptOptions{});
  for (auto _ : state) {
    const auto locations = extractor.Extract(page, world.corpus());
    benchmark::DoNotOptimize(locations.aggregated.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocationConceptExtraction)->Unit(benchmark::kMicrosecond);

void BM_ServeColdCache(benchmark::State& state) {
  const auto& world = SharedWorld();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    // Fresh engine per iteration: measures the full analyze+rank path.
    core::PwsEngine engine(&world.search_backend(), &world.ontology(),
                           core::EngineOptions{});
    engine.RegisterUser(0);
    const auto page = engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeColdCache)->Unit(benchmark::kMicrosecond);

// One warm engine shared by the warm-cache and concurrency benchmarks.
core::PwsEngine& WarmSharedEngine() {
  static core::PwsEngine& engine = *[] {
    auto* e = new core::PwsEngine(&SharedWorld().search_backend(),
                                  &SharedWorld().ontology(),
                                  core::EngineOptions{});
    e->RegisterUser(0);
    for (const auto& q : BenchQueries()) {
      (void)e->Serve(0, q);  // Warm the per-query analysis cache.
    }
    return e;
  }();
  return engine;
}

void BM_ServeWarmCache(benchmark::State& state) {
  const auto& queries = BenchQueries();
  core::PwsEngine& engine = WarmSharedEngine();
  size_t i = 0;
  for (auto _ : state) {
    const auto page = engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeWarmCache)->Unit(benchmark::kMicrosecond);

void BM_ServeConcurrentSharedEngine(benchmark::State& state) {
  // All benchmark threads serve from ONE engine instance — the
  // production shape the sharded analysis cache and shared-mutex user
  // map exist for. Throughput should scale with threads; a global lock
  // would flatline it.
  const auto& queries = BenchQueries();
  core::PwsEngine& engine = WarmSharedEngine();
  size_t i = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    const auto page = engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    i += static_cast<size_t>(state.threads());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeConcurrentSharedEngine)
    ->Unit(benchmark::kMicrosecond)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

// ---------- Learning-loop microbenchmarks ----------
// BM_Serve / BM_Observe / BM_TrainUser bound the three stages of the
// personalization loop; BM_TrainAllUsers measures the cross-user
// training sweep at several thread counts. Before/after numbers for the
// learning-loop fast path live in BENCH_TRAIN.json.

// A warmed engine with accumulated clickthrough: every query analyzed,
// profiles non-trivial, training pairs mined. Built once.
struct LearnedEngineFixture {
  core::PwsEngine engine;
  std::vector<core::PersonalizedPage> pages;
  std::vector<click::ClickRecord> records;

  explicit LearnedEngineFixture(core::EngineOptions options)
      : engine(&SharedWorld().search_backend(), &SharedWorld().ontology(),
               options) {
    const auto& world = SharedWorld();
    const auto& queries = BenchQueries();
    Random rng(41);
    for (const auto& user : world.users()) {
      engine.RegisterUser(user.id);
      for (int round = 0; round < 6; ++round) {
        for (const auto& query : queries) {
          auto page = engine.Serve(user.id, query);
          // Synthetic but plausible clickthrough: click two results with
          // dwell long enough to grade relevant.
          click::ClickRecord record;
          record.user = user.id;
          record.query_text = query;
          const int n = static_cast<int>(page.order.size());
          record.interactions.resize(n);
          for (int j = 0; j < n; ++j) {
            record.interactions[j].rank = j;
          }
          if (n > 2) {
            const int first = static_cast<int>(rng.UniformInt(0, n / 2));
            const int second =
                static_cast<int>(rng.UniformInt(n / 2, n - 1));
            record.interactions[first].clicked = true;
            record.interactions[first].dwell_units = 45.0;
            record.interactions[second].clicked = true;
            record.interactions[second].dwell_units = 120.0;
          }
          engine.Observe(user.id, page, record);
          if (user.id == 0 && round == 0) {
            pages.push_back(std::move(page));
            records.push_back(std::move(record));
          }
        }
      }
    }
  }
};

LearnedEngineFixture& SharedLearnedEngine() {
  static LearnedEngineFixture& fixture =
      *new LearnedEngineFixture(core::EngineOptions{});
  return fixture;
}

void BM_Serve(benchmark::State& state) {
  // Serve against warm caches and a learned profile — the steady-state
  // serve cost of the personalization layer (analysis cache hit +
  // feature extraction + RankSVM re-rank).
  auto& fixture = SharedLearnedEngine();
  const auto& queries = BenchQueries();
  size_t i = 0;
  for (auto _ : state) {
    const auto page = fixture.engine.Serve(0, queries[i % queries.size()]);
    benchmark::DoNotOptimize(page.order.size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Serve)->Unit(benchmark::kMicrosecond);

void BM_Observe(benchmark::State& state) {
  // Profile update + entropy bookkeeping + pair mining for one
  // impression, against a learned profile.
  auto& fixture = SharedLearnedEngine();
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % fixture.pages.size();
    fixture.engine.Observe(0, fixture.pages[k], fixture.records[k]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Observe)->Unit(benchmark::kMicrosecond);

void BM_ObserveIncremental(benchmark::State& state) {
  // Observe with per-click incremental training: the same profile
  // update + pair mining as BM_Observe, plus a TrainIncremental pass
  // over the freshly mined pairs and a model publish. The delta vs
  // BM_Observe is the per-click cost of staying trained without waiting
  // for the BM_TrainUser retrain sweep.
  static LearnedEngineFixture& fixture = *[] {
    core::EngineOptions options;
    options.incremental_training = true;
    return new LearnedEngineFixture(options);
  }();
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % fixture.pages.size();
    fixture.engine.Observe(0, fixture.pages[k], fixture.records[k]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObserveIncremental)->Unit(benchmark::kMicrosecond);

void BM_TrainUser(benchmark::State& state) {
  // Full single-user retrain: per-query feature refresh against the
  // current profile plus the RankSVM SGD epochs.
  auto& fixture = SharedLearnedEngine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.engine.TrainUser(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          fixture.engine.training_pair_count(0));
}
BENCHMARK(BM_TrainUser)->Unit(benchmark::kMicrosecond);

void BM_TrainAllUsers(benchmark::State& state) {
  // Cross-user training sweep at several engine thread counts; per-user
  // runs are independent, so every arg produces identical weights.
  auto& fixture = SharedLearnedEngine();
  fixture.engine.set_train_threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    fixture.engine.TrainAllUsers();
  }
  fixture.engine.set_train_threads(1);
  state.SetItemsProcessed(state.iterations() *
                          SharedWorld().users().size());
}
BENCHMARK(BM_TrainAllUsers)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_RankSvmTrain(benchmark::State& state) {
  Random rng(3);
  constexpr int kPairs = 500;
  const int dim = ranking::kFeatureCount;
  // Pairs reference rows in one flat slab (the production shape).
  std::vector<double> slab(static_cast<size_t>(kPairs) * 2 * dim);
  for (auto& v : slab) v = rng.UniformDouble();
  std::vector<ranking::TrainingPair> pairs;
  pairs.reserve(kPairs);
  for (int i = 0; i < kPairs; ++i) {
    ranking::TrainingPair pair;
    pair.preferred = &slab[static_cast<size_t>(2 * i) * dim];
    pair.other = &slab[static_cast<size_t>(2 * i + 1) * dim];
    pairs.push_back(pair);
  }
  for (auto _ : state) {
    ranking::RankSvm model(ranking::kFeatureCount);
    benchmark::DoNotOptimize(model.Train(pairs, ranking::RankSvmOptions{}));
  }
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK(BM_RankSvmTrain)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN plus the shared observability flags: --metrics-out and
// --log-level are consumed here and stripped from the argv handed to
// google-benchmark (which rejects flags it does not know).
int main(int argc, char** argv) {
  using namespace pws;
  ArgParser args(argc, argv);
  bench::ApplyLogLevelFlag(args);
  bench::BenchConfig config;
  config.metrics_out =
      args.GetString("metrics-out", args.GetString("metrics_out", ""));
  g_documents = static_cast<int>(args.GetInt("documents", g_documents));

  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--metrics-out") || StartsWith(arg, "--metrics_out") ||
        StartsWith(arg, "--log-level") || StartsWith(arg, "--log_level") ||
        StartsWith(arg, "--documents")) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::MaybeExportMetrics(std::cout, config);
  return 0;
}
